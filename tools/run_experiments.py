"""Regenerate every table and figure and write the results to
out/experiments_output.txt (source material for EXPERIMENTS.md; the
``out/`` directory is generated, git-ignored scratch space).

The full paper grid is prefetched through the execution service
first — in parallel with ``--jobs N``, replayed from the
content-addressed cache with ``--cache-dir`` — and the figure/table
code then consumes the warm results.
"""

import argparse
import pathlib
import time

from repro.exec.grid import paper_grid
from repro.harness import ExperimentRunner, figures, tables


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="regenerate the paper's figures and tables")
    parser.add_argument("scale", nargs="?", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--scale", dest="scale_opt", type=float,
                        default=None, help="workload scale factor")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation grid")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed result cache directory")
    parser.add_argument("--output",
                        default="out/experiments_output.txt",
                        help="where to write the rendered report "
                             "(default out/experiments_output.txt; "
                             "parent directories are created)")
    args = parser.parse_args(argv)
    if args.scale_opt is not None:
        args.scale = args.scale_opt
    return args


def main(argv=None):
    args = parse_args(argv)
    t0 = time.time()
    runner = ExperimentRunner(scale=args.scale, jobs=args.jobs,
                              cache_dir=args.cache_dir)
    runner.prefetch(paper_grid(runner.benchmarks))
    out = []
    out.append(tables.table1(runner).render())
    for fn in (figures.figure3, figures.figure4, figures.figure5,
               figures.figure6, figures.figure7, figures.figure8):
        fig = fn(runner)
        out.append(fig.render())
        if fig.figure == "Figure 7":
            out.append(f"(mean baseline {fig.extra['mean_baseline']:.1f}% "
                       f"-> placement {fig.extra['mean_placement']:.1f}%)")
        if fig.figure == "Figure 8":
            out.append(f"(SPECint95 mean {fig.extra['specint_mean']:.1f}%)")
    out.append(tables.table2(runner).render())
    stats = runner.service.stats
    footer = (f"scale={args.scale}  jobs={args.jobs}  "
              f"elapsed={time.time()-t0:.0f}s\n"
              f"exec: simulated={stats['simulated']} "
              f"memo={stats['memo']} disk={stats['disk']} "
              f"(cache hit rate "
              f"{100.0 * runner.service.cache_hit_rate:.0f}%)")
    text = "\n\n".join(out) + f"\n\n{footer}\n"
    output = pathlib.Path(args.output)
    if output.parent != pathlib.Path("."):
        output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(text)
    print(text)


if __name__ == "__main__":
    main()
