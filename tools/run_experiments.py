"""Regenerate every table and figure at full scale and write the
results to experiments_output.txt (source material for EXPERIMENTS.md)."""

import sys
import time

from repro.harness import ExperimentRunner, figures, tables

def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    t0 = time.time()
    runner = ExperimentRunner(scale=scale)
    out = []
    out.append(tables.table1(runner).render())
    for fn in (figures.figure3, figures.figure4, figures.figure5,
               figures.figure6, figures.figure7, figures.figure8):
        fig = fn(runner)
        out.append(fig.render())
        if fig.figure == "Figure 7":
            out.append(f"(mean baseline {fig.extra['mean_baseline']:.1f}% "
                       f"-> placement {fig.extra['mean_placement']:.1f}%)")
        if fig.figure == "Figure 8":
            out.append(f"(SPECint95 mean {fig.extra['specint_mean']:.1f}%)")
    out.append(tables.table2(runner).render())
    text = ("\n\n".join(out)
            + f"\n\nscale={scale}  elapsed={time.time()-t0:.0f}s\n")
    open("experiments_output.txt", "w").write(text)
    print(text)

if __name__ == "__main__":
    main()
