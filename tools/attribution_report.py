"""Render cycle-attribution tables from archived telemetry JSONL.

Usage:
    python -m repro profile compress --opts all --telemetry-out a.jsonl
    python tools/attribution_report.py a.jsonl [b.jsonl ...]

Each ``run.finished`` event in the given file(s) is rendered as an
attribution table; when exactly two runs are found in total, a
side-by-side diff follows.
"""

import sys

from repro.telemetry.attribution import diff_attribution, \
    render_attribution
from repro.telemetry.io import load_attribution_runs


def load_runs(path) -> list:
    """``(label, cycles, attribution)`` per finished run in *path*.

    Thin wrapper over the shared archive loader (kept under the
    historical name); malformed lines are reported but skipped."""
    return load_attribution_runs(path, on_error="warn")


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    runs = []
    for path in sys.argv[1:]:
        found = load_runs(path)
        if not found:
            print(f"{path}: no run.finished events")
        runs.extend(found)
    for label, cycles, attribution in runs:
        if not attribution:
            print(f"{label}: no attribution recorded "
                  "(run without a cycle-accounting session?)")
            continue
        print(render_attribution(attribution, cycles, title=label))
        print()
    if len(runs) == 2 and all(r[2] for r in runs):
        (label_a, _, a), (label_b, _, b) = runs
        print(diff_attribution(label_a, a, label_b, b))
    return 0 if runs else 1


if __name__ == "__main__":
    sys.exit(main())
