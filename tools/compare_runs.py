"""Compare two archived run files (regression tracking).

Two formats are understood, chosen by file extension:

* ``.json`` — result archives written by ``tools/run_and_save.py``;
  counters are diffed field by field.
* ``.jsonl`` — telemetry event archives written with
  ``--telemetry-out``; the runs' cycle attributions are diffed
  side by side.

Usage:
    python tools/run_and_save.py results_a.json   # on version A
    python tools/run_and_save.py results_b.json   # on version B
    python tools/compare_runs.py results_a.json results_b.json

    python -m repro profile compress --telemetry-out a.jsonl
    python -m repro profile compress --opts none --telemetry-out b.jsonl
    python tools/compare_runs.py a.jsonl b.jsonl
"""

import sys

from repro.core.export import diff_results, load_results


def compare_json(path_a: str, path_b: str) -> int:
    old_results = {(r.benchmark, r.config_label): r
                   for r in load_results(path_a)}
    new_results = {(r.benchmark, r.config_label): r
                   for r in load_results(path_b)}
    drifted = 0
    for key in sorted(old_results.keys() & new_results.keys()):
        text = diff_results(old_results[key], new_results[key])
        if text:
            print(text)
            drifted += 1
    for key in sorted(old_results.keys() ^ new_results.keys()):
        print(f"only in one file: {key}")
    shared = len(old_results.keys() & new_results.keys())
    print(f"{drifted} drifted of {shared} shared experiments")
    return 1 if drifted else 0


def compare_jsonl(path_a: str, path_b: str) -> int:
    from repro.telemetry.attribution import diff_attribution
    from repro.telemetry.io import load_attribution_runs

    runs_a = {label: (cycles, attr)
              for label, cycles, attr
              in load_attribution_runs(path_a, on_error="warn")}
    runs_b = {label: (cycles, attr)
              for label, cycles, attr
              in load_attribution_runs(path_b, on_error="warn")}
    shared = sorted(runs_a.keys() & runs_b.keys())
    if not shared:
        # Different benchmarks/labels in the two archives: fall back to
        # positional pairing so `profile X` vs `profile X --opts none`
        # (distinct labels) still compares.
        pairs = list(zip(sorted(runs_a), sorted(runs_b)))
    else:
        pairs = [(key, key) for key in shared]
    drifted = 0
    for key_a, key_b in pairs:
        cycles_a, attr_a = runs_a[key_a]
        cycles_b, attr_b = runs_b[key_b]
        title = key_a if key_a == key_b else f"{key_a} vs {key_b}"
        print(title)
        print(diff_attribution(path_a, attr_a, path_b, attr_b))
        if cycles_a != cycles_b:
            drifted += 1
        print()
    for key in sorted(runs_a.keys() ^ runs_b.keys()):
        if not shared:
            break
        print(f"only in one file: {key}")
    print(f"{drifted} of {len(pairs)} compared runs changed cycle count")
    return 1 if drifted else 0


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    path_a, path_b = sys.argv[1], sys.argv[2]
    if path_a.endswith(".jsonl") or path_b.endswith(".jsonl"):
        return compare_jsonl(path_a, path_b)
    return compare_json(path_a, path_b)


if __name__ == "__main__":
    sys.exit(main())
