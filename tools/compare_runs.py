"""Compare two archived result files (regression tracking).

Usage:
    python tools/run_and_save.py results_a.json   # on version A
    python tools/run_and_save.py results_b.json   # on version B
    python tools/compare_runs.py results_a.json results_b.json
"""

import sys

from repro.harness.export import diff_results, load_results


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    old_results = {(r.benchmark, r.config_label): r
                   for r in load_results(sys.argv[1])}
    new_results = {(r.benchmark, r.config_label): r
                   for r in load_results(sys.argv[2])}
    drifted = 0
    for key in sorted(old_results.keys() & new_results.keys()):
        text = diff_results(old_results[key], new_results[key])
        if text:
            print(text)
            drifted += 1
    for key in sorted(old_results.keys() ^ new_results.keys()):
        print(f"only in one file: {key}")
    shared = len(old_results.keys() & new_results.keys())
    print(f"{drifted} drifted of {shared} shared experiments")
    return 1 if drifted else 0


if __name__ == "__main__":
    sys.exit(main())
