"""Calibration harness (development tool, not part of the library).

Runs every benchmark under baseline and combined-optimization
configurations and prints measured optimization coverage against the
paper's Table 2 targets, plus IPC improvements.

Usage: python tools/calibrate.py [bench ...]
"""

import sys
import time

from repro import workloads
from repro.core import SimConfig, Simulator
from repro.fillunit.opts.base import OptimizationConfig


def main() -> None:
    names = sys.argv[1:] or workloads.names()
    t0 = time.time()
    header = (f"{'bench':13s} {'instrs':>7s} {'IPC0':>5s} {'IPC*':>5s} "
              f"{'imp%':>6s} | {'mv%':>5s}{'(t)':>5s} {'ra%':>5s}{'(t)':>5s} "
              f"{'sc%':>5s}{'(t)':>5s} {'tot%':>5s}{'(t)':>5s}   tc%  misp%")
    print(header)
    imps = []
    for name in names:
        prog = workloads.build(name)
        sim = Simulator(SimConfig.paper())
        trace = sim.trace_program(prog)
        base = sim.run(trace, name, "baseline")
        opt = Simulator(SimConfig.paper(
            OptimizationConfig.all())).run(trace, name, "all")
        cov = opt.coverage.as_percentages(opt.instructions)
        t2 = workloads.spec(name).paper_table2
        imp = opt.improvement_over(base)
        imps.append(imp)
        print(f"{name:13s} {len(trace):7d} {base.ipc:5.2f} {opt.ipc:5.2f} "
              f"{imp:6.1f} | "
              f"{cov['moves']:5.1f}{t2.moves:5.1f} "
              f"{cov['reassoc']:5.1f}{t2.reassoc:5.1f} "
              f"{cov['scaled']:5.1f}{t2.scaled:5.1f} "
              f"{cov['total']:5.1f}{t2.total:5.1f} "
              f"{100 * opt.tc_instr_fraction:5.1f} "
              f"{100 * base.mispredict_rate:6.2f}")
    print(f"mean improvement {sum(imps) / len(imps):.1f}%   "
          f"elapsed {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
