"""Offline segment linting: capture, archive, verify.

Two subcommands:

* ``capture BENCH OUT.jsonl`` — replay a benchmark's retire stream
  through the fill unit and archive every (original, optimized)
  segment pair as JSONL (see :mod:`repro.verify.archive`).
* ``lint ARCHIVE.jsonl [...]`` — run the full segment verifier (lint
  rules + symbolic translation validation) over archived pairs,
  without re-running the simulator.

Usage:
    PYTHONPATH=src python tools/lint_segments.py capture compress \
        compress_segments.jsonl --opts all
    PYTHONPATH=src python tools/lint_segments.py lint \
        compress_segments.jsonl

The lint step exits nonzero when any error-severity violation is
found, so an archive can gate CI the same way ``verify-traces`` does.
"""

from __future__ import annotations

import argparse
import sys

from repro import workloads
from repro.branch.bias import BiasTable
from repro.fillunit.collector import FillCollector
from repro.fillunit.opts.base import OptimizationConfig
from repro.fillunit.unit import FillUnit, FillUnitConfig
from repro.machine.executor import Executor
from repro.tracecache.cache import TraceCache, TraceCacheConfig
from repro.verify import SegmentVerifier
from repro.verify.archive import read_pairs, write_pair


def _opt_config(name: str) -> OptimizationConfig:
    if name == "none":
        return OptimizationConfig.none()
    if name == "all":
        return OptimizationConfig.all()
    if name == "extended":
        return OptimizationConfig.extended()
    return OptimizationConfig.only(name)


def cmd_capture(args: argparse.Namespace) -> int:
    program = workloads.build(args.benchmark, args.scale)
    trace = Executor(program).run()
    opts = _opt_config(args.opts)
    bias = BiasTable(64, threshold=4)
    unit = FillUnit(
        FillUnitConfig(latency=1, optimizations=opts),
        TraceCache(TraceCacheConfig(num_sets=64, assoc=4)), bias)
    collector = FillCollector(bias, 16, 3)
    pairs = 0
    with open(args.output, "w") as handle:
        for record in trace:
            if record.instr.is_cond_branch():
                bias.record(record.pc, record.taken)
            for candidate in collector.add(record):
                original = unit.assemble_segment(candidate)
                optimized = unit.build_segment(candidate)
                write_pair(handle, original, optimized,
                           meta={"benchmark": args.benchmark,
                                 "opts": args.opts})
                pairs += 1
                if args.limit and pairs >= args.limit:
                    break
            else:
                continue
            break
    print(f"captured {pairs} segment pairs from {args.benchmark} "
          f"({args.opts}) into {args.output}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    verifier = SegmentVerifier(_opt_config(args.opts))
    shown = 0
    for path in args.archives:
        for original, optimized, meta in read_pairs(path):
            violations = verifier.check(original, optimized)
            for violation in violations:
                if violation.severity != "error":
                    continue
                if shown < args.show:
                    where = meta.get("benchmark", path)
                    print(f"{where} pc={optimized.start_pc:#x}: "
                          f"{violation.render()}")
                    shown += 1
    print(verifier.report.render())
    return 1 if verifier.report.violations else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lint_segments",
        description="Capture and lint (original, optimized) trace "
                    "segment pairs offline")
    sub = parser.add_subparsers(dest="command", required=True)

    p_cap = sub.add_parser("capture",
                           help="archive segment pairs from a replay")
    p_cap.add_argument("benchmark", choices=workloads.names())
    p_cap.add_argument("output", metavar="OUT.jsonl")
    p_cap.add_argument("--opts", default="all")
    p_cap.add_argument("--scale", type=float, default=0.3)
    p_cap.add_argument("--limit", type=int, default=0,
                       help="stop after N pairs (0 = no limit)")
    p_cap.set_defaults(func=cmd_capture)

    p_lint = sub.add_parser("lint", help="verify archived pairs")
    p_lint.add_argument("archives", nargs="+", metavar="ARCHIVE.jsonl")
    p_lint.add_argument("--opts", default="all",
                        help="optimization config the pairs were "
                             "captured under (sets rule limits)")
    p_lint.add_argument("--show", type=int, default=10,
                        help="violation messages to print (default 10)")
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
