"""Sweep replacement policies across workloads through the exec grid.

For every (policy, benchmark) pair the paper-configuration machine is
run with the policy applied to *both* the trace cache and the memory
hierarchy, and the matrix reports cycles, IPC, trace-cache hit rate
and the per-policy eviction/reuse telemetry (total and dead — never
rehit — trace-cache evictions).

Jobs go through :class:`~repro.exec.ExecutionService`, so sweeps
parallelise with ``--jobs N`` and replay from the content-addressed
cache with ``--cache-dir``.

Usage::

    PYTHONPATH=src python tools/policy_sweep.py [scale]
        [--policies lru,srrip,trrip] [--benchmarks compress,li,...]
        [--jobs N] [--cache-dir DIR] [--json out.json]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Tuple

from repro import workloads
from repro.cache.policy import POLICY_NAMES
from repro.core.config import SimConfig
from repro.core.results import SimResult
from repro.exec import ExecutionService
from repro.exec.grid import JobSpec, expand
from repro.fillunit.opts.base import OptimizationConfig


def policy_config(policy: str, fill_latency: int = 5) -> SimConfig:
    """The paper machine with *policy* on both cache layers."""
    config = SimConfig.paper(OptimizationConfig.all(), fill_latency)
    return dataclasses.replace(
        config,
        trace_cache=dataclasses.replace(config.trace_cache,
                                        policy=policy),
        hierarchy=dataclasses.replace(config.hierarchy, policy=policy))


def sweep(service: ExecutionService, benchmarks: List[str],
          policies: List[str]) -> Dict[Tuple[str, str], SimResult]:
    jobs: List[JobSpec] = expand(
        benchmarks, [(policy, policy_config(policy))
                     for policy in policies])
    results = service.run_many(jobs)
    return {(job.benchmark, job.label): result
            for job, result in zip(jobs, results)}


def _row(result: SimResult) -> Dict[str, object]:
    tel = result.telemetry
    lookups = result.tc_lookups or 1
    return {
        "cycles": result.cycles,
        "ipc": round(result.instructions / result.cycles, 4),
        "tc_hit_rate": round(result.tc_hits / lookups, 4),
        "tc_evictions": tel.get("fetch.tc.evictions", 0),
        "tc_dead_evictions": tel.get("fetch.tc.dead_evictions", 0),
    }


def render(matrix: Dict[Tuple[str, str], SimResult],
           benchmarks: List[str], policies: List[str]) -> str:
    lines = []
    header = (f"{'benchmark':<14}" + "".join(
        f"{p + ' cycles':>14}{p + ' ipc':>12}{p + ' tc%':>10}"
        f"{p + ' ev/dead':>12}" for p in policies))
    lines.append(header)
    lines.append("-" * len(header))
    for bench in benchmarks:
        cells = [f"{bench:<14}"]
        for policy in policies:
            row = _row(matrix[(bench, policy)])
            cells.append(f"{row['cycles']:>14}{row['ipc']:>12.4f}"
                         f"{100 * row['tc_hit_rate']:>9.1f}%"
                         f"{row['tc_evictions']:>7}/"
                         f"{row['tc_dead_evictions']:<4}")
        lines.append("".join(cells))
    return "\n".join(lines)


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="replacement-policy x workload sweep")
    parser.add_argument("scale", nargs="?", type=float, default=0.5,
                        help="workload scale factor (default 0.5)")
    parser.add_argument("--policies", default=",".join(POLICY_NAMES),
                        help="comma-separated policy names")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmarks "
                             "(default: all workloads)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the grid")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed result cache directory")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write the matrix as JSON")
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> None:
    args = parse_args(argv)
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    benchmarks = ([b.strip() for b in args.benchmarks.split(",")]
                  if args.benchmarks else workloads.names())
    service = ExecutionService(scale=args.scale, jobs=args.jobs,
                               cache_dir=args.cache_dir)
    matrix = sweep(service, benchmarks, policies)
    print(render(matrix, benchmarks, policies))
    if args.json_out:
        payload = {
            "scale": args.scale,
            "policies": policies,
            "benchmarks": benchmarks,
            "results": {f"{bench}/{policy}":
                        _row(matrix[(bench, policy)])
                        for bench in benchmarks for policy in policies},
        }
        out = pathlib.Path(args.json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True)
                       + "\n")
        print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
