"""Performance-trajectory harness: one number file per code version.

Runs the two anchor benchmarks (compress, li) end to end at the tier-1
scale with the host-time profiler attached and records, per benchmark:

* ``cycles`` — the simulated cycle count (deterministic; compared
  *exactly* against the baseline — any drift is a modelling change,
  not a performance regression);
* ``wall_seconds`` — best-of-N replay wall time;
* ``normalized_wall`` — wall time divided by this machine's score on a
  fixed pure-Python spin loop (``ref_seconds``), so the regression
  gate transfers across machines of different speeds;
* ``stage_shares`` — per-pipeline-stage host-time fractions from the
  :class:`~repro.telemetry.hostprof.HostProfiler`;
* ``reuse`` — trace-cache/segment reuse statistics (schema 3 adds
  the eviction counters: total and dead — never-rehit — evictions);
* ``replay`` (schema 2) — timing-memo behavior: hit/miss/bypass
  counts and rates, invalidations, memo footprint, and the measured
  speedup of the memo-on run over a memo-off run of the same trace;
* ``policies`` (schema 3) — one single-repeat run per replacement
  policy (lru/srrip/trrip on both cache layers) recording cycles and
  the per-policy reuse/eviction profile. The ``lru`` leg must match
  the main entry's cycles exactly.

Usage:
    python tools/bench_trajectory.py --out BENCH_10.json
    python tools/bench_trajectory.py --out /tmp/now.json \\
        --check BENCH_10.json --tolerance 0.10

``--check`` exits nonzero when any benchmark's cycle count differs
from the baseline or its normalized wall time regressed by more than
``--tolerance`` (fractional; default 0.10). Schema-1 baselines
(``BENCH_6.json`` and earlier) are still accepted: the gate compares
the fields both schemas share and skips the replay block. The pytest
wrapper in ``benchmarks/bench_trajectory.py`` runs the cycle/shape
checks on every benchmark invocation and the wall gate under
``REPRO_BENCH_GATE``.
"""

import argparse
import json
import sys
import time

#: 1 — cycles / wall / stage shares / reuse (BENCH_6.json).
#: 2 — adds the per-benchmark ``replay`` block (BENCH_8.json).
#: 3 — adds eviction counters to ``reuse`` and the per-policy
#:     ``policies`` block (BENCH_10.json).
TRAJECTORY_SCHEMA_VERSION = 3
_READABLE_SCHEMAS = (1, 2, 3)
BENCHMARKS = ("compress", "li")
DEFAULT_SCALE = 0.5
DEFAULT_TOLERANCE = 0.10
#: iterations of the calibration spin loop (fixed: its absolute wall
#: time *is* the machine-speed reference).
_CALIBRATION_ITERS = 400_000


def calibrate(repeats: int = 3) -> float:
    """Best-of-*repeats* wall seconds of a fixed pure-Python loop —
    the machine-speed reference normalized wall times divide by."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        for i in range(_CALIBRATION_ITERS):
            acc += i & 7
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    assert acc >= 0
    return best


def _timed_runs(trace, name: str, repeats: int, timing_memo: bool):
    """Best-of-*repeats* Engine runs of *trace*; returns
    ``(best_wall, result, profiler, engine)`` of the fastest run."""
    import dataclasses

    from repro.core.config import SimConfig
    from repro.core.engine import Engine
    from repro.fillunit.opts.base import OptimizationConfig
    from repro.telemetry.hostprof import HostProfiler

    best_wall = None
    result = None
    profiler = None
    engine = None
    for _ in range(repeats):
        # The CLI's default configuration (paper machine, all four
        # published optimizations) — `repro run BENCH` reproduces
        # these cycle counts exactly.
        config = SimConfig.paper(OptimizationConfig.all())
        if not timing_memo:
            config = dataclasses.replace(config, timing_memo=False)
        eng = Engine(config)
        prof = HostProfiler()
        prof.attach(eng)
        start = time.perf_counter()
        res = eng.run(trace, benchmark=name, label="trajectory")
        elapsed = time.perf_counter() - start
        if best_wall is None or elapsed < best_wall:
            best_wall, result, profiler, engine = elapsed, res, prof, eng
        if result.cycles != res.cycles:
            raise AssertionError(
                f"{name}: nondeterministic cycles "
                f"({result.cycles} vs {res.cycles})")
    return best_wall, result, profiler, engine


def _replay_block(result, slow_wall: float, fast_wall: float) -> dict:
    """The schema-2 ``replay`` entry, folded from the memo-on run's
    ``engine.replay.*`` telemetry plus the memo-off comparison leg."""
    tel = result.telemetry
    hits = tel.get("engine.replay.hit", 0)
    misses = tel.get("engine.replay.miss", 0)
    bypasses = tel.get("engine.replay.bypass", 0)
    invalidations = tel.get("engine.replay.invalidate", 0)
    visits = hits + misses + bypasses
    return {
        "hits": hits,
        "misses": misses,
        "bypasses": bypasses,
        "invalidations": invalidations,
        "hit_rate": round(hits / visits, 4) if visits else 0.0,
        "miss_rate": round(misses / visits, 4) if visits else 0.0,
        "invalidation_rate": (round(invalidations / misses, 4)
                              if misses else 0.0),
        "memo_entries": tel.get("engine.replay.memo.entries", 0),
        "memo_approx_bytes": tel.get(
            "engine.replay.memo.approx_bytes", 0),
        "slow_path_wall_seconds": round(slow_wall, 6),
        "speedup": round(slow_wall / fast_wall, 4),
    }


def _policy_block(trace, program, name: str,
                  lru_cycles: int) -> dict:
    """The schema-3 per-policy reuse profile: one memo-on run per
    replacement policy, both cache layers switched together. The
    program rides along so TRRIP's static temperature hints install
    exactly as they do under ``repro run --policy trrip``."""
    import dataclasses

    from repro.cache.policy import POLICY_NAMES
    from repro.core.config import SimConfig
    from repro.core.engine import Engine
    from repro.fillunit.opts.base import OptimizationConfig

    block = {}
    for policy in POLICY_NAMES:
        config = SimConfig.paper(OptimizationConfig.all())
        config = dataclasses.replace(
            config,
            trace_cache=dataclasses.replace(config.trace_cache,
                                            policy=policy),
            hierarchy=dataclasses.replace(config.hierarchy,
                                          policy=policy))
        eng = Engine(config)
        res = eng.run(trace, benchmark=name, label=f"policy-{policy}",
                      program=program)
        stats = eng.trace_cache.stats
        if policy == "lru" and res.cycles != lru_cycles:
            raise AssertionError(
                f"{name}: lru policy leg diverged from the main run "
                f"({res.cycles} vs {lru_cycles}); TrueLRU must be "
                f"bit-for-bit the seed behaviour")
        block[policy] = {
            "cycles": res.cycles,
            "tc_hit_rate": round(stats.hit_rate, 4),
            "tc_evictions": stats.evictions,
            "tc_dead_evictions": stats.dead_evictions,
            "l1d_evictions": eng.hierarchy.l1d.stats.evictions,
            "l2_evictions": eng.hierarchy.l2.stats.evictions,
        }
    return block


def measure_benchmark(name: str, scale: float = DEFAULT_SCALE,
                      repeats: int = 3) -> dict:
    """One benchmark's trajectory entry (see module docstring)."""
    from repro import workloads
    from repro.machine.executor import Executor

    program = workloads.build(name, scale)
    trace = Executor(program).run()
    best_wall, result, profiler, engine = _timed_runs(
        trace, name, repeats, timing_memo=True)
    slow_wall, slow_result, _prof, _eng = _timed_runs(
        trace, name, repeats, timing_memo=False)
    if slow_result.cycles != result.cycles:
        raise AssertionError(
            f"{name}: timing memo changed cycles "
            f"({slow_result.cycles} slow vs {result.cycles} memo)")
    stats = engine.trace_cache.stats
    fill = engine.fill_unit.stats
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "wall_seconds": round(best_wall, 6),
        "stage_shares": {
            scope: round(share, 4)
            for scope, share in profiler.shares("stage.").items()
        },
        "reuse": {
            "tc_lookups": stats.lookups,
            "tc_hits": stats.hits,
            "tc_hit_rate": round(stats.hit_rate, 4),
            "tc_evictions": stats.evictions,
            "tc_dead_evictions": stats.dead_evictions,
            "segments_built": fill.segments_built,
            "segments_deduped": fill.segments_deduped,
        },
        "replay": _replay_block(result, slow_wall, best_wall),
        "policies": _policy_block(trace, program, name, result.cycles),
    }


def measure_all(scale: float = DEFAULT_SCALE, repeats: int = 3) -> dict:
    ref_seconds = calibrate()
    benchmarks = {}
    for name in BENCHMARKS:
        entry = measure_benchmark(name, scale, repeats)
        entry["normalized_wall"] = round(
            entry["wall_seconds"] / ref_seconds, 4)
        benchmarks[name] = entry
    return {
        "schema": TRAJECTORY_SCHEMA_VERSION,
        "scale": scale,
        "ref_seconds": round(ref_seconds, 6),
        "benchmarks": benchmarks,
    }


def check_against(current: dict, baseline: dict,
                  tolerance: float = DEFAULT_TOLERANCE) -> list:
    """Regression findings of *current* vs *baseline* (empty == pass).

    Cycle counts must match exactly; normalized wall time may grow by
    at most *tolerance* (fractional). Improvements always pass.

    Schema-1 baselines are accepted: only the fields both schemas
    share are compared (the ``replay`` block is schema-2-only and
    never gated — it is reporting, not a regression contract).
    """
    failures = []
    base_schema = baseline.get("schema")
    if (base_schema not in _READABLE_SCHEMAS
            or base_schema > current.get("schema", 0)):
        failures.append(
            f"unreadable baseline schema {base_schema!r} "
            f"(current {current.get('schema')!r}; this tool reads "
            f"schemas {_READABLE_SCHEMAS})")
        return failures
    if baseline.get("scale") != current.get("scale"):
        failures.append(
            f"scale mismatch: baseline {baseline.get('scale')} vs "
            f"current {current.get('scale')}; re-run with --scale "
            f"{baseline.get('scale')}")
        return failures
    for name, base in baseline.get("benchmarks", {}).items():
        now = current["benchmarks"].get(name)
        if now is None:
            failures.append(f"{name}: missing from current run")
            continue
        if now["cycles"] != base["cycles"]:
            failures.append(
                f"{name}: cycle count drifted {base['cycles']} -> "
                f"{now['cycles']} (simulated time must be bit-for-bit "
                f"stable; if the model intentionally changed, refresh "
                f"the baseline)")
        limit = base["normalized_wall"] * (1.0 + tolerance)
        if now["normalized_wall"] > limit:
            failures.append(
                f"{name}: normalized wall time regressed "
                f"{base['normalized_wall']:.3f} -> "
                f"{now['normalized_wall']:.3f} "
                f"(> {100 * tolerance:.0f}% over baseline)")
    return failures


def render(payload: dict) -> str:
    lines = [f"perf trajectory (scale {payload['scale']}, "
             f"ref {payload['ref_seconds'] * 1000:.1f} ms)"]
    for name, entry in payload["benchmarks"].items():
        lines.append(
            f"  {name:10s} cycles={entry['cycles']:8d}  "
            f"wall={entry['wall_seconds'] * 1000:7.1f} ms  "
            f"normalized={entry['normalized_wall']:6.2f}  "
            f"tc_hit={100 * entry['reuse']['tc_hit_rate']:.1f}%")
        top = sorted(entry["stage_shares"].items(),
                     key=lambda kv: -kv[1])[:3]
        lines.append("  " + " " * 10 + " hottest stages: " + ", ".join(
            f"{scope.split('.', 1)[1]} {100 * share:.0f}%"
            for scope, share in top))
        replay = entry.get("replay")
        if replay:
            lines.append(
                "  " + " " * 10 +
                f" replay: hit={100 * replay['hit_rate']:.1f}% "
                f"miss={100 * replay['miss_rate']:.1f}% "
                f"inval={replay['invalidations']} "
                f"memo={replay['memo_entries']} entries "
                f"(~{replay['memo_approx_bytes'] // 1024} KiB) "
                f"speedup={replay['speedup']:.2f}x vs slow path")
        policies = entry.get("policies")
        if policies:
            lines.append("  " + " " * 10 + " policies: " + "  ".join(
                f"{policy} {p['cycles']}cy "
                f"tc={100 * p['tc_hit_rate']:.1f}% "
                f"ev={p['tc_evictions']}/{p['tc_dead_evictions']}"
                for policy, p in policies.items()))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", metavar="FILE.json", required=True,
                        help="write the trajectory file here")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--repeats", type=int, default=3,
                        help="replays per benchmark; best is kept")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="fail on regression vs this baseline")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional normalized-wall growth "
                             "(default 0.10)")
    args = parser.parse_args(argv)

    payload = measure_all(args.scale, args.repeats)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(render(payload))
    print(f"wrote {args.out}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_against(payload, baseline, args.tolerance)
        if failures:
            print(f"\nFAIL vs {args.check}:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"no regression vs {args.check} "
              f"(tolerance {100 * args.tolerance:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
