"""Performance-trajectory harness: one number file per code version.

Runs the two anchor benchmarks (compress, li) end to end at the tier-1
scale with the host-time profiler attached and records, per benchmark:

* ``cycles`` — the simulated cycle count (deterministic; compared
  *exactly* against the baseline — any drift is a modelling change,
  not a performance regression);
* ``wall_seconds`` — best-of-N replay wall time;
* ``normalized_wall`` — wall time divided by this machine's score on a
  fixed pure-Python spin loop (``ref_seconds``), so the regression
  gate transfers across machines of different speeds;
* ``stage_shares`` — per-pipeline-stage host-time fractions from the
  :class:`~repro.telemetry.hostprof.HostProfiler`;
* ``reuse`` — trace-cache/segment reuse statistics.

Usage:
    python tools/bench_trajectory.py --out BENCH_6.json
    python tools/bench_trajectory.py --out /tmp/now.json \\
        --check BENCH_6.json --tolerance 0.10

``--check`` exits nonzero when any benchmark's cycle count differs
from the baseline or its normalized wall time regressed by more than
``--tolerance`` (fractional; default 0.10). The pytest wrapper in
``benchmarks/bench_trajectory.py`` runs the cycle/shape checks on
every benchmark invocation and the wall gate under ``REPRO_BENCH_GATE``.
"""

import argparse
import json
import sys
import time

TRAJECTORY_SCHEMA_VERSION = 1
BENCHMARKS = ("compress", "li")
DEFAULT_SCALE = 0.5
DEFAULT_TOLERANCE = 0.10
#: iterations of the calibration spin loop (fixed: its absolute wall
#: time *is* the machine-speed reference).
_CALIBRATION_ITERS = 400_000


def calibrate(repeats: int = 3) -> float:
    """Best-of-*repeats* wall seconds of a fixed pure-Python loop —
    the machine-speed reference normalized wall times divide by."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        for i in range(_CALIBRATION_ITERS):
            acc += i & 7
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    assert acc >= 0
    return best


def measure_benchmark(name: str, scale: float = DEFAULT_SCALE,
                      repeats: int = 3) -> dict:
    """One benchmark's trajectory entry (see module docstring)."""
    from repro import workloads
    from repro.core.config import SimConfig
    from repro.core.engine import Engine
    from repro.fillunit.opts.base import OptimizationConfig
    from repro.machine.executor import Executor
    from repro.telemetry.hostprof import HostProfiler

    program = workloads.build(name, scale)
    trace = Executor(program).run()
    best_wall = None
    result = None
    profiler = None
    for _ in range(repeats):
        # The CLI's default configuration (paper machine, all four
        # published optimizations) — `repro run BENCH` reproduces
        # these cycle counts exactly.
        engine = Engine(SimConfig.paper(OptimizationConfig.all()))
        prof = HostProfiler()
        prof.attach(engine)
        start = time.perf_counter()
        res = engine.run(trace, benchmark=name, label="trajectory")
        elapsed = time.perf_counter() - start
        if best_wall is None or elapsed < best_wall:
            best_wall, result, profiler = elapsed, res, prof
        if result.cycles != res.cycles:
            raise AssertionError(
                f"{name}: nondeterministic cycles "
                f"({result.cycles} vs {res.cycles})")
        tc = engine.trace_cache
    stats = tc.stats
    fill = engine.fill_unit.stats
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "wall_seconds": round(best_wall, 6),
        "stage_shares": {
            scope: round(share, 4)
            for scope, share in profiler.shares("stage.").items()
        },
        "reuse": {
            "tc_lookups": stats.lookups,
            "tc_hits": stats.hits,
            "tc_hit_rate": round(stats.hit_rate, 4),
            "segments_built": fill.segments_built,
            "segments_deduped": fill.segments_deduped,
        },
    }


def measure_all(scale: float = DEFAULT_SCALE, repeats: int = 3) -> dict:
    ref_seconds = calibrate()
    benchmarks = {}
    for name in BENCHMARKS:
        entry = measure_benchmark(name, scale, repeats)
        entry["normalized_wall"] = round(
            entry["wall_seconds"] / ref_seconds, 4)
        benchmarks[name] = entry
    return {
        "schema": TRAJECTORY_SCHEMA_VERSION,
        "scale": scale,
        "ref_seconds": round(ref_seconds, 6),
        "benchmarks": benchmarks,
    }


def check_against(current: dict, baseline: dict,
                  tolerance: float = DEFAULT_TOLERANCE) -> list:
    """Regression findings of *current* vs *baseline* (empty == pass).

    Cycle counts must match exactly; normalized wall time may grow by
    at most *tolerance* (fractional). Improvements always pass.
    """
    failures = []
    if baseline.get("schema") != current.get("schema"):
        failures.append(
            f"schema mismatch: baseline {baseline.get('schema')!r} "
            f"vs current {current.get('schema')!r}")
        return failures
    if baseline.get("scale") != current.get("scale"):
        failures.append(
            f"scale mismatch: baseline {baseline.get('scale')} vs "
            f"current {current.get('scale')}; re-run with --scale "
            f"{baseline.get('scale')}")
        return failures
    for name, base in baseline.get("benchmarks", {}).items():
        now = current["benchmarks"].get(name)
        if now is None:
            failures.append(f"{name}: missing from current run")
            continue
        if now["cycles"] != base["cycles"]:
            failures.append(
                f"{name}: cycle count drifted {base['cycles']} -> "
                f"{now['cycles']} (simulated time must be bit-for-bit "
                f"stable; if the model intentionally changed, refresh "
                f"the baseline)")
        limit = base["normalized_wall"] * (1.0 + tolerance)
        if now["normalized_wall"] > limit:
            failures.append(
                f"{name}: normalized wall time regressed "
                f"{base['normalized_wall']:.3f} -> "
                f"{now['normalized_wall']:.3f} "
                f"(> {100 * tolerance:.0f}% over baseline)")
    return failures


def render(payload: dict) -> str:
    lines = [f"perf trajectory (scale {payload['scale']}, "
             f"ref {payload['ref_seconds'] * 1000:.1f} ms)"]
    for name, entry in payload["benchmarks"].items():
        lines.append(
            f"  {name:10s} cycles={entry['cycles']:8d}  "
            f"wall={entry['wall_seconds'] * 1000:7.1f} ms  "
            f"normalized={entry['normalized_wall']:6.2f}  "
            f"tc_hit={100 * entry['reuse']['tc_hit_rate']:.1f}%")
        top = sorted(entry["stage_shares"].items(),
                     key=lambda kv: -kv[1])[:3]
        lines.append("  " + " " * 10 + " hottest stages: " + ", ".join(
            f"{scope.split('.', 1)[1]} {100 * share:.0f}%"
            for scope, share in top))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", metavar="FILE.json", required=True,
                        help="write the trajectory file here")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    parser.add_argument("--repeats", type=int, default=3,
                        help="replays per benchmark; best is kept")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="fail on regression vs this baseline")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional normalized-wall growth "
                             "(default 0.10)")
    args = parser.parse_args(argv)

    payload = measure_all(args.scale, args.repeats)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(render(payload))
    print(f"wrote {args.out}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_against(payload, baseline, args.tolerance)
        if failures:
            print(f"\nFAIL vs {args.check}:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"no regression vs {args.check} "
              f"(tolerance {100 * args.tolerance:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
