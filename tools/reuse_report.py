"""Loop-aware trace-reuse characterization report.

Joins the *static* view of a workload (natural-loop nesting depth per
pc, from :mod:`repro.cache.hints`) with the *dynamic* reuse telemetry
the trace cache now records per start pc (fills, hits, evictions,
dead evictions) and the instruction mix of the segments built there.

The per-depth aggregation answers the question the TRRIP policy bets
on: do segments rooted in deeper loops actually see more reuse per
fill, and are the dead evictions (filled, never rehit) concentrated
in loop-free code?

Usage::

    PYTHONPATH=src python tools/reuse_report.py [scale]
        [--benchmarks compress,li] [--policy lru] [--top N]
        [--json out.json]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
from typing import Dict, List, Optional

from repro import workloads
from repro.cache.hints import pc_loop_depths
from repro.cache.policy import POLICY_NAMES
from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.fillunit.opts.base import OptimizationConfig
from repro.machine import run_program


def characterize(benchmark: str, scale: float,
                 policy: str) -> Dict[str, object]:
    """Run *benchmark* and join loop depths with reuse telemetry."""
    program = workloads.build(benchmark, scale=scale)
    trace = run_program(program)
    config = SimConfig.paper(OptimizationConfig.all())
    config = dataclasses.replace(
        config,
        trace_cache=dataclasses.replace(config.trace_cache,
                                        policy=policy),
        hierarchy=dataclasses.replace(config.hierarchy, policy=policy))
    model = PipelineModel(config)
    result = model.run(trace, benchmark=benchmark, label=policy,
                       program=program)
    tc = model.trace_cache
    assert tc is not None
    depths = pc_loop_depths(program)

    by_depth: Dict[int, Dict[str, int]] = {}
    segments: List[Dict[str, object]] = []
    for pc, (fills, hits, evictions, dead) in \
            sorted(tc.reuse_by_pc.items()):
        depth = depths.get(pc, 0)
        agg = by_depth.setdefault(depth, {
            "pcs": 0, "fills": 0, "hits": 0, "evictions": 0,
            "dead_evictions": 0})
        agg["pcs"] += 1
        agg["fills"] += fills
        agg["hits"] += hits
        agg["evictions"] += evictions
        agg["dead_evictions"] += dead
        instrs, branches, mems = tc.mix_by_pc.get(pc, [0, 0, 0])
        segments.append({
            "pc": pc, "loop_depth": depth, "fills": fills,
            "hits": hits, "evictions": evictions,
            "dead_evictions": dead,
            "hits_per_fill": round(hits / fills, 2) if fills else 0.0,
            "mix": {"instrs": instrs, "cond_branches": branches,
                    "mem_ops": mems},
        })
    segments.sort(key=lambda s: (-s["hits"], s["pc"]))
    return {
        "benchmark": benchmark,
        "policy": policy,
        "cycles": result.cycles,
        "tc_hit_rate": round(result.tc_hits
                             / (result.tc_lookups or 1), 4),
        "by_depth": {str(d): dict(
            agg, hits_per_fill=round(agg["hits"] / agg["fills"], 2)
            if agg["fills"] else 0.0)
            for d, agg in sorted(by_depth.items())},
        "segments": segments,
    }


def render(report: Dict[str, object], top: int) -> str:
    lines = [f"== {report['benchmark']} (policy={report['policy']}, "
             f"cycles={report['cycles']}, "
             f"tc hit rate {100 * report['tc_hit_rate']:.1f}%)"]
    lines.append(f"{'depth':>6}{'pcs':>6}{'fills':>8}{'hits':>8}"
                 f"{'evict':>8}{'dead':>6}{'hits/fill':>11}")
    for depth, agg in report["by_depth"].items():
        lines.append(f"{depth:>6}{agg['pcs']:>6}{agg['fills']:>8}"
                     f"{agg['hits']:>8}{agg['evictions']:>8}"
                     f"{agg['dead_evictions']:>6}"
                     f"{agg['hits_per_fill']:>11.2f}")
    lines.append(f"top {top} segments by reuse:")
    lines.append(f"{'pc':>10}{'depth':>6}{'fills':>6}{'hits':>8}"
                 f"{'dead':>6}{'instrs':>8}{'branches':>9}{'mems':>6}")
    for seg in report["segments"][:top]:
        mix = seg["mix"]
        lines.append(f"{seg['pc']:#10x}{seg['loop_depth']:>6}"
                     f"{seg['fills']:>6}{seg['hits']:>8}"
                     f"{seg['dead_evictions']:>6}{mix['instrs']:>8}"
                     f"{mix['cond_branches']:>9}{mix['mem_ops']:>6}")
    return "\n".join(lines)


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="loop-aware trace-reuse characterization")
    parser.add_argument("scale", nargs="?", type=float, default=0.5,
                        help="workload scale factor (default 0.5)")
    parser.add_argument("--benchmarks", default="compress,li",
                        help="comma-separated benchmarks "
                             "(default compress,li)")
    parser.add_argument("--policy", default="lru",
                        choices=list(POLICY_NAMES),
                        help="replacement policy to run under")
    parser.add_argument("--top", type=int, default=10,
                        help="top-N segments to list (default 10)")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write the full report as JSON")
    return parser.parse_args(argv)


def main(argv: Optional[List[str]] = None) -> None:
    args = parse_args(argv)
    benchmarks = [b.strip() for b in args.benchmarks.split(",")
                  if b.strip()]
    reports = [characterize(bench, args.scale, args.policy)
               for bench in benchmarks]
    print("\n\n".join(render(report, args.top) for report in reports))
    if args.json_out:
        out = pathlib.Path(args.json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(
            {"scale": args.scale, "reports": reports},
            indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
