"""Run the standard experiment set and archive results as JSON.

Usage: python tools/run_and_save.py out.json [scale]
"""

import sys

from repro.fillunit.opts.base import OptimizationConfig
from repro.harness.experiment import ExperimentRunner
from repro.core.export import dump_results


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    runner = ExperimentRunner(scale=scale)
    results = []
    for bench in runner.benchmarks:
        results.append(runner.baseline(bench))
        results.append(runner.run(bench, OptimizationConfig.all()))
    dump_results(results, sys.argv[1])
    print(f"wrote {len(results)} results to {sys.argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
