"""Render host-time profiles written by ``repro trace --hostprof-out``.

Usage:
    python -m repro trace compress --hostprof-out compress.prof.json
    python tools/hostprof_report.py compress.prof.json [more.json ...]

With several profiles the per-stage shares are printed side by side,
which is the view the timing-replay work needs: where does the
simulator's own wall time go, and how does that change across
configurations?
"""

import json
import sys

from repro.telemetry.hostprof import HOSTPROF_SCHEMA_VERSION, HostProfiler


def load_profile(path: str) -> HostProfiler:
    """Rehydrate a serialized profile into a :class:`HostProfiler`."""
    with open(path) as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != HOSTPROF_SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported hostprof schema {schema!r}"
                         f" (expected {HOSTPROF_SCHEMA_VERSION})")
    profiler = HostProfiler()
    for scope, entry in payload.get("scopes", {}).items():
        profiler.add(scope, float(entry["seconds"]),
                     calls=int(entry["calls"]))
    return profiler


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    profiles = []
    for path in sys.argv[1:]:
        try:
            profiles.append((path, load_profile(path)))
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: {exc}")
            return 2
    for path, profiler in profiles:
        print(profiler.render(f"host-time profile: {path}"))
        print()
    if len(profiles) > 1:
        scopes = sorted({scope for _, p in profiles
                         for scope in p.shares("stage.")})
        width = max(len(s) for s in scopes) + 2
        header = "stage share comparison\n  " + " " * width + "  ".join(
            f"{path[-18:]:>18s}" for path, _ in profiles)
        print(header)
        for scope in scopes:
            row = f"  {scope:{width}s}"
            for _, profiler in profiles:
                share = profiler.shares("stage.").get(scope, 0.0)
                row += f"{100.0 * share:17.1f}%  "
            print(row.rstrip())
    return 0


if __name__ == "__main__":
    sys.exit(main())
