#!/usr/bin/env python
"""Static-vs-dynamic opportunity table.

For each benchmark, tabulates the static analyzer's per-class
opportunity site counts (``repro.analysis.static``) next to what the
fill unit actually transformed during a simulated run: the number of
distinct transformed PCs (which the oracle bounds by the static count)
and the total transformed-instruction coverage from
:class:`~repro.core.results.OptCoverage` (which may exceed the site
count — one hot PC is fetched many times).

With ``--interprocedural`` the table gains the value-flow-tightened
bound per class, and a second table compares the ineffectuality
oracle's static candidate sets against the dynamic ineffectuality
log (distinct PCs and total events).

Usage::

    PYTHONPATH=src python tools/analyze_report.py [BENCH ...]
        [--scale 0.5] [--opts all] [--interprocedural]
"""

from __future__ import annotations

import argparse
import sys

from repro import workloads
from repro.analysis.static import analyze_program
from repro.core.config import SimConfig
from repro.core.simulator import Simulator
from repro.fillunit.opts.base import OptimizationConfig
from repro.harness.crosscheck import (
    collect_dynamic_sites,
    collect_ineffectual_sites,
)
from repro.harness.tables import TableResult

#: (display label, IneffectualitySites attribute)
INEFF_ROWS = (("dead_write", "dead_write_sites"),
              ("silent_store", "silent_store_sites"),
              ("predictable", "predictable_sites"))

#: (display label, site-set key, OptCoverage attribute)
CLASSES = (("moves", "moves", "moves"),
           ("reassoc", "reassoc", "reassoc"),
           ("scaled", "scaled", "scaled"),
           ("any_opt", "any_opt", "any_opt"))


def opportunity_table(benchmarks: list, scale: float,
                      opts: str = "all",
                      interprocedural: bool = False) -> TableResult:
    """Build the static-vs-dynamic table for *benchmarks*."""
    config = SimConfig.paper(
        OptimizationConfig.all() if opts == "all"
        else OptimizationConfig.only(opts))
    rows = []
    for name in benchmarks:
        program = workloads.build(name, scale)
        report = analyze_program(program, name,
                                 interprocedural=interprocedural)
        static = report.site_sets()
        tight = (report.interproc.site_sets()
                 if report.interproc is not None else None)
        trace = Simulator(config).trace_program(program)
        result, dynamic = collect_dynamic_sites(trace, config, name,
                                                opts)
        for label, key, attr in CLASSES:
            covered = getattr(result.coverage, attr)
            row = [name, label, len(static[key])]
            if tight is not None:
                row.append(len(tight[key]))
            row.extend([
                len(dynamic[key]), covered,
                f"{100.0 * covered / result.instructions:.1f}",
            ])
            rows.append(row)
    columns = ["benchmark", "class", "static sites"]
    if interprocedural:
        columns.append("interproc sites")
    columns.extend(["dynamic PCs", "covered instrs", "% of instrs"])
    return TableResult(
        "Opportunity oracle", "static bounds vs dynamic transformations",
        columns, rows,
        "dynamic PCs <= static sites is the oracle invariant; covered "
        "instrs counts every fetch of a transformed PC")


def ineffectuality_table(benchmarks: list, scale: float,
                         opts: str = "all") -> TableResult:
    """Static ineffectuality candidates vs the dynamic log."""
    config = SimConfig.paper(
        OptimizationConfig.all() if opts == "all"
        else OptimizationConfig.only(opts))
    rows = []
    for name in benchmarks:
        program = workloads.build(name, scale)
        report = analyze_program(program, name, interprocedural=True)
        interproc = report.interproc
        trace = Simulator(config).trace_program(program)
        _, dynamic, occurrences = collect_ineffectual_sites(
            trace, config, program, name, opts)
        for label, attr in INEFF_ROWS:
            rows.append([
                name, label, len(getattr(interproc, attr)),
                len(dynamic[label]), occurrences[label],
            ])
    return TableResult(
        "Ineffectuality oracle",
        "static candidate sets vs the dynamic ineffectuality log",
        ["benchmark", "class", "static candidates", "dynamic PCs",
         "events"],
        rows,
        "dynamic PCs <= static candidates is the oracle invariant; "
        "events counts every observed ineffectual execution")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmarks", nargs="*", metavar="BENCH",
                        help="benchmarks to tabulate "
                             "(default: compress li)")
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument(
        "--opts", default="all",
        choices=["moves", "reassoc", "scaled_adds", "placement", "all"],
        help="optimization set for the dynamic leg (default all)")
    parser.add_argument(
        "--interprocedural", action="store_true",
        help="add the interprocedural tightened bounds and the "
             "ineffectuality table")
    args = parser.parse_args(argv)

    names = args.benchmarks or ["compress", "li"]
    unknown = [n for n in names if n not in workloads.names()]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}")
        return 2
    print(opportunity_table(names, args.scale, args.opts,
                            args.interprocedural).render())
    if args.interprocedural:
        print()
        print(ineffectuality_table(names, args.scale,
                                   args.opts).render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
