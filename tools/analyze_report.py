#!/usr/bin/env python
"""Static-vs-dynamic opportunity table.

For each benchmark, tabulates the static analyzer's per-class
opportunity site counts (``repro.analysis.static``) next to what the
fill unit actually transformed during a simulated run: the number of
distinct transformed PCs (which the oracle bounds by the static count)
and the total transformed-instruction coverage from
:class:`~repro.core.results.OptCoverage` (which may exceed the site
count — one hot PC is fetched many times).

Usage::

    PYTHONPATH=src python tools/analyze_report.py [BENCH ...]
        [--scale 0.5] [--opts all]
"""

from __future__ import annotations

import argparse
import sys

from repro import workloads
from repro.analysis.static import analyze_program
from repro.core.config import SimConfig
from repro.core.simulator import Simulator
from repro.fillunit.opts.base import OptimizationConfig
from repro.harness.crosscheck import collect_dynamic_sites
from repro.harness.tables import TableResult

#: (display label, site-set key, OptCoverage attribute)
CLASSES = (("moves", "moves", "moves"),
           ("reassoc", "reassoc", "reassoc"),
           ("scaled", "scaled", "scaled"),
           ("any_opt", "any_opt", "any_opt"))


def opportunity_table(benchmarks: list, scale: float,
                      opts: str = "all") -> TableResult:
    """Build the static-vs-dynamic table for *benchmarks*."""
    config = SimConfig.paper(
        OptimizationConfig.all() if opts == "all"
        else OptimizationConfig.only(opts))
    rows = []
    for name in benchmarks:
        program = workloads.build(name, scale)
        report = analyze_program(program, name)
        static = report.site_sets()
        trace = Simulator(config).trace_program(program)
        result, dynamic = collect_dynamic_sites(trace, config, name,
                                                opts)
        for label, key, attr in CLASSES:
            covered = getattr(result.coverage, attr)
            rows.append([
                name, label, len(static[key]), len(dynamic[key]),
                covered,
                f"{100.0 * covered / result.instructions:.1f}",
            ])
    return TableResult(
        "Opportunity oracle", "static bounds vs dynamic transformations",
        ["benchmark", "class", "static sites", "dynamic PCs",
         "covered instrs", "% of instrs"],
        rows,
        "dynamic PCs <= static sites is the oracle invariant; covered "
        "instrs counts every fetch of a transformed PC")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmarks", nargs="*", metavar="BENCH",
                        help="benchmarks to tabulate "
                             "(default: compress li)")
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument(
        "--opts", default="all",
        choices=["moves", "reassoc", "scaled_adds", "placement", "all"],
        help="optimization set for the dynamic leg (default all)")
    args = parser.parse_args(argv)

    names = args.benchmarks or ["compress", "li"]
    unknown = [n for n in names if n not in workloads.names()]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}")
        return 2
    print(opportunity_table(names, args.scale, args.opts).render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
