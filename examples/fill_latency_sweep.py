#!/usr/bin/env python3
"""Sweep the fill-unit pipeline latency (the paper's Figure 8 knob).

The whole argument of the paper rests on the fill unit being off the
critical path: doing optimization work there is nearly free because the
fill pipeline's latency barely matters. This sweep makes that visible
across a wide latency range on a benchmark of your choice.

Run:  python examples/fill_latency_sweep.py [benchmark]
"""

import sys

from repro import OptimizationConfig, SimConfig, Simulator, workloads


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "gnuchess"
    program = workloads.build(bench, scale=0.4)
    trace = Simulator(SimConfig.paper()).trace_program(program)

    print(f"{bench}: combined-optimization IPC vs fill-unit latency")
    baseline = Simulator(SimConfig.paper()).run(trace, bench, "baseline")
    print(f"  baseline (no opts, 5-cycle fill): IPC {baseline.ipc:.3f}")
    for latency in (1, 2, 5, 10, 20, 50):
        config = SimConfig.paper(OptimizationConfig.all(), latency)
        result = Simulator(config).run(trace, bench, f"lat{latency}")
        print(f"  fill latency {latency:3d} cycles: IPC {result.ipc:.3f} "
              f"(+{result.improvement_over(baseline):.1f}% over baseline)")
    print("\nthe improvement barely moves: the fill pipeline is "
          "latency-tolerant, exactly the paper's point.")


if __name__ == "__main__":
    main()
