#!/usr/bin/env python3
"""Quickstart: measure the paper's headline result on one benchmark.

Builds the m88ksim stand-in, runs it through the baseline trace-cache
machine and through the machine whose fill unit performs all four
dynamic trace optimizations, and reports the IPC improvement — the
experiment behind the paper's Figure 8.

Run:  python examples/quickstart.py [benchmark] [scale]
"""

import sys

from repro import OptimizationConfig, SimConfig, Simulator, workloads


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "m88ksim"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    print(f"building {bench} (scale {scale}) ...")
    program = workloads.build(bench, scale)
    print(f"  {len(program)} static instructions, "
          f"{len(program.data)} data bytes")

    simulator = Simulator(SimConfig.paper())
    trace = simulator.trace_program(program)
    print(f"  {len(trace)} committed instructions "
          f"(checksum {trace.output})")

    baseline = simulator.run(trace, bench, "baseline")
    optimized = Simulator(
        SimConfig.paper(OptimizationConfig.all())).run(trace, bench,
                                                       "optimized")

    print()
    print(baseline.summary())
    print(optimized.summary())
    print()
    coverage = optimized.coverage.as_percentages(optimized.instructions)
    print(f"IPC improvement: +{optimized.improvement_over(baseline):.1f}%")
    print(f"instructions transformed by the fill unit: "
          f"{coverage['total']:.1f}% "
          f"(moves {coverage['moves']:.1f}%, "
          f"reassoc {coverage['reassoc']:.1f}%, "
          f"scaled adds {coverage['scaled']:.1f}%)")
    print(f"trace cache supplied {100 * optimized.tc_instr_fraction:.1f}% "
          f"of all committed instructions")


if __name__ == "__main__":
    main()
