#!/usr/bin/env python3
"""A guided tour of the four fill-unit optimizations.

Assembles a small kernel containing every idiom the paper targets,
builds the trace segment the fill unit would construct, and shows the
segment before and after each optimization pass — the annotated
listings make the transformations visible instruction by instruction.

Run:  python examples/optimization_tour.py
"""

from repro.asm import assemble
from repro.branch.bias import BiasTable
from repro.fillunit.collector import FillCollector
from repro.fillunit.opts.base import OptimizationConfig
from repro.fillunit.unit import FillUnit, FillUnitConfig
from repro.machine import Executor
from repro.tracecache.cache import TraceCache, TraceCacheConfig

KERNEL = """
# One trace segment's worth of the paper's target idioms:
    .data
record: .word 3, 7, 11, 15      # a little struct
table:  .word 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24
    .text
main:
    la   $s0, record
    la   $s2, table
    addi $t0, $s0, 4       # field offset (reassociation head)
    lw   $t1, 0($t0)       # loads 7: the branch below falls through
    move $t2, $t1          # register move on the value path
    beq  $t2, $zero, skip  # control-flow boundary (not taken)
    addi $t3, $t0, 4       # cross-block dependent offset (reassoc)
    lw   $t4, 0($t3)
    sll  $t5, $t4, 2       # short shift ...
    add  $t6, $t5, $s1     # ... feeding an add (scaled-add pair)
    lwx  $t7, $t5, $s2     # ... and an indexed load (scaled load)
skip:
    add  $v0, $t6, $t7
    halt
"""


def build_with(opts, label):
    program = assemble(KERNEL)
    trace = Executor(program).run()
    bias = BiasTable(64)
    unit = FillUnit(FillUnitConfig(latency=1, optimizations=opts),
                    TraceCache(TraceCacheConfig(num_sets=16, assoc=2)),
                    bias)
    collector = FillCollector(bias)
    segments = []
    for record in trace:
        for candidate in collector.add(record):
            segments.append(unit.build_segment(candidate))
    for tail in collector.flush():
        segments.append(unit.build_segment(tail))
    print(f"--- {label} " + "-" * max(1, 60 - len(label)))
    for segment in segments:
        print(segment.listing())
    print()


def main() -> None:
    print(__doc__)
    build_with(OptimizationConfig.none(), "baseline (no optimizations)")
    build_with(OptimizationConfig.only("moves"),
               "register move marking (paper 4.2)")
    build_with(OptimizationConfig.only("reassoc"),
               "reassociation (paper 4.3)")
    build_with(OptimizationConfig.only("scaled_adds"),
               "scaled adds (paper 4.4)")
    build_with(OptimizationConfig.only("placement"),
               "instruction placement (paper 4.5)")
    build_with(OptimizationConfig.all(), "all four combined")


if __name__ == "__main__":
    main()
