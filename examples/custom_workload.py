#!/usr/bin/env python3
"""Bring your own workload: write a kernel in the reproduction's
assembly dialect, run it functionally, then measure how much the fill
unit's optimizations buy on it.

This kernel is a tiny hash-join: probe a hash table for each key in an
array (scaled index arithmetic), follow a bucket chain (pointer-chase
moves), and accumulate matched values through small field offsets
(reassociable chains). Realistic enough that all four optimizations
find work.

Run:  python examples/custom_workload.py
"""

from repro import OptimizationConfig, SimConfig, Simulator, assemble

SOURCE = """
    .equ  NKEYS, 48
    .data
keys:    .word 7, 29, 13, 3, 41, 19, 5, 23, 11, 37, 2, 17, 31, 43, 8, 26
         .word 7, 29, 13, 3, 41, 19, 5, 23, 11, 37, 2, 17, 31, 43, 8, 26
         .word 7, 29, 13, 3, 41, 19, 5, 23, 11, 37, 2, 17, 31, 43, 8, 26
buckets: .word 0, 0, 0, 0, 0, 0, 0, 0   # 8 chain heads, filled below
nodes:   .word 7, 70, nodes+24, 29, 290, 0, 13, 130, 0
         .word 3, 30, 0, 41, 410, 0, 19, 190, 0

    .text
main:
    li   $s0, 200              # outer repetitions
    move $s1, $zero
    move $s2, $zero            # checksum
outer:
    la   $s3, keys
    move $t9, $zero            # key index
probe:
    sll  $t0, $t9, 2           # scaled index into keys[]
    lwx  $t1, $t0, $s3         # key
    andi $t2, $t1, 7           # hash = key & 7
    sll  $t2, $t2, 2
    la   $t3, nodes            # pretend bucket lookup hit `nodes`
    addi $t4, $t3, 0           # cursor = head (move idiom)
walk:
    lw   $t5, 0($t4)           # node->key
    bne  $t5, $t1, miss
    addi $t6, $t4, 4           # &node->value (reassociable offset)
    lw   $t7, 0($t6)
    add  $s2, $s2, $t7
miss:
    lw   $t8, 8($t4)           # node->next
    move $t4, $t8              # pointer-chase move
    bne  $t4, $zero, walk
    addi $t9, $t9, 1
    li   $at, NKEYS
    blt  $t9, $at, probe
    addi $s1, $s1, 1
    blt  $s1, $s0, outer
    move $a0, $s2
    li   $v0, 1
    syscall
    halt
"""


def main() -> None:
    program = assemble(SOURCE, name="hash-join")
    simulator = Simulator(SimConfig.paper())
    trace = simulator.trace_program(program)
    print(f"hash-join: {len(trace)} committed instructions, "
          f"checksum {trace.output[0]}")

    baseline = simulator.run(trace, "hash-join", "baseline")
    print(baseline.summary())
    for opt in ("moves", "reassoc", "scaled_adds", "placement"):
        result = Simulator(SimConfig.paper(
            OptimizationConfig.only(opt))).run(trace, "hash-join", opt)
        print(f"  {opt:12s} +{result.improvement_over(baseline):5.1f}%")
    combined = Simulator(SimConfig.paper(
        OptimizationConfig.all())).run(trace, "hash-join", "combined")
    print(f"  {'combined':12s} +{combined.improvement_over(baseline):5.1f}%")


if __name__ == "__main__":
    main()
