"""Regenerators for the paper's figures 3-8.

Each function runs the experiment its figure reports and returns a
:class:`FigureResult` whose ``rows`` mirror the figure's bars/series
and whose ``render()`` prints an ASCII equivalent. Absolute numbers are
not expected to match the paper (different workloads, see DESIGN.md §3)
— the *shape* claims each figure makes are recorded in ``claim`` and
checked by the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import arithmetic_mean
from repro.fillunit.opts.base import OptimizationConfig
from repro.harness.experiment import ExperimentRunner
from repro.harness.report import render_bar_chart, render_table
from repro.workloads.registry import specint_names


@dataclass
class FigureResult:
    """One regenerated figure."""

    figure: str
    title: str
    rows: dict                      # benchmark -> value (or tuple)
    mean: float
    claim: str
    extra: dict = field(default_factory=dict)

    def render(self) -> str:
        if isinstance(next(iter(self.rows.values())), tuple):
            headers = ["benchmark"] + list(self.extra.get(
                "columns", ("baseline", "optimized")))
            rows = [[name, *values] for name, values in self.rows.items()]
            body = render_table(headers, rows)
        else:
            body = render_bar_chart(self.rows)
        return (f"{self.figure}: {self.title}\n{body}\n"
                f"mean: {self.mean:.1f}\npaper claim: {self.claim}")


def _single_opt_figure(runner: ExperimentRunner, figure: str, title: str,
                       opt_name: str, claim: str) -> FigureResult:
    opts = OptimizationConfig.only(opt_name)
    rows = {bench: runner.improvement(bench, opts)
            for bench in runner.benchmarks}
    return FigureResult(figure, title, rows,
                        arithmetic_mean(rows.values()), claim)


def figure3(runner: ExperimentRunner) -> FigureResult:
    """IPC improvement of register-move marking (paper: avg ~5%; moves
    are ~6% of the dynamic stream)."""
    return _single_opt_figure(
        runner, "Figure 3", "IPC improvement of register move handling",
        "moves", "average improvement ~5% across all benchmarks")


def figure4(runner: ExperimentRunner) -> FigureResult:
    """IPC improvement of fill-unit reassociation (paper: 1-2% for most,
    ~23% for m88ksim and gnuchess, 6-8% for ijpeg and ghostscript)."""
    return _single_opt_figure(
        runner, "Figure 4", "IPC improvement of fill unit reassociation",
        "reassoc",
        "little for most (1-2%); m88ksim and gnuchess far ahead (~23%)")


def figure5(runner: ExperimentRunner) -> FigureResult:
    """IPC improvement of scaled-add creation (paper: 1-8%, avg 3.7%,
    go and tex highest)."""
    return _single_opt_figure(
        runner, "Figure 5", "IPC improvement of scaled add instructions",
        "scaled_adds", "1-8% range, average 3.7%; go and tex highest")


def figure6(runner: ExperimentRunner) -> FigureResult:
    """IPC improvement of fill-unit instruction placement (paper: avg
    ~5%; ijpeg largest at ~11%, tex smallest at ~1%)."""
    return _single_opt_figure(
        runner, "Figure 6", "IPC improvement of fill unit placement",
        "placement", "average ~5%; ijpeg largest (~11%), tex least (~1%)")


def figure7(runner: ExperimentRunner) -> FigureResult:
    """Fraction of on-path instructions whose last-arriving source was
    delayed by the bypass network, baseline vs placement (paper: 35%
    -> 29% on average)."""
    rows = {}
    base_vals = []
    placed_vals = []
    for bench in runner.benchmarks:
        base = runner.baseline(bench)
        placed = runner.run(bench, OptimizationConfig.only("placement"))
        rows[bench] = (100.0 * base.bypass_delayed_fraction,
                       100.0 * placed.bypass_delayed_fraction)
        base_vals.append(rows[bench][0])
        placed_vals.append(rows[bench][1])
    mean_base = arithmetic_mean(base_vals)
    mean_placed = arithmetic_mean(placed_vals)
    return FigureResult(
        "Figure 7",
        "Instructions whose last-arriving value was bypass-delayed",
        rows, mean_placed,
        "placement reduces the average from ~35% to ~29%",
        extra={"columns": ("baseline %", "placement %"),
               "mean_baseline": mean_base,
               "mean_placement": mean_placed})


def figure8(runner: ExperimentRunner,
            latencies: tuple = (1, 5, 10)) -> FigureResult:
    """Combined IPC improvement of all four optimizations at fill-unit
    latencies of 1, 5 and 10 cycles (paper: ~18% average for 5 cycles,
    >17% on SPECint95; m88ksim ~44%, gnuchess ~38%; latency has
    negligible impact)."""
    all_opts = OptimizationConfig.all()
    rows = {}
    for bench in runner.benchmarks:
        rows[bench] = tuple(
            runner.improvement(bench, all_opts, fill_latency=latency)
            for latency in latencies)
    headline_idx = latencies.index(5) if 5 in latencies else 0
    headline = {bench: values[headline_idx]
                for bench, values in rows.items()}
    specint = [headline[b] for b in specint_names()
               if b in headline]
    return FigureResult(
        "Figure 8", "Combined IPC improvement vs fill-unit latency",
        rows, arithmetic_mean(headline.values()),
        "avg ~18% (SPECint >17%); m88ksim/gnuchess top; "
        "fill latency 1/5/10 cycles nearly indistinguishable",
        extra={"columns": tuple(f"{lat}-cycle" for lat in latencies),
               "latencies": latencies,
               "specint_mean": (arithmetic_mean(specint)
                                if specint else 0.0)})


def all_figures(runner: ExperimentRunner) -> list:
    """Regenerate every figure (3-8), in order."""
    return [figure3(runner), figure4(runner), figure5(runner),
            figure6(runner), figure7(runner), figure8(runner)]


__all__ = ["FigureResult", "figure3", "figure4", "figure5", "figure6",
           "figure7", "figure8", "all_figures"]
