"""Parameter sweeps: sensitivity studies over machine knobs.

The paper sweeps one knob (fill-unit latency, Figure 8); a credible
release wants the neighbouring sensitivity studies too — how the
combined optimization benefit responds to cluster geometry, bypass
cost, window size, or trace cache capacity. Each sweep runs
baseline-vs-optimized at every point and reports the improvement
curve, reusing the runner's cached traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.analysis.stats import arithmetic_mean
from repro.core.config import SimConfig
from repro.exec.grid import sweep_grid
from repro.harness.experiment import ExperimentRunner
from repro.harness.report import render_table
from repro.tracecache.cache import TraceCacheConfig


@dataclass
class SweepResult:
    """One sweep: improvement (and IPC pair) per knob value."""

    name: str
    knob: str
    points: list                    # knob values, in order
    rows: dict = field(default_factory=dict)
    # rows[benchmark] = [(baseline_ipc, optimized_ipc), ...] per point

    def improvements(self, benchmark: str) -> list:
        return [100.0 * (opt - base) / base if base else 0.0
                for base, opt in self.rows[benchmark]]

    def mean_improvements(self) -> list:
        """Mean improvement across benchmarks, per knob point."""
        return [arithmetic_mean(
            self.improvements(bench)[idx] for bench in self.rows)
            for idx in range(len(self.points))]

    def render(self) -> str:
        headers = ["benchmark"] + [f"{self.knob}={p}"
                                   for p in self.points]
        body = [[bench] + [round(v, 1) for v in self.improvements(bench)]
                for bench in self.rows]
        body.append(["mean"] + [round(v, 1)
                                for v in self.mean_improvements()])
        return render_table(headers, body,
                            title=f"Sweep: {self.name} "
                                  f"(combined-optimization gain, %)")


def _run_sweep(runner: ExperimentRunner, name: str, knob: str,
               points: list, make_config: Callable,
               benchmarks: list) -> SweepResult:
    result = SweepResult(name=name, knob=knob, points=list(points))
    jobs = sweep_grid(benchmarks, points, make_config)
    results = runner.service.run_many(jobs)
    # sweep_grid's layout contract: benchmark-major, points in order,
    # baseline immediately before optimized.
    per_bench = 2 * len(points)
    for b_idx, bench in enumerate(benchmarks):
        chunk = results[b_idx * per_bench:(b_idx + 1) * per_bench]
        result.rows[bench] = [
            (chunk[2 * p].ipc, chunk[2 * p + 1].ipc)
            for p in range(len(points))]
    return result


def sweep_fill_latency(runner: ExperimentRunner, benchmarks: list,
                       points=(1, 2, 5, 10, 20)) -> SweepResult:
    """Figure 8's knob, on a wider range."""
    return _run_sweep(
        runner, "fill-unit pipeline latency", "cycles", list(points),
        lambda latency, opts: SimConfig.paper(opts, latency),
        benchmarks)


def sweep_bypass_penalty(runner: ExperimentRunner, benchmarks: list,
                         points=(0, 1, 2, 3)) -> SweepResult:
    """Cross-cluster forwarding cost: what placement monetizes."""
    return _run_sweep(
        runner, "cross-cluster bypass penalty", "cycles", list(points),
        lambda penalty, opts: replace(SimConfig.paper(opts),
                                      cross_cluster_penalty=penalty),
        benchmarks)


def sweep_window(runner: ExperimentRunner, benchmarks: list,
                 points=(64, 128, 256, 512)) -> SweepResult:
    """In-flight window: chain-height savings matter more when the
    window cannot hide latency with parallelism."""
    return _run_sweep(
        runner, "instruction window size", "entries", list(points),
        lambda window, opts: replace(SimConfig.paper(opts),
                                     window_size=window),
        benchmarks)


def sweep_trace_cache_size(runner: ExperimentRunner, benchmarks: list,
                           points=(64, 128, 512)) -> SweepResult:
    """Trace cache sets (capacity): optimization coverage follows the
    fraction of the stream the TC supplies."""
    def make(num_sets, opts):
        return replace(SimConfig.paper(opts),
                       trace_cache=TraceCacheConfig(num_sets=num_sets))
    return _run_sweep(runner, "trace cache capacity", "sets",
                      list(points), make, benchmarks)


def sweep_checkpoints(runner: ExperimentRunner, benchmarks: list,
                      points=(4, 8, 16, 32)) -> SweepResult:
    """Checkpoint-repair storage: speculation depth in branches."""
    return _run_sweep(
        runner, "checkpoint storage", "checkpoints", list(points),
        lambda capacity, opts: replace(SimConfig.paper(opts),
                                       max_checkpoints=capacity),
        benchmarks)


__all__ = ["SweepResult", "sweep_fill_latency", "sweep_bypass_penalty",
           "sweep_window", "sweep_trace_cache_size", "sweep_checkpoints"]
