"""Minimal SVG bar charts for the regenerated figures (stdlib only).

``figure_to_svg`` renders a :class:`~repro.harness.figures.FigureResult`
as a horizontal bar chart (grouped bars for multi-series figures like
Figure 8's latency triplets); ``write_all_figures`` drops one ``.svg``
per figure into a directory. Colours are a fixed brand-neutral set.
"""

from __future__ import annotations

import html
import os

from repro.harness.figures import FigureResult

_BAR_COLORS = ("#4878a8", "#e49444", "#6a9f58")
_BAR_HEIGHT = 16
_BAR_GAP = 6
_GROUP_GAP = 10
_LABEL_WIDTH = 110
_VALUE_WIDTH = 64
_CHART_WIDTH = 420
_TOP = 48


def _series_of(rows: dict) -> int:
    first = next(iter(rows.values()))
    return len(first) if isinstance(first, tuple) else 1


def figure_to_svg(figure: FigureResult, series_labels=None) -> str:
    """Render *figure* as an SVG document string."""
    rows = figure.rows
    series = _series_of(rows)
    values = {name: (value if isinstance(value, tuple) else (value,))
              for name, value in rows.items()}
    peak = max((abs(v) for vs in values.values() for v in vs),
               default=1.0) or 1.0
    group_height = series * (_BAR_HEIGHT + _BAR_GAP) + _GROUP_GAP
    height = _TOP + len(rows) * group_height + 30
    width = _LABEL_WIDTH + _CHART_WIDTH + _VALUE_WIDTH

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<text x="8" y="20" font-size="14" font-weight="bold">'
        f'{html.escape(figure.figure)}: {html.escape(figure.title)}'
        f'</text>',
        f'<text x="8" y="{_TOP - 12}" fill="#555" font-size="11">'
        f'mean {figure.mean:.1f} — paper: '
        f'{html.escape(figure.claim)}</text>',
    ]
    if series > 1 and series_labels:
        legend_x = _LABEL_WIDTH
        for idx, label in enumerate(series_labels[:series]):
            parts.append(
                f'<rect x="{legend_x}" y="{_TOP - 22}" width="10" '
                f'height="10" fill="{_BAR_COLORS[idx % 3]}"/>'
                f'<text x="{legend_x + 14}" y="{_TOP - 13}" '
                f'font-size="11">{html.escape(str(label))}</text>')
            legend_x += 14 + 8 * len(str(label)) + 12

    y = _TOP
    for name, vs in values.items():
        parts.append(
            f'<text x="{_LABEL_WIDTH - 6}" '
            f'y="{y + _BAR_HEIGHT - 3}" text-anchor="end">'
            f'{html.escape(name)}</text>')
        for idx, value in enumerate(vs):
            bar = abs(value) / peak * _CHART_WIDTH
            color = _BAR_COLORS[idx % 3] if value >= 0 else "#b04a4a"
            parts.append(
                f'<rect x="{_LABEL_WIDTH}" y="{y}" '
                f'width="{bar:.1f}" height="{_BAR_HEIGHT}" '
                f'fill="{color}"/>'
                f'<text x="{_LABEL_WIDTH + bar + 6:.1f}" '
                f'y="{y + _BAR_HEIGHT - 3}" fill="#333">'
                f'{value:.1f}</text>')
            y += _BAR_HEIGHT + _BAR_GAP
        y += _GROUP_GAP
    parts.append("</svg>")
    return "\n".join(parts)


def write_all_figures(runner, directory: str) -> list:
    """Regenerate figures 3-8 and write one SVG each; returns paths."""
    from repro.harness import figures as fig_mod
    os.makedirs(directory, exist_ok=True)
    paths = []
    for fig in fig_mod.all_figures(runner):
        labels = fig.extra.get("columns")
        number = fig.figure.split()[-1]
        path = os.path.join(directory, f"figure{number}.svg")
        with open(path, "w") as handle:
            handle.write(figure_to_svg(fig, series_labels=labels))
        paths.append(path)
    return paths


__all__ = ["figure_to_svg", "write_all_figures"]
