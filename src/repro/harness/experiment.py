"""Experiment runner: the harness's view of the execution service.

Historically this class hand-rolled its own trace and result memos;
both now live in :class:`~repro.exec.service.ExecutionService`, which
adds content-addressed on-disk caching (``cache_dir``) and a
multiprocess worker pool (``jobs``). The runner keeps its original
surface — ``trace`` / ``run`` / ``baseline`` / ``improvement`` /
``clear`` — so the figures, tables and sweeps are unchanged, and adds
:meth:`prefetch` to push a whole job grid through the pool before the
figures consume the (then warm) results one by one.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.config import SimConfig
from repro.core.results import SimResult
from repro.exec.grid import JobSpec, variant_label
from repro.exec.service import ExecutionService
from repro.fillunit.opts.base import OptimizationConfig
from repro import workloads


class ExperimentRunner:
    """Runs benchmarks under varying fill-unit configurations."""

    def __init__(self, scale: float = 1.0,
                 benchmarks: Optional[list] = None,
                 jobs: int = 1, cache_dir: Optional[str] = None,
                 telemetry: Optional[Any] = None) -> None:
        self.scale = scale
        self.benchmarks = (list(benchmarks) if benchmarks is not None
                           else workloads.names())
        self.service = ExecutionService(
            scale=scale, jobs=jobs, cache_dir=cache_dir,
            telemetry=telemetry)

    # ------------------------------------------------------------------

    def trace(self, benchmark: str) -> Any:
        """The committed trace for *benchmark* (cached)."""
        return self.service.trace(benchmark)

    def job(self, benchmark: str,
            optimizations: Optional[OptimizationConfig] = None,
            fill_latency: int = 5,
            label: Optional[str] = None) -> JobSpec:
        """The :class:`JobSpec` for one figure-style run."""
        opts = optimizations if optimizations is not None \
            else OptimizationConfig.none()
        config = SimConfig.paper(opts, fill_latency)
        return JobSpec(benchmark, config, label or variant_label(opts))

    def run(self, benchmark: str,
            optimizations: Optional[OptimizationConfig] = None,
            fill_latency: int = 5, label: Optional[str] = None) -> SimResult:
        """Simulate *benchmark* under the given fill-unit setup (cached).

        ``optimizations=None`` means the measured baseline (no trace
        optimizations).
        """
        return self.service.run(
            self.job(benchmark, optimizations, fill_latency, label))

    def prefetch(self, jobs: List[JobSpec]) -> List[SimResult]:
        """Resolve a whole grid up front — through the worker pool when
        the runner was built with ``jobs > 1`` — so subsequent
        :meth:`run` calls replay from the memo."""
        return self.service.run_many(jobs)

    def baseline(self, benchmark: str, fill_latency: int = 5) -> SimResult:
        return self.run(benchmark, OptimizationConfig.none(), fill_latency)

    def improvement(self, benchmark: str,
                    optimizations: OptimizationConfig,
                    fill_latency: int = 5) -> float:
        """Percent IPC improvement of a configuration over baseline."""
        optimized = self.run(benchmark, optimizations, fill_latency)
        return optimized.improvement_over(self.baseline(benchmark,
                                                        fill_latency))

    def clear(self) -> None:
        """Drop all cached traces and results (disk cache persists)."""
        self.service.clear()


__all__ = ["ExperimentRunner"]
