"""Experiment runner: shared trace/result caching for the harness.

Functional execution of a benchmark is identical across machine
configurations, so the committed trace is computed once per benchmark
and replayed through as many timing configurations as the figures
need. Baseline results are likewise cached (every figure compares
against the same baseline machine).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.core.results import SimResult
from repro.fillunit.opts.base import OptimizationConfig
from repro import workloads


class ExperimentRunner:
    """Runs benchmarks under varying fill-unit configurations."""

    def __init__(self, scale: float = 1.0,
                 benchmarks: Optional[list] = None) -> None:
        self.scale = scale
        self.benchmarks = (list(benchmarks) if benchmarks is not None
                           else workloads.names())
        self._traces: dict = {}
        self._results: dict = {}

    # ------------------------------------------------------------------

    def trace(self, benchmark: str):
        """The committed trace for *benchmark* (cached)."""
        if benchmark not in self._traces:
            from repro.machine.executor import Executor
            program = workloads.build(benchmark, self.scale)
            self._traces[benchmark] = Executor(program).run()
        return self._traces[benchmark]

    def run(self, benchmark: str,
            optimizations: Optional[OptimizationConfig] = None,
            fill_latency: int = 5, label: Optional[str] = None) -> SimResult:
        """Simulate *benchmark* under the given fill-unit setup (cached).

        ``optimizations=None`` means the measured baseline (no trace
        optimizations).
        """
        opts = optimizations if optimizations is not None \
            else OptimizationConfig.none()
        key = (benchmark, tuple(sorted(vars(opts).items())), fill_latency)
        if key not in self._results:
            config = SimConfig.paper(opts, fill_latency)
            model = PipelineModel(config)
            name = label or ("baseline" if not opts.enabled_names()
                             else "+".join(opts.enabled_names()))
            self._results[key] = model.run(self.trace(benchmark),
                                           benchmark=benchmark, label=name)
        return self._results[key]

    def baseline(self, benchmark: str, fill_latency: int = 5) -> SimResult:
        return self.run(benchmark, OptimizationConfig.none(), fill_latency)

    def improvement(self, benchmark: str,
                    optimizations: OptimizationConfig,
                    fill_latency: int = 5) -> float:
        """Percent IPC improvement of a configuration over baseline."""
        optimized = self.run(benchmark, optimizations, fill_latency)
        return optimized.improvement_over(self.baseline(benchmark,
                                                        fill_latency))

    def clear(self) -> None:
        """Drop all cached traces and results."""
        self._traces.clear()
        self._results.clear()


__all__ = ["ExperimentRunner"]
