"""ASCII rendering of tables and bar charts for the harness output."""

from __future__ import annotations


def render_table(headers: list, rows: list,
                 title: str = "") -> str:
    """Render *rows* (sequences of cells) under *headers* with aligned
    columns. Numeric cells are right-aligned; text cells left-aligned."""
    cells = [[_fmt(cell) for cell in row] for row in rows]
    table = [list(map(str, headers))] + cells
    widths = [max(len(row[col]) for row in table)
              for col in range(len(headers))]

    def line(row, pad_right):
        parts = []
        for col, cell in enumerate(row):
            if pad_right[col]:
                parts.append(cell.ljust(widths[col]))
            else:
                parts.append(cell.rjust(widths[col]))
        return "  ".join(parts).rstrip()

    numeric = [all(_is_num(row[col]) for row in rows) if rows else False
               for col in range(len(headers))]
    pad_right = [not num for num in numeric]
    out = []
    if title:
        out.append(title)
    out.append(line(table[0], pad_right))
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append(line(row, pad_right))
    return "\n".join(out)


def render_bar_chart(rows: dict, title: str = "", width: int = 40,
                     unit: str = "%") -> str:
    """Horizontal ASCII bar chart of a {label: value} mapping, in the
    given insertion order (benchmarks keep Table 1 order)."""
    if not rows:
        return title
    peak = max(abs(value) for value in rows.values()) or 1.0
    label_width = max(len(label) for label in rows)
    out = [title] if title else []
    for label, value in rows.items():
        bar = "#" * max(0, int(round(abs(value) / peak * width)))
        sign = "-" if value < 0 else ""
        out.append(f"{label:<{label_width}}  {sign}{bar} {value:.1f}{unit}")
    return "\n".join(out)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def _is_num(cell) -> bool:
    return isinstance(cell, (int, float)) and not isinstance(cell, bool)


__all__ = ["render_table", "render_bar_chart"]
