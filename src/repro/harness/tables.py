"""Regenerators for the paper's tables 1 and 2."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import arithmetic_mean
from repro.fillunit.opts.base import OptimizationConfig
from repro.harness.experiment import ExperimentRunner
from repro.harness.report import render_table
from repro import workloads
from repro.workloads.registry import PAPER_TABLE1, PAPER_TABLE2


@dataclass
class TableResult:
    """One regenerated table."""

    table: str
    title: str
    headers: list
    rows: list
    note: str = ""

    def render(self) -> str:
        body = render_table(self.headers, self.rows)
        out = f"{self.table}: {self.title}\n{body}"
        if self.note:
            out += f"\n{self.note}"
        return out


def table1(runner: ExperimentRunner = None,
           scale: float = 1.0) -> TableResult:
    """Table 1: the benchmark inventory.

    Reports the paper's simulated lengths/inputs next to this
    reproduction's synthetic stand-ins and their committed lengths.
    """
    if runner is None:
        runner = ExperimentRunner(scale=scale)
    rows = []
    for name in runner.benchmarks:
        spec = workloads.spec(name)
        paper = PAPER_TABLE1[name]
        committed = len(runner.trace(name))
        rows.append([name, spec.suite, paper.inst_count, paper.input_set,
                     committed, spec.description])
    return TableResult(
        "Table 1", "Benchmarks",
        ["benchmark", "suite", "paper instrs", "paper input",
         "repro instrs", "repro kernel"],
        rows,
        "paper columns are from the original Table 1; repro columns "
        "describe the synthetic stand-ins (DESIGN.md §3)")


def table2(runner: ExperimentRunner) -> TableResult:
    """Table 2: percentage of committed instructions transformed by the
    fill unit, per optimization, under the combined configuration."""
    all_opts = OptimizationConfig.all()
    rows = []
    totals = []
    for name in runner.benchmarks:
        result = runner.run(name, all_opts)
        cov = result.coverage.as_percentages(result.instructions)
        paper = PAPER_TABLE2[name]
        rows.append([
            name,
            cov["moves"], paper.moves,
            cov["reassoc"], paper.reassoc,
            cov["scaled"], paper.scaled,
            cov["total"], paper.total,
        ])
        totals.append(cov["total"])
    data_rows = list(rows)
    rows.append([
        "average",
        arithmetic_mean(r[1] for r in data_rows),
        arithmetic_mean(PAPER_TABLE2[n].moves for n in runner.benchmarks),
        arithmetic_mean(r[3] for r in data_rows),
        arithmetic_mean(PAPER_TABLE2[n].reassoc for n in runner.benchmarks),
        arithmetic_mean(r[5] for r in data_rows),
        arithmetic_mean(PAPER_TABLE2[n].scaled for n in runner.benchmarks),
        arithmetic_mean(totals),
        arithmetic_mean(PAPER_TABLE2[n].total for n in runner.benchmarks),
    ])
    return TableResult(
        "Table 2",
        "Percentage of instructions to which transformations were applied",
        ["benchmark", "moves%", "(paper)", "reassoc%", "(paper)",
         "scaled%", "(paper)", "total%", "(paper)"],
        rows,
        "paper average is ~13.4%; transformations counted on committed "
        "instructions supplied by the trace cache")


__all__ = ["TableResult", "table1", "table2"]
