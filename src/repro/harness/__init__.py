"""Experiment harness: regenerates every table and figure of the
paper's evaluation section.

Typical use::

    from repro.harness import ExperimentRunner, figures, tables

    runner = ExperimentRunner(scale=1.0)
    fig3 = figures.figure3(runner)
    print(fig3.render())

Each ``figureN``/``tableN`` function returns a structured result with a
``render()`` method producing the ASCII equivalent of the paper's
chart, with paper-reported reference numbers alongside for comparison.
"""

from repro.harness.experiment import ExperimentRunner
from repro.harness import figures, svgchart, sweeps, tables
from repro.harness.report import render_bar_chart, render_table

__all__ = [
    "ExperimentRunner",
    "figures",
    "svgchart",
    "sweeps",
    "tables",
    "render_bar_chart",
    "render_table",
]
