"""Deprecated compatibility shim: result serialization moved to
:mod:`repro.core.export` so the execution layer can depend on it
without pulling in the whole harness. The public surface is unchanged
but imports should move to the new home; this shim warns on import
and will be removed in a future revision."""

from __future__ import annotations

import warnings

from repro.core.export import (
    SCHEMA_VERSION,
    diff_results,
    dump_results,
    load_results,
    result_from_dict,
    result_to_dict,
)

warnings.warn(
    "repro.harness.export is deprecated; import from repro.core.export",
    DeprecationWarning, stacklevel=2)

__all__ = ["result_to_dict", "result_from_dict", "dump_results",
           "load_results", "diff_results", "SCHEMA_VERSION"]
