"""Compatibility shim: result serialization moved to
:mod:`repro.core.export` so the execution layer can depend on it
without pulling in the whole harness. The public surface is unchanged;
import from here or from the new home interchangeably."""

from __future__ import annotations

from repro.core.export import (
    SCHEMA_VERSION,
    diff_results,
    dump_results,
    load_results,
    result_from_dict,
    result_to_dict,
)

__all__ = ["result_to_dict", "result_from_dict", "dump_results",
           "load_results", "diff_results", "SCHEMA_VERSION"]
