"""The opportunity oracle cross-checker.

Closes the loop between the static analyzer and the dynamic fill unit:
the set of PCs a dynamic pass actually transformed during a run must
be a subset of the static site set
(:meth:`repro.analysis.static.AnalysisReport.site_sets`) for every opt
class — a violation means an optimizer's eligibility test accepted a
pattern the sound static over-approximation says cannot exist, i.e.
the eligibility test is unsound (or the analyzer's CFG missed an
edge). The checker names the opt class and the offending PC.

The oracle covers the paper's four passes only: the extension passes
(CSE, dead-code elimination, dynamic predication) synthesise new move
idioms and rewrite opcodes, so requesting a cross-check under an
extended configuration is an error, not a violation.

The second half of the module is the analogous check for the
interprocedural **ineffectuality oracle**: every PC the dynamic
ineffectuality log (:mod:`repro.core.stages.ineff`) observes as a dead
write, silent store or predictable value must lie inside the static
candidate set (:mod:`repro.analysis.static.ineffectuality`). Unlike
the opt-site check this one needs no trace cache and holds under any
configuration — the architectural stream is config-independent — so
the observer stage is simply appended to the replay engine's stage
list for the checking run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.static.ineffectuality import (
    INEFF_CLASSES,
    IneffectualitySites,
)
from repro.analysis.static.report import AnalysisReport
from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.core.results import SimResult
from repro.core.stages.ineff import IneffectualityLogStage
from repro.errors import ConfigError
from repro.machine.tracing import CommittedTrace
from repro.program.image import Program

#: the opt classes with a per-PC rewrite to bound.
OPT_CLASSES = ("moves", "reassoc", "scaled", "any_opt")


@dataclass(frozen=True)
class OracleViolation:
    """One dynamically transformed PC outside the static bound."""

    opt: str
    pc: int

    def render(self) -> str:
        return (f"{self.opt}: transformed pc {self.pc:#x} is outside "
                f"the static site set")


@dataclass
class OracleCheck:
    """Outcome of one benchmark's static-vs-dynamic cross-check."""

    benchmark: str
    config_label: str
    static_counts: Dict[str, int]
    dynamic_counts: Dict[str, int]       # distinct transformed PCs
    violations: List[OracleViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [f"{self.benchmark} [{self.config_label}]: "
                 f"{'OK' if self.ok else 'ORACLE VIOLATION'}"]
        for name in OPT_CLASSES:
            lines.append(
                f"  {name:8s} dynamic {self.dynamic_counts[name]:4d} "
                f"<= static {self.static_counts[name]:4d} sites")
        for violation in self.violations:
            lines.append("  " + violation.render())
        return "\n".join(lines)


def _require_paper_opts(config: SimConfig) -> None:
    opts = config.optimizations
    if opts.cse or opts.dead_code or opts.predication:
        raise ConfigError(
            "the opportunity oracle only covers the paper's four "
            "passes; disable cse/dead_code/predication to cross-check")


def collect_dynamic_sites(trace: CommittedTrace, config: SimConfig,
                          benchmark: str = "bench",
                          label: str = "crosscheck"
                          ) -> Tuple[SimResult, Dict[str, Set[int]]]:
    """Replay *trace* while recording per-class transformed PCs.

    Returns the run's :class:`SimResult` plus
    ``{opt class: set of PCs}`` (``any_opt`` is the union). Uses the
    fill unit's :attr:`~repro.fillunit.unit.FillUnit.opt_site_log`
    side channel, which leaves modelled timing untouched.

    Raises:
        ConfigError: without a trace cache (no fill unit to observe)
            or under an extended optimization configuration.
    """
    _require_paper_opts(config)
    model = PipelineModel(config)
    if model.fill_unit is None:
        raise ConfigError("cross-check requires the trace cache "
                          "(and with it the fill unit) enabled")
    sites: Dict[str, Set[int]] = {"moves": set(), "reassoc": set(),
                                  "scaled": set()}
    model.fill_unit.opt_site_log = sites
    result = model.run(trace, benchmark=benchmark, label=label)
    sites["any_opt"] = (sites["moves"] | sites["reassoc"]
                        | sites["scaled"])
    return result, sites


def cross_check(report: AnalysisReport, trace: CommittedTrace,
                config: SimConfig, benchmark: str = "bench",
                label: str = "crosscheck") -> OracleCheck:
    """Check dynamic transformations against the static oracle.

    Raises:
        ConfigError: see :func:`collect_dynamic_sites`.
    """
    result, dynamic = collect_dynamic_sites(trace, config, benchmark,
                                            label)
    static = report.site_sets()
    violations = [OracleViolation(opt=name, pc=pc)
                  for name in OPT_CLASSES
                  for pc in sorted(dynamic[name] - static[name])]
    return OracleCheck(
        benchmark=benchmark,
        config_label=label,
        static_counts={name: len(static[name]) for name in OPT_CLASSES},
        dynamic_counts={name: len(dynamic[name])
                        for name in OPT_CLASSES},
        violations=violations)


@dataclass(frozen=True)
class IneffViolation:
    """One dynamically ineffectual PC outside the static candidates."""

    kind: str
    pc: int

    def render(self) -> str:
        return (f"{self.kind}: observed ineffectual pc {self.pc:#x} is "
                f"outside the static candidate set")


@dataclass
class IneffectualityCheck:
    """Outcome of one benchmark's ineffectuality cross-check."""

    benchmark: str
    config_label: str
    static_counts: Dict[str, int]
    dynamic_counts: Dict[str, int]       # distinct ineffectual PCs
    occurrences: Dict[str, int]          # total dynamic events
    violations: List[IneffViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [f"{self.benchmark} [{self.config_label}]: "
                 f"{'OK' if self.ok else 'INEFFECTUALITY VIOLATION'}"]
        for name in INEFF_CLASSES:
            lines.append(
                f"  {name:12s} dynamic {self.dynamic_counts[name]:4d} "
                f"<= static {self.static_counts[name]:4d} candidates "
                f"({self.occurrences[name]} events)")
        for violation in self.violations:
            lines.append("  " + violation.render())
        return "\n".join(lines)

    def ensure(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on any violation."""
        if self.violations:
            detail = "; ".join(v.render() for v in self.violations)
            raise ConfigError(
                f"ineffectuality oracle violated on {self.benchmark} "
                f"[{self.config_label}]: {detail}")


def collect_ineffectual_sites(trace: CommittedTrace, config: SimConfig,
                              program: Program,
                              benchmark: str = "bench",
                              label: str = "crosscheck"
                              ) -> Tuple[SimResult,
                                         Dict[str, FrozenSet[int]],
                                         Dict[str, int]]:
    """Replay *trace* with the ineffectuality observer stage attached.

    Returns the run's :class:`SimResult`, the per-class distinct
    ineffectual PC sets, and the per-class total event counts. The
    observer works under any configuration (it replays architectural
    semantics from the committed records, which every configuration
    shares) and never perturbs timing.
    """
    model = PipelineModel(config)
    stage = IneffectualityLogStage(program)
    model.stages.append(stage)
    result = model.run(trace, benchmark=benchmark, label=label)
    sites = {kind: frozenset(pcs)
             for kind, pcs in stage.log.sites.items()}
    return result, sites, dict(stage.log.occurrences)


def ineffectuality_cross_check(static: IneffectualitySites,
                               trace: CommittedTrace, config: SimConfig,
                               program: Program,
                               benchmark: str = "bench",
                               label: str = "crosscheck"
                               ) -> IneffectualityCheck:
    """Check observed ineffectual PCs against the static oracle."""
    _, dynamic, occurrences = collect_ineffectual_sites(
        trace, config, program, benchmark, label)
    candidates = static.as_sets()
    violations = [IneffViolation(kind=kind, pc=pc)
                  for kind in INEFF_CLASSES
                  for pc in sorted(dynamic[kind] - candidates[kind])]
    return IneffectualityCheck(
        benchmark=benchmark,
        config_label=label,
        static_counts=static.counts(),
        dynamic_counts={kind: len(dynamic[kind])
                        for kind in INEFF_CLASSES},
        occurrences=occurrences,
        violations=violations)


__all__ = ["OPT_CLASSES", "OracleCheck", "OracleViolation",
           "IneffViolation", "IneffectualityCheck",
           "collect_dynamic_sites", "collect_ineffectual_sites",
           "cross_check", "ineffectuality_cross_check"]
