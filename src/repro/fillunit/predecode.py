"""The paper's 7 pre-decode bits, bit-exact.

§4.1: "we record dependencies using an extra 7 bits per instruction.
3 bits are added to an instruction's destination to identify whether
the destination is live-out of its checkpoint [... and] situations
where the destination is overwritten within another checkpoint issued
that same cycle. We require 2 bits (1 bit per source operand) to
identify whether the sources are defined internally or are live-in to
the trace. [...] Finally, 2 bits are required to identify an
instruction's block number within a trace."

This module packs and unpacks that 7-bit field so the storage-cost
arithmetic in the paper (28KB of pre-decode bits for a 2K-line cache of
16 4-byte instructions) can be validated, and so the dependency
metadata has a concrete hardware-faithful representation:

======  ==========================================================
bits    meaning
======  ==========================================================
6..4    destination liveness: bit 6 = live-out of own checkpoint,
        bit 5 = overwritten by a later checkpoint in the same cycle
        group, bit 4 = has a destination at all
3       source 0 is trace-internal (register id names the producer)
2       source 1 is trace-internal
1..0    checkpoint block number within the trace (0-3)
======  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SegmentError
from repro.fillunit.dependency import DependencyInfo
from repro.tracecache.segment import TraceSegment

PREDECODE_BITS = 7


@dataclass(frozen=True)
class PreDecode:
    """One instruction's unpacked pre-decode field."""

    has_dest: bool
    dest_liveout: bool
    dest_overwritten_same_group: bool
    src0_internal: bool
    src1_internal: bool
    block: int

    def pack(self) -> int:
        """Pack into the 7-bit field.

        Raises:
            SegmentError: if the block number exceeds 2 bits.
        """
        if not 0 <= self.block <= 3:
            raise SegmentError(f"block number {self.block} needs >2 bits")
        return ((int(self.dest_liveout) << 6)
                | (int(self.dest_overwritten_same_group) << 5)
                | (int(self.has_dest) << 4)
                | (int(self.src0_internal) << 3)
                | (int(self.src1_internal) << 2)
                | self.block)

    @classmethod
    def unpack(cls, field: int) -> "PreDecode":
        """Unpack a 7-bit field.

        Raises:
            SegmentError: if *field* does not fit in 7 bits.
        """
        if not 0 <= field < (1 << PREDECODE_BITS):
            raise SegmentError(f"pre-decode field {field:#x} not 7 bits")
        return cls(
            has_dest=bool(field & (1 << 4)),
            dest_liveout=bool(field & (1 << 6)),
            dest_overwritten_same_group=bool(field & (1 << 5)),
            src0_internal=bool(field & (1 << 3)),
            src1_internal=bool(field & (1 << 2)),
            block=field & 0x3,
        )


def encode_segment(segment: TraceSegment) -> list:
    """Compute the packed pre-decode fields for every instruction of
    *segment* from its dependency metadata.

    Raises:
        SegmentError: if the segment has no dependency info or more
            than four checkpoint blocks (the 2-bit field's capacity —
            the fill unit's 3-conditional-branch limit guarantees at
            most four).
    """
    deps = segment.deps
    if not isinstance(deps, DependencyInfo):
        raise SegmentError("segment has no dependency metadata; run the "
                           "fill unit's marking first")
    fields = []
    for idx, instr in enumerate(segment.instrs):
        sources = [reg for reg in instr.sources() if reg != 0]
        internal = [deps.producer[idx].get(reg) is not None
                    for reg in sources[:2]]
        internal += [False] * (2 - len(internal))
        dest = instr.dest()
        fields.append(PreDecode(
            has_dest=dest is not None,
            dest_liveout=deps.liveout[idx],
            dest_overwritten_same_group=(dest is not None
                                         and not deps.liveout[idx]),
            src0_internal=internal[0],
            src1_internal=internal[1],
            block=min(instr.block_id, 3),
        ).pack())
    return fields


def storage_cost_bytes(num_lines: int = 2048,
                       instrs_per_line: int = 16) -> int:
    """Pre-decode storage for a whole trace cache, in bytes.

    The paper's arithmetic: 2K lines x 16 instructions x 7 bits = 28KB.
    """
    return num_lines * instrs_per_line * PREDECODE_BITS // 8


__all__ = ["PreDecode", "PREDECODE_BITS", "encode_segment",
           "storage_cost_bytes"]
