"""Explicit dependency marking.

The paper's fill unit records 7 extra bits per instruction so the trace
cache line carries its dataflow explicitly: 3 bits of destination
live-out information, 2 bits flagging whether each source is trace-
internal (in which case the register identifier names the producing
instruction), and 2 bits of block number. This module computes the
model equivalent: per-instruction producer maps, live-in flags and
live-out flags for a segment.

The marking is annotation-aware: it runs after the rewriting passes, so
a marked move contributes only its move source and a scaled add reads
the shift's source register.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.registers import ZERO_REG


@dataclass
class DependencyInfo:
    """Dataflow facts for one trace segment (logical order)."""

    #: per instruction: source register -> producing instruction index,
    #: or ``None`` when the value is live-in to the segment.
    producer: list = field(default_factory=list)
    #: per instruction: destination is live-out of the segment.
    liveout: list = field(default_factory=list)
    #: per instruction: number of live-in source operands.
    livein_counts: list = field(default_factory=list)

    def internal_producers(self, index: int) -> set:
        """Indices of segment-internal producers feeding instruction
        *index*."""
        return {p for p in self.producer[index].values() if p is not None}

    def consumers_of(self, index: int) -> list:
        """Indices of instructions consuming instruction *index*'s value."""
        return [i for i in range(len(self.producer))
                if index in self.producer[i].values()]


def mark_dependencies(instrs: list) -> DependencyInfo:
    """Compute :class:`DependencyInfo` for *instrs* in logical order.

    Register zero never creates a dependence (it is a hardwired
    constant, always "ready").
    """
    info = DependencyInfo()
    last_def: dict = {}
    for idx, instr in enumerate(instrs):
        producers: dict = {}
        livein = 0
        for reg in instr.sources():
            if reg == ZERO_REG:
                continue
            producer = last_def.get(reg)
            producers[reg] = producer
            if producer is None:
                livein += 1
        info.producer.append(producers)
        info.livein_counts.append(livein)
        dest = instr.dest()
        if dest is not None:
            last_def[dest] = idx
    # Live-out: the last writer of each register whose value survives
    # the segment. Earlier writers of the same register are dead at
    # segment exit unless an internal consumer reads them (they are
    # still *distributed*; live-out here is segment-boundary liveness).
    final_writer = set(last_def.values())
    info.liveout = [idx in final_writer for idx in range(len(instrs))]
    return info


__all__ = ["DependencyInfo", "mark_dependencies"]
