"""The fill unit proper.

Ties together the collector, branch promotion, dependency marking and
the optimization passes, and installs finished segments into the trace
cache after the configured fill-pipeline latency. The fill unit sits
*behind* retirement — off the critical path — which is the paper's
entire argument for doing optimization work here: multi-cycle latencies
through this structure have negligible performance impact (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.bias import BiasTable
from repro.fillunit.collector import FillCollector, PendingSegment
from repro.fillunit.dependency import mark_dependencies
from repro.fillunit.opts.base import OptimizationConfig, PassManager
from repro.tracecache.cache import TraceCache
from repro.tracecache.segment import BranchInfo, TraceSegment


@dataclass
class FillUnitConfig:
    """Fill unit structure and policy."""

    max_instrs: int = 16
    max_cond_branches: int = 3
    trace_packing: bool = True
    latency: int = 5
    num_clusters: int = 4
    cluster_size: int = 4
    optimizations: OptimizationConfig = field(
        default_factory=OptimizationConfig)
    #: online verification: statically validate every optimized segment
    #: against its pre-optimization snapshot (see :mod:`repro.verify`).
    verify: bool = False
    #: with :attr:`verify`, additionally snapshot around each pass so a
    #: violation names the offending pass instead of the pipeline.
    verify_each: bool = False


@dataclass
class FillUnitStats:
    segments_built: int = 0
    segments_deduped: int = 0
    instructions_collected: int = 0


class FillUnit:
    """Collect retired blocks, optimize, install into the trace cache."""

    def __init__(self, config: FillUnitConfig, trace_cache: TraceCache,
                 bias: BiasTable, registry=None, events=None,
                 spans=None) -> None:
        self.config = config
        self.trace_cache = trace_cache
        self.bias = bias
        self.collector = FillCollector(
            bias, config.max_instrs, config.max_cond_branches,
            config.trace_packing)
        self.verifier = None
        if config.verify:
            from repro.verify import SegmentVerifier
            self.verifier = SegmentVerifier(config.optimizations)
        self.passes = PassManager(config.optimizations,
                                  config.num_clusters, config.cluster_size,
                                  bias=bias, registry=registry,
                                  events=events, verifier=self.verifier,
                                  verify_each=config.verify_each,
                                  spans=spans,
                                  span_window=float(config.latency))
        self.stats = FillUnitStats()
        self.registry = registry
        self.events = events
        #: optional span recorder (timeline tracing; see
        #: repro.telemetry.spans). None keeps the retire path branch-free
        #: beyond a single test per instruction.
        self.spans = spans
        #: retire cycle at which the currently-collecting segment
        #: started (span bookkeeping only).
        self._collect_start = None
        #: optional {"moves"|"reassoc"|"scaled": set of PCs} sink; when
        #: set (by the harness cross-checker), every built segment's
        #: transformed instruction addresses are recorded per opt
        #: class. Plain Python bookkeeping outside the timing model:
        #: modelled cycle counts are unaffected.
        self.opt_site_log = None
        if registry is not None:
            self._m_built = registry.counter("fillunit.segments.built")
            self._m_deduped = registry.counter("fillunit.segments.deduped")
            self._m_promoted = registry.counter(
                "fillunit.branches.promoted")
            self._h_length = registry.histogram("fillunit.segment.length")
            if self.verifier is not None:
                self._m_checked = registry.counter(
                    "fillunit.verify.segments_checked")
                self._m_clean = registry.counter(
                    "fillunit.verify.segments_clean")

    # ------------------------------------------------------------------

    def retire(self, record, cycle: int) -> None:
        """Feed one retired instruction at retirement *cycle*."""
        self.stats.instructions_collected += 1
        if self.spans is None:
            for candidate in self.collector.add(record):
                self._build(candidate, cycle)
            return
        # Traced path: bracket each candidate with its collection
        # window (first contributing retire -> finalizing retire).
        if self._collect_start is None:
            self._collect_start = cycle
        candidates = self.collector.add(record)
        for candidate in candidates:
            self.spans.span(
                "fillunit", "segment.collect", self._collect_start,
                cycle - self._collect_start,
                start_pc=candidate.start_pc, instrs=len(candidate))
            self._build(candidate, cycle)
        if candidates:
            # The current retire may already have opened the next
            # pending segment; approximate its window start as now.
            self._collect_start = cycle

    def note_fetch_miss(self, pc: int) -> None:
        """The fetch engine missed the trace cache at *pc*: align an
        upcoming segment boundary to it (miss-driven construction)."""
        self.collector.note_fetch_miss(pc)

    def assemble_segment(self, candidate: PendingSegment) -> TraceSegment:
        """Assemble the *unoptimized* :class:`TraceSegment` a candidate
        describes (the fill unit's input; also what the verifier and
        ``tools/lint_segments.py`` treat as the original)."""
        instrs = []
        for idx, record in enumerate(candidate.records):
            instr = record.instr.copy()
            instr.block_id = candidate.block_ids[idx]
            instr.flow_id = candidate.flow_ids[idx]
            instr.orig_index = idx
            instrs.append(instr)
        branches = [BranchInfo(b.index, b.pc, b.direction, b.promoted)
                    for b in candidate.branches]
        return TraceSegment(
            start_pc=candidate.start_pc, instrs=instrs, branches=branches,
            block_count=candidate.block_count,
            build_promo=tuple(b.promoted for b in candidate.branches))

    def build_segment(self, candidate: PendingSegment,
                      cycle: int = 0) -> TraceSegment:
        """Construct and optimize a :class:`TraceSegment` from a
        candidate, without touching the trace cache (exposed for tests
        and the optimization-tour example)."""
        segment = self.assemble_segment(candidate)
        original = (segment.clone() if self.verifier is not None
                    else None)
        self.passes.run(segment, cycle)
        if segment.deps is None:
            segment.deps = mark_dependencies(segment.instrs)
        log = self.opt_site_log
        if log is not None:
            for instr in segment.instrs:
                if instr.move_flag:
                    log["moves"].add(instr.pc)
                if instr.reassociated:
                    log["reassoc"].add(instr.pc)
                if instr.scale is not None:
                    log["scaled"].add(instr.pc)
        if self.verifier is not None:
            self._verify(original, segment, cycle)
        return segment

    def _verify(self, original: TraceSegment, optimized: TraceSegment,
                cycle: int) -> None:
        """Validate one rewrite; mirror outcomes to telemetry.

        With per-pass verification the pass manager already checked
        every (snapshot, pass) transition — and equivalence is
        transitive, so those checks subsume the whole-pipeline one
        while naming the offending pass. Otherwise validate the whole
        pipeline's composition in one step.
        """
        if self.passes.verify_each:
            violations = list(self.passes.last_violations)
        else:
            violations = self.verifier.check(original, optimized,
                                             record=False)
        self.verifier.report.record(violations)
        if self.spans is not None:
            # The verify step takes the last slot of the fill-pipeline
            # window (the passes share the preceding slots; see
            # PassManager.run — same subdivision).
            share = self.config.latency / (len(self.passes.passes) + 1)
            start = cycle + len(self.passes.passes) * share
            self.spans.span(
                "fillunit", "segment.verify", start,
                cycle + self.config.latency - start,
                start_pc=optimized.start_pc,
                violations=len(violations))
        if self.registry is not None:
            self._m_checked.add()
            if not any(v.severity == "error" for v in violations):
                self._m_clean.add()
            for violation in violations:
                scope_rule = violation.rule.replace("-", "_")
                self.registry.counter(
                    f"fillunit.verify.violations.{scope_rule}").add()
        if self.events is not None:
            for violation in violations:
                self.events.emit(
                    "verify.violation", cycle,
                    start_pc=optimized.start_pc,
                    opt=violation.pass_name or "(pipeline)",
                    rule=violation.rule, severity=violation.severity,
                    index=violation.index, message=violation.message)

    def _build(self, candidate: PendingSegment, cycle: int) -> None:
        resident = self.trace_cache.probe(candidate.start_pc,
                                          candidate.path_key)
        if resident is not None:
            promo = tuple(b.promoted for b in candidate.branches)
            if promo == resident.build_promo:
                # Identical segment already resident: the rebuild is
                # redundant; keep the line hot instead of re-optimizing.
                self.trace_cache.touch(candidate.start_pc,
                                       candidate.path_key)
                self.stats.segments_deduped += 1
                if self.registry is not None:
                    self._m_deduped.add()
                if self.events is not None:
                    self.events.emit("segment.deduped", cycle,
                                     start_pc=candidate.start_pc)
                return
            # Same path but promotion state changed: rebuild so the
            # line's embedded static predictions track the bias table.
        if self.spans is not None:
            # The fill pipeline occupies [cycle, cycle + latency); the
            # per-pass (and verify) sub-spans nest inside this window.
            self.spans.span(
                "fillunit", "segment.optimize", cycle,
                self.config.latency, start_pc=candidate.start_pc,
                instrs=len(candidate))
        segment = self.build_segment(candidate, cycle)
        self.trace_cache.insert(segment, cycle, self.config.latency)
        self.stats.segments_built += 1
        promoted = sum(1 for b in segment.branches if b.promoted)
        if self.registry is not None:
            self._m_built.add()
            self._h_length.observe(len(segment.instrs))
            if promoted:
                self._m_promoted.add(promoted)
        if self.events is not None:
            self.events.emit(
                "segment.built", cycle, start_pc=segment.start_pc,
                instrs=len(segment.instrs), blocks=segment.block_count,
                branches=len(segment.branches), promoted=promoted)
            for info in segment.branches:
                if info.promoted:
                    self.events.emit("branch.promoted", cycle,
                                     pc=info.pc,
                                     direction=info.direction,
                                     start_pc=segment.start_pc)

    @property
    def pass_totals(self) -> dict:
        """Accumulated optimization counts across all built segments."""
        return dict(self.passes.totals)


__all__ = ["FillUnit", "FillUnitConfig", "FillUnitStats"]
