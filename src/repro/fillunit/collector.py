"""Block collection: turning the retire stream into segment candidates.

The collector consumes committed instructions in retirement order and
cuts them into trace-segment candidates under the paper's rules:

* at most 16 instructions per segment;
* at most three *unpromoted* conditional branches (promoted branches
  carry embedded static predictions and do not consume a slot);
* returns, indirect jumps and serializing instructions terminate the
  segment; subroutine calls and direct jumps do not;
* with **trace packing** (the baseline), instructions fill the segment
  without regard to block boundaries; without it, only whole blocks are
  appended.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.bias import BiasTable


@dataclass
class PendingBranch:
    """A conditional branch recorded while collecting."""

    index: int
    pc: int
    direction: bool
    promoted: bool


@dataclass
class PendingSegment:
    """A finalized segment candidate (still in record form)."""

    records: list = field(default_factory=list)
    branches: list = field(default_factory=list)
    block_ids: list = field(default_factory=list)
    flow_ids: list = field(default_factory=list)
    block_count: int = 1

    @property
    def start_pc(self) -> int:
        return self.records[0].pc

    @property
    def path_key(self) -> tuple:
        return tuple(record.pc for record in self.records)

    def __len__(self) -> int:
        return len(self.records)


class FillCollector:
    """Accumulates retired instructions into segment candidates."""

    def __init__(self, bias: BiasTable, max_instrs: int = 16,
                 max_cond_branches: int = 3,
                 trace_packing: bool = True) -> None:
        self.bias = bias
        self.max_instrs = max_instrs
        self.max_cond_branches = max_cond_branches
        self.trace_packing = trace_packing
        self._pending = PendingSegment()
        self._block = PendingSegment()     # used only when not packing
        self._block_id = 0
        self._flow_id = 0
        # Fetch addresses that recently missed in the trace cache. The
        # fill unit aligns segment starts to these so the segments it
        # builds begin exactly where fetch will next look them up —
        # the standard miss-driven trace-construction policy. Bounded
        # FIFO so stale requests age out.
        self._miss_points: dict = {}
        self._miss_capacity = 64

    def note_fetch_miss(self, pc: int) -> None:
        """Record that fetch missed the trace cache at *pc*."""
        self._miss_points.pop(pc, None)
        self._miss_points[pc] = None
        if len(self._miss_points) > self._miss_capacity:
            self._miss_points.pop(next(iter(self._miss_points)))

    # ------------------------------------------------------------------

    def add(self, record) -> list:
        """Feed one retired instruction; returns the (possibly empty)
        list of segment candidates finalized by it.

        Block-granular collection can finalize two candidates on one
        instruction (the pending segment is cut because the completed
        block does not fit, and the block itself then ends with a
        terminator), hence a list rather than an optional."""
        if self.trace_packing:
            return self._add_packed(record)
        return self._add_block_granular(record)

    def flush(self) -> list:
        """Finalize whatever is pending (end of simulation); returns
        zero, one or two candidates (block-granular collection may hold
        a partial block that does not fit the pending segment)."""
        out = []
        if not self.trace_packing and len(self._block):
            fits = (len(self._pending) + len(self._block)
                    <= self.max_instrs
                    and (self._pending_unpromoted()
                         + self._block_unpromoted())
                    <= self.max_cond_branches)
            if not fits and len(self._pending):
                out.append(self._finalize())
            self._append_block_to_pending()
        if len(self._pending):
            out.append(self._finalize())
        self._reset()
        return out

    # -- packed mode -----------------------------------------------------

    def _add_packed(self, record) -> list:
        instr = record.instr
        out = []
        if len(self._pending) and record.pc in self._miss_points:
            # Align a fresh segment to an outstanding fetch-miss point.
            del self._miss_points[record.pc]
            out.append(self._finalize())
        promoted = False
        if instr.is_cond_branch():
            promoted = self.bias.is_promoted(record.pc)
            if (not promoted
                    and self._pending_unpromoted() >= self.max_cond_branches):
                out.append(self._finalize())
        self._append(self._pending, record, promoted)
        if (instr.terminates_segment()
                or len(self._pending) >= self.max_instrs):
            out.append(self._finalize())
        return out

    # -- block-granular mode ----------------------------------------------

    def _add_block_granular(self, record) -> list:
        instr = record.instr
        promoted = (instr.is_cond_branch()
                    and self.bias.is_promoted(record.pc))
        self._append(self._block, record, promoted)
        block_done = (instr.is_ctrl() or instr.terminates_segment()
                      or len(self._block) >= self.max_instrs)
        if not block_done:
            return []
        out = []
        fits = (len(self._pending) + len(self._block) <= self.max_instrs
                and (self._pending_unpromoted()
                     + self._block_unpromoted()) <= self.max_cond_branches)
        if not fits and len(self._pending):
            out.append(self._finalize())
        self._append_block_to_pending()
        terminal = self._pending.records[-1].instr.terminates_segment()
        if terminal or len(self._pending) >= self.max_instrs:
            out.append(self._finalize())
        return out

    # ------------------------------------------------------------------

    def _append(self, target: PendingSegment, record,
                promoted: bool) -> None:
        instr = record.instr
        index = len(target.records)
        target.records.append(record)
        target.block_ids.append(self._block_id)
        target.flow_ids.append(self._flow_id)
        if instr.is_cond_branch():
            target.branches.append(
                PendingBranch(index, record.pc, record.taken, promoted))
            self._block_id += 1
            self._flow_id += 1
        elif instr.is_ctrl():
            self._flow_id += 1

    def _append_block_to_pending(self) -> None:
        base = len(self._pending.records)
        self._pending.records.extend(self._block.records)
        self._pending.block_ids.extend(self._block.block_ids)
        self._pending.flow_ids.extend(self._block.flow_ids)
        for branch in self._block.branches:
            self._pending.branches.append(PendingBranch(
                branch.index + base, branch.pc, branch.direction,
                branch.promoted))
        self._block = PendingSegment()

    def _pending_unpromoted(self) -> int:
        return sum(1 for b in self._pending.branches if not b.promoted)

    def _block_unpromoted(self) -> int:
        return sum(1 for b in self._block.branches if not b.promoted)

    def _finalize(self) -> PendingSegment:
        candidate = self._pending
        base_block = candidate.block_ids[0]
        base_flow = candidate.flow_ids[0]
        candidate.block_ids = [b - base_block for b in candidate.block_ids]
        candidate.flow_ids = [f - base_flow for f in candidate.flow_ids]
        candidate.block_count = candidate.block_ids[-1] + 1
        self._pending = PendingSegment()
        return candidate

    def _reset(self) -> None:
        self._pending = PendingSegment()
        self._block = PendingSegment()
        self._block_id = 0
        self._flow_id = 0


__all__ = ["FillCollector", "PendingSegment", "PendingBranch"]
