"""Register-move marking (paper §4.2).

Two cooperating transformations:

1. **Marking.** Instructions that pass an input operand unchanged to
   their destination (``ADDI rx <- ry + 0`` and friends) get the 1-bit
   ``move_flag``. The rename logic then completes them by copying the
   source mapping — no reservation station, no functional unit, no
   bypass-network trip.

2. **Dependent rewriting.** Because rename must read the move source's
   mapping before writing the destination's, trace-internal consumers
   of the move are rewritten to source the move's *source* register
   directly, avoiding a cycle of delay (paper: "The fill unit handles
   this by modifying instructions within the trace cache line which are
   dependent upon the move operation to be dependent upon the source of
   the move instead.").

The rewriting uses a per-segment alias map: ``alias[r] == s`` asserts
that at the current point in the trace, register ``r`` holds the same
value as register ``s``. Aliases die when either side is redefined.
"""

from __future__ import annotations

from repro.fillunit.opts.base import OptimizationPass, PassContext
from repro.isa.instruction import Instruction, move_source
from repro.isa.opcodes import Format
from repro.tracecache.segment import TraceSegment


def _rewrite_sources(instr: Instruction, alias: dict) -> int:
    """Rewrite *instr*'s register sources through *alias*; returns the
    number of operands changed.

    Indirect-jump sources (``JR``/``JALR``) are left alone: rewriting
    them is architecturally sound but would obscure return-vs-indirect
    classification, which both the RAS and the segment-termination rule
    depend on.
    """
    fmt = instr.format
    if fmt in (Format.JR, Format.JALR, Format.J, Format.NONE):
        return 0
    changed = 0

    def map_reg(reg):
        nonlocal changed
        new = alias.get(reg, reg)
        if new != reg:
            changed += 1
        return new

    if fmt in (Format.R3, Format.LOADX, Format.BR2, Format.STORE):
        instr.rs = map_reg(instr.rs)
        instr.rt = map_reg(instr.rt)
    elif fmt in (Format.R2I, Format.SHIFT, Format.LOAD, Format.BR1):
        instr.rs = map_reg(instr.rs)
    elif fmt is Format.STOREX:
        instr.rd = map_reg(instr.rd)
        instr.rs = map_reg(instr.rs)
        instr.rt = map_reg(instr.rt)
    if changed:
        instr.move_bypassed = True
    return changed


class RegisterMovePass(OptimizationPass):
    """Mark register moves; rewrite their trace-internal dependents."""

    name = "moves"
    surface = frozenset({"move_flag", "move_bypassed",
                         "rd", "rs", "rt"})

    def apply(self, segment: TraceSegment, ctx: PassContext) -> dict:
        alias: dict = {}
        marked = 0
        rewritten_operands = 0
        for instr in segment.instrs:
            # Rewrite sources first so detection sees final operands
            # (a move of a move chains to the ultimate source).
            rewritten_operands += _rewrite_sources(instr, alias)
            src = move_source(instr)
            # A guarded instruction only conditionally updates its
            # destination; rename cannot complete it as an
            # unconditional mapping copy, so it is never a move.
            if src is not None and instr.guard is None:
                instr.move_flag = True
                marked += 1
            dest = instr.dest()
            if dest is None:
                continue
            # Redefinition of `dest` kills aliases on both sides.
            alias.pop(dest, None)
            for key in [k for k, v in alias.items() if v == dest]:
                alias.pop(key)
            if instr.move_flag and src != dest:
                alias[dest] = alias.get(src, src)
        return {"moves_marked": marked,
                "move_operands_rewritten": rewritten_operands}


__all__ = ["RegisterMovePass"]
