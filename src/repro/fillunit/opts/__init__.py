"""The paper's four dynamic trace optimizations, as fill-unit passes."""

from repro.fillunit.opts.base import (
    OptimizationConfig,
    OptimizationPass,
    PassManager,
    PassContext,
)
from repro.fillunit.opts.cse import CommonSubexpressionPass
from repro.fillunit.opts.deadcode import DeadCodePass
from repro.fillunit.opts.moves import RegisterMovePass
from repro.fillunit.opts.reassoc import ReassociationPass
from repro.fillunit.opts.scaledadd import ScaledAddPass
from repro.fillunit.opts.placement import PlacementPass
from repro.fillunit.opts.predication import PredicationPass

__all__ = [
    "OptimizationConfig",
    "OptimizationPass",
    "PassManager",
    "PassContext",
    "CommonSubexpressionPass",
    "DeadCodePass",
    "RegisterMovePass",
    "ReassociationPass",
    "ScaledAddPass",
    "PlacementPass",
    "PredicationPass",
]
