"""Dead-code elimination (paper §5, future work).

"Dead code elimination, for example, could be used if the proper
recovery mechanisms were in place to handle the cases in which the
correct path of execution only follows a portion of the trace cache
line."

The paper's concern is early exits: removing an instruction whose
result is only dead *if the whole segment executes* breaks the
partially-executed case. We therefore implement the conservative,
always-safe subset — an instruction is removed only when its result is
dead at EVERY suffix of the segment:

* its destination is redefined later in the segment,
* no instruction between the two definitions (nor the redefinition
  itself) reads the destination, and
* **every conditional-branch exit between them leaves the segment**
  is handled by requiring the pair to sit in the same checkpoint block
  (no branch in between) — a branch between them could leave the
  segment with the value still architecturally live.

Removed instructions become NOPs occupying their slot (the trace cache
line keeps its geometry; the scheduler simply never dispatches them) —
modelled here by dropping them from issue via the ``dead`` flag.
"""

from __future__ import annotations

from repro.fillunit.opts.base import OptimizationPass, PassContext
from repro.isa.instruction import make_nop
from repro.tracecache.segment import TraceSegment


class DeadCodePass(OptimizationPass):
    """Squash provably dead computations inside one segment."""

    name = "dead_code"
    surface = frozenset({"squash"})

    def apply(self, segment: TraceSegment, ctx: PassContext) -> dict:
        instrs = segment.instrs
        removed = 0
        for idx, instr in enumerate(instrs):
            dest = instr.dest()
            if dest is None or instr.is_mem() or instr.is_ctrl() \
                    or instr.is_serializing():
                continue
            if not self._dead_within_block(instrs, idx, dest):
                continue
            replacement = make_nop()
            replacement.pc = instr.pc
            replacement.block_id = instr.block_id
            replacement.flow_id = instr.flow_id
            replacement.orig_index = instr.orig_index
            instrs[idx] = replacement
            removed += 1
        return {"dead_code_removed": removed}

    @staticmethod
    def _dead_within_block(instrs: list, idx: int, dest: int) -> bool:
        """True when *dest* is overwritten later in the same checkpoint
        block with no intervening reader."""
        block = instrs[idx].block_id
        for later in instrs[idx + 1:]:
            if later.block_id != block:
                return False             # a branch exit may observe dest
            if dest in later.sources():
                return False
            if later.dest() == dest:
                return True              # overwritten before any use
        return False                     # live-out of the segment


__all__ = ["DeadCodePass"]
