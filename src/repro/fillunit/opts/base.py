"""Optimization pass framework.

Each of the paper's four trace optimizations is a pass over a
:class:`~repro.tracecache.segment.TraceSegment`; the
:class:`PassManager` applies the enabled subset in a fixed order: the
extension passes first (predication, CSE, dead code — they create and
consume the move idioms the published passes then exploit), then the
paper's order (moves, reassociation, scaled adds, then placement).
Placement always runs last, whatever subset is enabled, because it
consumes the final dependence structure; the constructor enforces
this.

Passes run inside the fill pipeline, off the critical path; their
*cost* is modelled as the fill-unit latency knob, not per-pass cycles
(the paper varies 1/5/10 cycles for the whole structure and finds the
impact negligible).

For verification, every pass declares its *mutation surface* — the
per-instruction fields and segment structures it is allowed to change.
With :attr:`PassManager.verify_each`, the manager snapshots the
segment around each pass and hands (snapshot, segment, pass, surface)
to a segment verifier, so a violation names the offending pass rather
than the whole pipeline; arbitrary pre/post hooks get the same
snapshots.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError
from repro.tracecache.segment import TraceSegment


@dataclass
class OptimizationConfig:
    """Which optimizations the fill unit performs.

    The first four are the paper's contributions; ``cse`` and
    ``dead_code`` are the conservative subsets of the extensions the
    paper's conclusion proposes as future work (§5).
    """

    moves: bool = False
    reassoc: bool = False
    scaled_adds: bool = False
    placement: bool = False
    cse: bool = False
    dead_code: bool = False
    predication: bool = False
    #: the paper inhibits reassociation within a basic block (the
    #: compiler already does it there); disable for the ablation run.
    reassoc_cross_flow_only: bool = True
    #: maximum shift distance a scaled add may absorb (2 stored bits
    #: plus the ALU path-length argument give the paper's limit of 3).
    max_scale_shift: int = 3

    @classmethod
    def none(cls) -> "OptimizationConfig":
        """The baseline: no trace optimizations."""
        return cls()

    @classmethod
    def all(cls) -> "OptimizationConfig":
        """The paper's combined configuration (the four published
        optimizations; extensions stay off)."""
        return cls(moves=True, reassoc=True, scaled_adds=True,
                   placement=True)

    @classmethod
    def extended(cls) -> "OptimizationConfig":
        """The paper's four plus its proposed future-work passes."""
        return cls(moves=True, reassoc=True, scaled_adds=True,
                   placement=True, cse=True, dead_code=True,
                   predication=True)

    @classmethod
    def only(cls, name: str) -> "OptimizationConfig":
        """Enable a single optimization by name (figure 3-6 runs)."""
        valid = {"moves", "reassoc", "scaled_adds", "placement",
                 "cse", "dead_code", "predication"}
        if name not in valid:
            raise ValueError(f"unknown optimization {name!r}; "
                             f"expected one of {sorted(valid)}")
        return cls(**{name: True})

    def enabled_names(self) -> list:
        return [name for name in
                ("predication", "cse", "dead_code", "moves", "reassoc",
                 "scaled_adds", "placement")
                if getattr(self, name)]


@dataclass
class PassContext:
    """Microarchitectural facts the passes may exploit.

    The fill unit is not architecturally visible, so it is free to
    tailor its output to the execution engine — here, the cluster
    geometry used by the placement pass.
    """

    num_clusters: int = 4
    cluster_size: int = 4
    config: OptimizationConfig = field(default_factory=OptimizationConfig)
    #: the bias table, when available: lets passes ask whether a branch
    #: is strongly biased (predication skips well-predicted branches).
    bias: object = None
    #: optional telemetry registry; :meth:`reject` records why a pass
    #: declined a candidate it matched (scope
    #: ``fillunit.opts.<pass>.rejected.<reason>``).
    registry: object = None
    #: per-segment rejection counts ``{(pass, reason): n}``, drained by
    #: the pass manager into ``opt.rejected`` events.
    rejections: dict = field(default_factory=dict)

    def reject(self, pass_name: str, reason: str) -> None:
        """A pass matched a candidate but could not transform it."""
        key = (pass_name, reason)
        self.rejections[key] = self.rejections.get(key, 0) + 1
        if self.registry is not None:
            self.registry.counter(
                f"fillunit.opts.{pass_name}.rejected.{reason}").add()


class OptimizationPass(abc.ABC):
    """One trace transformation."""

    name: str = "pass"

    #: The pass's declared mutation surface: per-instruction field
    #: names (``op``, ``rs``, ``imm``, ``scale``, ``guard``, ...) plus
    #: the tokens ``squash`` (may replace instructions with NOPs),
    #: ``slots`` and ``branches``. ``None`` disables surface checking
    #: for the pass. The segment verifier's ``pass-surface`` rule
    #: flags any mutation outside this set.
    surface: Optional[frozenset] = None

    @abc.abstractmethod
    def apply(self, segment: TraceSegment, ctx: PassContext) -> dict:
        """Transform *segment* in place; return ``{stat: count}``."""


class PassManager:
    """Applies the enabled passes in the paper's order."""

    def __init__(self, config: OptimizationConfig,
                 num_clusters: int = 4, cluster_size: int = 4,
                 bias=None, registry=None, events=None,
                 verifier=None, verify_each: bool = False,
                 spans=None, span_window: float = 0.0) -> None:
        from repro.fillunit.opts.cse import CommonSubexpressionPass
        from repro.fillunit.opts.deadcode import DeadCodePass
        from repro.fillunit.opts.moves import RegisterMovePass
        from repro.fillunit.opts.placement import PlacementPass
        from repro.fillunit.opts.predication import PredicationPass
        from repro.fillunit.opts.reassoc import ReassociationPass
        from repro.fillunit.opts.scaledadd import ScaledAddPass

        self.context = PassContext(num_clusters, cluster_size, config,
                                   bias=bias, registry=registry)
        self.registry = registry
        self.events = events
        #: optional span recorder; each pass gets an even slice of the
        #: fill-pipeline window *span_window* (simulated cycles). The
        #: subdivision is presentational — the paper models pass cost
        #: only as the fill unit's total latency.
        self.spans = spans
        self.span_window = span_window
        self.passes: list = []
        if config.predication:
            self.passes.append(PredicationPass())
        if config.cse:
            self.passes.append(CommonSubexpressionPass())
        if config.dead_code:
            self.passes.append(DeadCodePass())
        if config.moves:
            self.passes.append(RegisterMovePass())
        if config.reassoc:
            self.passes.append(ReassociationPass())
        if config.scaled_adds:
            self.passes.append(ScaledAddPass())
        if config.placement:
            self.passes.append(PlacementPass())
        # Placement consumes the final dependence structure, so it must
        # run after every rewriting pass — including the extensions,
        # whose docstring drift once suggested otherwise.
        names = [opt_pass.name for opt_pass in self.passes]
        if "placement" in names and names[-1] != "placement":
            raise ConfigError(
                f"placement must be the final pass, got order {names}")
        self.totals: dict = {}
        #: optional :class:`repro.verify.SegmentVerifier`; with
        #: *verify_each*, every pass is checked in isolation against a
        #: pre-pass snapshot so violations name the offending pass.
        self.verifier = verifier
        self.verify_each = bool(verify_each and verifier is not None)
        #: hooks ``f(pass_name, segment)`` run before each pass.
        self.pre_pass_hooks: list = []
        #: hooks ``f(pass_name, snapshot, segment, stats)`` run after
        #: each pass; *snapshot* is the pre-pass copy (``None`` unless
        #: verify_each or a post hook is registered).
        self.post_pass_hooks: list = []
        #: violations found by per-pass verification in the last run().
        self.last_violations: list = []

    def run(self, segment: TraceSegment, cycle: int = 0) -> dict:
        """Apply all passes to *segment*; accumulate and return stats.

        When the manager was constructed with a telemetry registry /
        event stream, per-pass counts are mirrored to
        ``fillunit.opts.<pass>.<stat>`` scopes and ``opt.applied`` /
        ``opt.rejected`` events are emitted (one per pass and stat,
        tagged with the segment's start PC).
        """
        from repro.fillunit.dependency import mark_dependencies

        stats: dict = {}
        self.context.rejections.clear()
        self.last_violations = []
        need_snapshot = self.verify_each or bool(self.post_pass_hooks)
        # Span subdivision of the fill-pipeline window: the passes (and
        # the verify step, when enabled) share [cycle, cycle+window)
        # evenly. FillUnit._verify uses the same formula for the last
        # slot — keep them in sync.
        span_share = 0.0
        if self.spans is not None:
            slots = len(self.passes) + (1 if self.verifier is not None
                                        else 0)
            span_share = self.span_window / max(slots, 1)
        for pass_index, opt_pass in enumerate(self.passes):
            # Placement consumes the dependence structure produced by
            # the rewriting passes, so (re)mark just before it.
            if opt_pass.name == "placement":
                segment.deps = mark_dependencies(segment.instrs)
            snapshot = segment.clone() if need_snapshot else None
            for hook in self.pre_pass_hooks:
                hook(opt_pass.name, segment)
            pass_stats = opt_pass.apply(segment, self.context)
            if self.spans is not None:
                self.spans.span(
                    "fillunit", f"pass.{opt_pass.name}",
                    cycle + pass_index * span_share, span_share,
                    start_pc=segment.start_pc,
                    **{k: v for k, v in pass_stats.items() if v})
            for hook in self.post_pass_hooks:
                hook(opt_pass.name, snapshot, segment, pass_stats)
            if self.verify_each:
                self.last_violations += self.verifier.check(
                    snapshot, segment, pass_name=opt_pass.name,
                    surface=opt_pass.surface, record=False)
            for key, count in pass_stats.items():
                stats[key] = stats.get(key, 0) + count
            if self.registry is not None:
                for key, count in pass_stats.items():
                    if count:
                        self.registry.counter(
                            f"fillunit.opts.{opt_pass.name}.{key}"
                        ).add(count)
            if self.events is not None:
                for key, count in pass_stats.items():
                    if count:
                        self.events.emit(
                            "opt.applied", cycle,
                            opt=opt_pass.name, stat=key, count=count,
                            start_pc=segment.start_pc)
        if self.events is not None:
            for (name, reason), count in self.context.rejections.items():
                self.events.emit("opt.rejected", cycle, opt=name,
                                 reason=reason, count=count,
                                 start_pc=segment.start_pc)
        if segment.deps is None:
            segment.deps = mark_dependencies(segment.instrs)
        for key, count in stats.items():
            self.totals[key] = self.totals.get(key, 0) + count
        return stats


__all__ = ["OptimizationConfig", "OptimizationPass", "PassManager",
           "PassContext"]
