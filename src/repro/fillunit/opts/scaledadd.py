"""Scaled-add creation (paper §4.4).

An add (or load/store address computation) directly dependent on a
short immediate left shift is collapsed into a scaled add::

    SLL  rw <- rx << 2            SLL  rw <- rx << 2
    ADD  ry <- rw + rz    ==>     ADD  ry <- (rx << 2) + rz   [scaled]

The shift stays in the segment (its result may have other consumers and
the fill unit performs no dead-code elimination), but the add no longer
*waits* for it: the modified ALU shifts the operand by up to 3 bits on
the way into the adder, a one-cycle operation costing roughly two gate
delays. Two extra bits per trace cache instruction hold the shift
amount; the fill unit swaps the add's source operands when needed so
the shifted value sits in the scaled slot.

This is dependence collapsing (Sazeides et al.) with the fill unit as
the dynamic mechanism; shift+add pairs are common address arithmetic
for array indexing, about 5% of the dynamic stream in integer code.
"""

from __future__ import annotations

from repro.fillunit.opts.base import OptimizationPass, PassContext
from repro.isa.instruction import ScaleAnnotation
from repro.isa.opcodes import Format, Op, SCALED_ADD_TARGETS
from repro.tracecache.segment import TraceSegment

#: Formats whose rs/rt operands are interchangeable for the address or
#: sum computation (commutative operand slots).
_SWAPPABLE = {Format.R3, Format.LOADX, Format.STOREX}


class ScaledAddPass(OptimizationPass):
    """Collapse shift+add dependence pairs into scaled adds."""

    name = "scaled_adds"
    surface = frozenset({"scale", "rs", "rt"})

    def apply(self, segment: TraceSegment, ctx: PassContext) -> dict:
        max_shift = ctx.config.max_scale_shift
        # reg -> (shift source, shift amount): reg currently holds
        # (source << amount) and neither register was redefined since.
        shift_prov: dict = {}
        created = 0
        for instr in segment.instrs:
            if (instr.op in SCALED_ADD_TARGETS and instr.scale is None
                    and not instr.move_flag):
                created += self._try_annotate(instr, shift_prov)
            dest = instr.dest()
            if dest is None:
                continue
            for key in [k for k, v in shift_prov.items() if v[0] == dest]:
                shift_prov.pop(key)
            shift_prov.pop(dest, None)
            # A guarded shift only conditionally holds its result, so
            # it cannot seed provenance.
            if instr.op is Op.SLL and not instr.move_flag \
                    and instr.guard is None:
                if 1 <= (instr.imm or 0) <= max_shift \
                        and instr.rs != dest:
                    shift_prov[dest] = (instr.rs, instr.imm)
                elif (instr.imm or 0) > max_shift:
                    # Only 2 stored bits (plus the ALU path-length
                    # argument): wider shifts cannot be absorbed.
                    ctx.reject(self.name, "shift_too_large")
        return {"scaled_adds": created}

    @staticmethod
    def _try_annotate(instr, shift_prov: dict) -> int:
        """Annotate *instr* if one of its address/sum operands is a
        live shift result; returns 1 on success."""
        entry = shift_prov.get(instr.rs)
        if entry is None and instr.format in _SWAPPABLE:
            other = shift_prov.get(instr.rt)
            if other is not None:
                # Move the shifted value into the scaled (rs) slot.
                instr.rs, instr.rt = instr.rt, instr.rs
                entry = other
        if entry is None:
            return 0
        instr.scale = ScaleAnnotation(src=entry[0], shamt=entry[1])
        return 1


__all__ = ["ScaledAddPass"]
