"""Dynamic predication of hard-to-predict short forward branches.

The paper's introduction names this transformation class explicitly:
"dynamic predication of hard-to-predict short forward branches are some
examples" of what the fill unit can do. This pass implements the
minimal hammock case:

    beq  $rx, $zero, skip      # hard to predict, skips ONE instruction
    <simple ALU instruction>
    skip: ...

becomes, inside the trace segment,

    nop                        # the branch is gone — no prediction,
                               # no misprediction, no predictor slot
    <same instruction>  ; guard($rx != 0)
    ...

converting the control dependence into a data dependence: the guarded
instruction always issues and writes either its computed value or its
old destination value (conditional-move semantics). The resulting
segment is correct on BOTH branch outcomes, so it matches the actual
path at fetch whichever way the branch goes.

Applicability (all conservative):

* the branch compares a register against ``$zero`` (``beq``/``bne``) —
  its condition IS a register, so no predicate computation is needed;
* the embedded path fell through (the skipped instruction is in the
  segment) and the branch displacement skips exactly that instruction;
* the skipped instruction is a simple ALU op with a destination —
  no memory access, no control, no prior annotation;
* the branch is *hard*: not promoted by the bias table (strongly
  biased branches predict nearly perfectly, and predication would only
  lengthen their dependence chains — the paper's framing).
"""

from __future__ import annotations

from repro.fillunit.opts.base import OptimizationPass, PassContext
from repro.isa.instruction import GuardAnnotation, make_nop
from repro.isa.opcodes import Op
from repro.tracecache.segment import TraceSegment


class PredicationPass(OptimizationPass):
    """If-convert single-instruction hammocks on hard branches."""

    name = "predication"
    surface = frozenset({"squash", "guard", "branches"})

    def apply(self, segment: TraceSegment, ctx: PassContext) -> dict:
        converted = 0
        keep_branches = []
        for info in segment.branches:
            idx = info.index
            if self._convertible(segment, info, ctx):
                branch = segment.instrs[idx]
                body = segment.instrs[idx + 1]
                body.guard = GuardAnnotation(
                    reg=branch.rs,
                    # BEQ skips when rs == 0: the body runs when rs != 0.
                    execute_if_zero=(branch.op is Op.BNE))
                squashed = make_nop()
                squashed.pc = branch.pc
                squashed.block_id = branch.block_id
                squashed.flow_id = branch.flow_id
                squashed.orig_index = branch.orig_index
                segment.instrs[idx] = squashed
                converted += 1
            else:
                keep_branches.append(info)
        segment.branches = keep_branches
        return {"predicated_branches": converted}

    @staticmethod
    def _convertible(segment: TraceSegment, info, ctx: PassContext) -> bool:
        idx = info.index
        branch = segment.instrs[idx]
        if branch.op not in (Op.BEQ, Op.BNE) or branch.rt != 0:
            return False
        if info.promoted or info.direction:
            # Promoted = easy to predict; taken-path segments do not
            # contain the skipped instruction at all.
            return False
        if ctx.bias is not None and ctx.bias.is_promoted(info.pc):
            return False
        if idx + 1 >= len(segment.instrs):
            return False
        if branch.imm != 8:
            return False                  # must skip exactly one slot
        body = segment.instrs[idx + 1]
        if (body.dest() is None or body.is_mem() or body.is_ctrl()
                or body.is_serializing() or body.guard is not None
                or body.scale is not None or body.move_flag):
            return False
        if body.op is Op.NOP:
            return False
        return True


__all__ = ["PredicationPass"]
