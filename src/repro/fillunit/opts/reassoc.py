"""Reassociation (paper §4.3).

Dependent pairs of immediate-add instructions are rewritten so the
second sources the first's *source* with a combined immediate::

    ADDI rx <- ry + 4          ADDI rx <- ry + 4
    ADDI rz <- rx + 4   ==>    ADDI rz <- ry + 8

removing one step from the dependence chain. The fill unit applies the
rewrite only when the new immediate still fits the 16-bit field (the
trace cache stores unmodified instruction formats) and — mirroring the
paper's methodology — only when the pair crosses a control-flow
boundary, since the compiler already reassociates within basic blocks.
Because segments span branches, calls and even procedure boundaries,
this finds pairs no static multi-block compiler safely can.

The pass keeps a provenance map: ``prov[r] == (base, k, flow)`` asserts
that register ``r`` currently equals ``base + k`` where ``base`` was
read in control-flow region ``flow`` and has not been redefined since.
Chains collapse transitively: a rewritten ADDI re-registers its own
provenance against the original base.
"""

from __future__ import annotations

from repro.fillunit.opts.base import OptimizationPass, PassContext
from repro.isa.opcodes import Op
from repro.tracecache.segment import TraceSegment

_IMM_MIN, _IMM_MAX = -32768, 32767


class ReassociationPass(OptimizationPass):
    """Combine immediates of dependent cross-block ADDI pairs."""

    name = "reassoc"
    surface = frozenset({"rs", "imm", "reassociated"})

    def apply(self, segment: TraceSegment, ctx: PassContext) -> dict:
        cross_only = ctx.config.reassoc_cross_flow_only
        prov: dict = {}
        rewritten = 0
        for instr in segment.instrs:
            if instr.op is Op.ADDI and not instr.move_flag:
                entry = prov.get(instr.rs)
                if entry is not None:
                    base, acc, def_flow = entry
                    combined = acc + instr.imm
                    crosses = instr.flow_id != def_flow
                    if not _IMM_MIN <= combined <= _IMM_MAX:
                        # The trace cache stores unmodified instruction
                        # formats: a combined immediate past 16 bits
                        # cannot be encoded.
                        ctx.reject(self.name, "imm_overflow")
                    elif cross_only and not crosses:
                        # The compiler already reassociates inside a
                        # basic block (paper methodology).
                        ctx.reject(self.name, "same_flow")
                    else:
                        instr.rs = base
                        instr.imm = combined
                        instr.reassociated = True
                        rewritten += 1
            dest = instr.dest()
            if dest is None:
                continue
            # Redefinition invalidates provenance based on `dest` ...
            for key in [k for k, v in prov.items() if v[0] == dest]:
                prov.pop(key)
            prov.pop(dest, None)
            # ... then the ADDI itself establishes new provenance,
            # unless it consumed its own base (the old value is then
            # unreachable) or it is guarded (a predicated add only
            # conditionally equals base + imm).
            if (instr.op is Op.ADDI and not instr.move_flag
                    and instr.guard is None and instr.rs != dest):
                prov[dest] = (instr.rs, instr.imm, instr.flow_id)
        return {"reassociated": rewritten}


__all__ = ["ReassociationPass"]
