"""Common-subexpression elimination (paper §5, future work).

"The implementation of more aggressive optimizations, such as common
subexpression elimination, may yield further improvements."

Within one trace segment, a computation whose opcode and source values
provably match an earlier one is replaced by a register *move* from the
earlier result — which the register-move machinery (paper §4.2) then
executes for free in rename. CSE therefore composes with, and is run
before, the move pass.

Safety: a pair matches only when (a) the opcodes and immediates are
identical, (b) every source register still holds the same value it had
at the earlier instruction (no intervening redefinition), and (c) the
earlier result register still holds that result. Loads are never
eliminated (an intervening store may alias), nor are multi-output or
control instructions. These conditions make the rewrite architecturally
invisible even if the segment is only partially executed — the move
still computes the same value the original computation would have —
so no recovery safeguards are needed for this conservative subset.
"""

from __future__ import annotations

from repro.fillunit.opts.base import OptimizationPass, PassContext
from repro.isa.opcodes import Op
from repro.tracecache.segment import TraceSegment

#: Pure register computations eligible for elimination.
_CSE_OPS = frozenset({
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.NOR, Op.SLT, Op.SLTU,
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI, Op.SLTIU,
    Op.SLL, Op.SRL, Op.SRA, Op.SLLV, Op.SRLV, Op.SRAV, Op.LUI,
    Op.MULT,
})


class CommonSubexpressionPass(OptimizationPass):
    """Replace repeated computations with moves from the first result."""

    name = "cse"
    surface = frozenset({"op", "rs", "rt", "imm", "reassociated"})

    def apply(self, segment: TraceSegment, ctx: PassContext) -> dict:
        # Value numbering: each register maps to a version; an
        # expression key is (op, imm, src versions).
        version: dict = {}
        next_version = [0]

        def reg_version(reg: int) -> int:
            if reg == 0:
                return -1          # the constant zero, version-stable
            if reg not in version:
                next_version[0] += 1
                version[reg] = next_version[0]
            return version[reg]

        available: dict = {}       # expression key -> producing register
        eliminated = 0
        for instr in segment.instrs:
            dest = instr.dest()
            key = None
            # Guarded (predicated) instructions write conditionally:
            # their result is not a reusable expression value, and
            # rewriting one into a move would make the copy
            # unconditional. Skip them entirely; the dest-version bump
            # below still conservatively kills prior availability.
            if (instr.op in _CSE_OPS and dest is not None
                    and not instr.move_flag and instr.scale is None
                    and instr.guard is None):
                sources = tuple(sorted(
                    (reg, reg_version(reg)) for reg in instr.sources())) \
                    if instr.op in (Op.ADD, Op.AND, Op.OR, Op.XOR,
                                    Op.MULT) \
                    else tuple((reg, reg_version(reg))
                               for reg in instr.sources())
                key = (instr.op, instr.imm, sources)
                prior = available.get(key)
                if prior is not None and prior != dest:
                    # Rewrite into the canonical move idiom; the move
                    # pass (run next) marks and bypasses it.
                    instr.op = Op.ADDI
                    instr.rs = prior
                    instr.rt = None
                    instr.imm = 0
                    instr.reassociated = False
                    eliminated += 1
                    key = None     # the move produces no new expression
            if dest is not None:
                # dest changes version; expressions producing into dest
                # or consuming the old dest version die naturally via
                # version comparison, but the availability table must
                # drop entries whose *result* lived in dest.
                for expr in [k for k, reg in available.items()
                             if reg == dest]:
                    del available[expr]
                next_version[0] += 1
                version[dest] = next_version[0]
                if key is not None:
                    available[key] = dest
        return {"cse_eliminated": eliminated}


__all__ = ["CommonSubexpressionPass"]
