"""Instruction placement (paper §4.5).

With a clustered backend, forwarding a result to another cluster costs
an extra cycle. Because trace segments carry their dependencies
explicitly, instruction order within the line no longer conveys
dataflow — so the fill unit is free to choose which *issue slot* (and
therefore which cluster) each instruction occupies.

The paper's heuristic, verbatim: "For each issue slot the fill unit
looks for an instruction that is dependent upon an instruction already
placed in that cluster. If no dependent instruction is found, the first
unplaced instruction is put in that issue slot."

We implement the steering-field variant (each instruction gains a 4-bit
issue-slot field; logical order is retained for the memory scheduler),
so the transformation never perturbs architectural order — only the
cluster each instruction executes in.
"""

from __future__ import annotations

from repro.fillunit.opts.base import OptimizationPass, PassContext
from repro.tracecache.segment import TraceSegment


class PlacementPass(OptimizationPass):
    """Assign issue slots to minimize cross-cluster operand bypass."""

    name = "placement"
    surface = frozenset({"slots"})

    def apply(self, segment: TraceSegment, ctx: PassContext) -> dict:
        deps = segment.deps
        if deps is None:  # defensive: the manager marks before placement
            from repro.fillunit.dependency import mark_dependencies
            segment.deps = deps = mark_dependencies(segment.instrs)
        count = len(segment.instrs)
        cluster_size = ctx.cluster_size
        num_clusters = ctx.num_clusters
        slots = [0] * count
        cluster_of: dict = {}      # logical index -> assigned cluster
        unplaced = list(range(count))
        moved = 0
        for slot in range(count):
            cluster = (slot // cluster_size) % num_clusters
            pick = None
            for candidate in unplaced:
                producers = deps.internal_producers(candidate)
                if any(cluster_of.get(p) == cluster for p in producers):
                    pick = candidate
                    break
            if pick is None:
                pick = unplaced[0]
            unplaced.remove(pick)
            slots[pick] = slot
            cluster_of[pick] = cluster
            if pick != slot:
                moved += 1
        segment.slots = slots
        return {"placed_instructions": count, "placement_moved": moved}


__all__ = ["PlacementPass"]
