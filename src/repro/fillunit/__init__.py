"""The fill unit: collects retired blocks into trace segments, marks
explicit dependency information, performs branch promotion, and runs
the paper's four dynamic trace optimizations off the critical path."""

from repro.fillunit.collector import FillCollector, PendingSegment
from repro.fillunit.dependency import DependencyInfo, mark_dependencies
from repro.fillunit.unit import FillUnit, FillUnitConfig

__all__ = [
    "FillCollector",
    "PendingSegment",
    "DependencyInfo",
    "mark_dependencies",
    "FillUnit",
    "FillUnitConfig",
]
