"""Program images: assembled code plus initialized data."""

from repro.program.image import Program
from repro.program.loader import load_program

__all__ = ["Program", "load_program"]
