"""Loading a :class:`Program` into machine memory."""

from __future__ import annotations

from repro.program.image import Program


#: Default stack top; the loader initializes ``$sp`` here.
STACK_TOP = 0x7FFFF0
#: Default global-pointer base, pointing at the data segment.


def load_program(program: Program, memory, state=None) -> None:
    """Copy *program*'s data segment into *memory* and, when *state* is
    given, initialize PC, ``$sp`` and ``$gp`` following the MIPS ABI
    conventions used by the workload generators."""
    if program.data:
        memory.write_bytes(program.data_base, bytes(program.data))
    if state is not None:
        state.pc = program.entry
        state.write_reg(29, STACK_TOP)          # $sp
        state.write_reg(28, program.data_base)  # $gp


__all__ = ["load_program", "STACK_TOP"]
