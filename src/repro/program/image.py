"""The :class:`Program` image produced by the assembler.

The simulator is Harvard-style at the modelling level: instruction
*objects* are fetched from the program image by PC (instruction-cache
behaviour is modelled by address), while data lives in the byte-level
:class:`repro.machine.memory.Memory`. The binary encoding round-trip is
still available (``encoded_text``) and property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ExecutionError
from repro.isa.instruction import Instruction


@dataclass
class Program:
    """An assembled, loadable program."""

    instructions: list
    text_base: int = 0x1000
    data: bytearray = field(default_factory=bytearray)
    data_base: int = 0x100000
    symbols: dict = field(default_factory=dict)
    entry: Optional[int] = None
    name: str = "a.out"

    def __post_init__(self) -> None:
        for idx, instr in enumerate(self.instructions):
            instr.pc = self.text_base + 4 * idx
        if self.entry is None:
            self.entry = self.symbols.get("main", self.text_base)

    @property
    def text_end(self) -> int:
        """One past the last instruction byte."""
        return self.text_base + 4 * len(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def instr_at(self, pc: int) -> Instruction:
        """Fetch the instruction at byte address *pc*.

        Raises:
            ExecutionError: if *pc* is outside the text segment or
                misaligned.
        """
        offset = pc - self.text_base
        if offset % 4 or not 0 <= offset < 4 * len(self.instructions):
            raise ExecutionError(f"instruction fetch outside text: {pc:#x}")
        return self.instructions[offset // 4]

    def contains_pc(self, pc: int) -> bool:
        return (self.text_base <= pc < self.text_end) and pc % 4 == 0

    def symbol(self, name: str) -> int:
        """Address of symbol *name*.

        Raises:
            KeyError: if undefined.
        """
        return self.symbols[name]

    def encoded_text(self) -> list:
        """The text segment as 32-bit words (annotations stripped)."""
        from repro.isa.encoding import encode
        return [encode(instr) for instr in self.instructions]

    def listing(self) -> str:
        """Human-readable disassembly listing of the text segment."""
        from repro.isa.disasm import dump_listing
        return dump_listing(self.instructions, self.text_base)


__all__ = ["Program"]
