"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the fifteen benchmarks with their paper fingerprints.
* ``run BENCH`` — simulate one benchmark under a chosen optimization
  set and print the result summary.
* ``profile BENCH`` — simulate with full telemetry: cycle attribution
  table plus the hierarchical counter snapshot (optionally archived as
  JSONL with ``--telemetry-out``).
* ``trace BENCH`` — simulate with span tracing and the host-time
  profiler; writes a Chrome trace-event file (``--out``, loadable at
  https://ui.perfetto.dev) and optionally an OpenMetrics snapshot
  (``--metrics-out``) and a host-time profile (``--hostprof-out``).
* ``compare BENCH`` — baseline vs each optimization vs combined.
* ``figures`` — regenerate the paper's figures 3-8 (ASCII).
* ``tables`` — regenerate tables 1-2.
* ``validate [BENCH ...]`` — score workload fingerprints against the
  paper's Table 2 targets.
* ``verify-traces [BENCH ...]`` — replay benchmarks with online
  segment verification (see ``docs/verification.md``); exits nonzero
  on any invariant or equivalence violation.
* ``analyze [BENCH ...]`` — static analysis (CFG, dataflow, fill-unit
  opportunity bounds, workload lint; see ``docs/static-analysis.md``);
  ``--baseline`` gates lint counts against a checked-in baseline and
  ``--cross-check`` validates the dynamic optimizers against the
  static opportunity oracle.
* ``asm FILE`` — assemble and run an assembly file (functionally, and
  optionally through the timing model).
"""

from __future__ import annotations

import argparse
import sys

from repro import workloads
from repro.core.config import SimConfig
from repro.core.simulator import Simulator
from repro.fillunit.opts.base import OptimizationConfig


def _opt_config(name: str) -> OptimizationConfig:
    if name == "none":
        return OptimizationConfig.none()
    if name == "all":
        return OptimizationConfig.all()
    if name == "extended":
        return OptimizationConfig.extended()
    return OptimizationConfig.only(name)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload length multiplier (default 0.5)")
    parser.add_argument(
        "--opts", default="all",
        choices=["none", "moves", "reassoc", "scaled_adds", "placement",
                 "cse", "dead_code", "all", "extended"],
        help="fill-unit optimization set (default all)")
    parser.add_argument("--fill-latency", type=int, default=5,
                        help="fill pipeline latency in cycles (default 5)")
    parser.add_argument(
        "--policy", default="lru",
        choices=["lru", "srrip", "trrip"],
        help="replacement policy for the trace cache and memory "
             "hierarchy (default lru; trrip adds loop-aware static "
             "temperature hints)")


def _apply_policy(config: SimConfig, args) -> SimConfig:
    """Apply the ``--policy`` knob to a built config (no-op for lru,
    the seed-identical default)."""
    policy = getattr(args, "policy", "lru")
    if policy == "lru":
        return config
    from dataclasses import replace
    return replace(
        config,
        trace_cache=replace(config.trace_cache, policy=policy),
        hierarchy=replace(config.hierarchy, policy=policy))


def _add_exec(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation grid "
                             "(default 1: in-process)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed result cache; warm "
                             "entries replay without simulating")


def _add_telemetry_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--telemetry-out", metavar="FILE.jsonl",
                        help="append structured telemetry events to "
                             "FILE.jsonl")


def _make_telemetry(args):
    """A Telemetry session per *args*, with an optional JSONL sink.

    Returns ``(telemetry, sink)``; *sink* is None without
    ``--telemetry-out``.
    """
    from repro.telemetry import Telemetry
    telemetry = Telemetry()
    sink = None
    if getattr(args, "telemetry_out", None):
        sink = telemetry.attach_jsonl(args.telemetry_out)
    return telemetry, sink


def _close_telemetry(telemetry, sink) -> None:
    if sink is not None:
        telemetry.close()
        print(f"wrote {sink.written} telemetry events to {sink.path}")


def cmd_list(args) -> int:
    print(f"{'benchmark':13s} {'suite':10s} "
          f"{'mv%':>5s} {'ra%':>5s} {'sc%':>5s} {'tot%':>5s}  kernel")
    for name in workloads.names():
        spec = workloads.spec(name)
        row = spec.paper_table2
        print(f"{name:13s} {spec.suite:10s} "
              f"{row.moves:5.1f} {row.reassoc:5.1f} {row.scaled:5.1f} "
              f"{row.total:5.1f}  {spec.description}")
    print("\n(percent columns: the paper's Table 2 fingerprints)")
    return 0


def cmd_run(args) -> int:
    program = workloads.build(args.benchmark, args.scale)
    config = _apply_policy(
        SimConfig.paper(_opt_config(args.opts), args.fill_latency), args)
    telemetry = sink = None
    if args.telemetry_out:
        telemetry, sink = _make_telemetry(args)
    result = Simulator(config, telemetry=telemetry).run(
        program, args.benchmark, args.opts)
    print(result.summary())
    cov = result.coverage.as_percentages(result.instructions)
    print(f"transformed: {cov['total']:.1f}% "
          f"(moves {cov['moves']:.1f}, reassoc {cov['reassoc']:.1f}, "
          f"scaled {cov['scaled']:.1f})")
    print(f"mispredict rate: {100 * result.mispredict_rate:.2f}%   "
          f"segments built: {result.segments_built}")
    _close_telemetry(telemetry, sink)
    return 0


def cmd_profile(args) -> int:
    from repro.telemetry.attribution import render_attribution
    program = workloads.build(args.benchmark, args.scale)
    config = _apply_policy(
        SimConfig.paper(_opt_config(args.opts), args.fill_latency), args)
    telemetry, sink = _make_telemetry(args)
    result = Simulator(config, telemetry=telemetry).run(
        program, args.benchmark, args.opts)
    print(result.summary())
    print()
    print(render_attribution(result.attribution, result.cycles))
    print()
    print("telemetry counters")
    for scope, value in result.telemetry.items():
        if isinstance(value, dict):     # histogram snapshot
            value = (f"count={value['count']} mean={value['mean']:.1f} "
                     f"min={value['min']} max={value['max']}")
        print(f"  {scope:42s} {value}")
    stream = telemetry.events
    print(f"\nevents: {stream.emitted} emitted, "
          f"{len(stream)} retained, {stream.dropped} aged out of the "
          f"ring buffer")
    _close_telemetry(telemetry, sink)
    return 0


def cmd_trace(args) -> int:
    """Simulate one benchmark with span tracing + the host-time
    profiler; export the timeline (and optionally metrics/profile)."""
    from repro.core.engine import Engine
    from repro.telemetry import Telemetry
    from repro.telemetry.exporters import write_chrome_trace
    from repro.telemetry.hostprof import HostProfiler

    program = workloads.build(args.benchmark, args.scale)
    config = _apply_policy(
        SimConfig.paper(_opt_config(args.opts), args.fill_latency), args)
    if args.verify:
        from dataclasses import replace
        config = replace(config, verify_fill=True)

    telemetry = Telemetry(spans=True)
    archive = telemetry.attach_memory()
    engine = Engine(config, telemetry=telemetry)
    profiler = HostProfiler()
    profiler.attach(engine)
    trace = Simulator(config).trace_program(program)
    result = engine.run(trace, benchmark=args.benchmark,
                        label=args.opts)

    print(result.summary())
    count = write_chrome_trace(
        args.out, telemetry.spans, events=archive.events,
        metadata={"benchmark": args.benchmark, "opts": args.opts,
                  "scale": args.scale, "cycles": result.cycles})
    recorder = telemetry.spans
    print(f"wrote {count} trace events ({len(recorder)} spans on "
          f"tracks: {', '.join(recorder.tracks())}) to {args.out}")
    print("  open in https://ui.perfetto.dev (pid 1 = simulated "
          "cycles, pid 2 = host time)")
    if args.metrics_out:
        from repro.telemetry.exporters import render_openmetrics
        with open(args.metrics_out, "w") as handle:
            handle.write(render_openmetrics(telemetry.registry))
        print(f"wrote OpenMetrics exposition to {args.metrics_out}")
    if args.hostprof_out:
        import json
        with open(args.hostprof_out, "w") as handle:
            json.dump(profiler.to_dict(), handle, indent=1,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote host-time profile to {args.hostprof_out}")
    print()
    print(profiler.render(f"host-time profile ({args.benchmark})"))
    return 0


def cmd_compare(args) -> int:
    program = workloads.build(args.benchmark, args.scale)

    handle = None
    written = 0
    if args.telemetry_out:
        handle = open(args.telemetry_out, "w")

    def leg_telemetry():
        """A fresh session per leg; all legs share one JSONL file, so
        each leg's counters and attribution stay independent while the
        archive holds the whole comparison."""
        nonlocal written
        if handle is None:
            return None
        from repro.telemetry import Telemetry
        from repro.telemetry.events import JsonlSink
        telemetry = Telemetry()
        telemetry.attach(JsonlSink(handle))
        return telemetry

    simulator = Simulator(
        _apply_policy(SimConfig.paper(fill_latency=args.fill_latency),
                      args),
        telemetry=leg_telemetry())
    trace = simulator.trace_program(program)
    baseline = simulator.run(trace, args.benchmark, "baseline")
    print(baseline.summary())
    sets = ["moves", "reassoc", "scaled_adds", "placement", "all"]
    if args.extended:
        sets += ["cse", "dead_code", "extended"]
    for name in sets:
        config = _apply_policy(
            SimConfig.paper(_opt_config(name), args.fill_latency), args)
        result = Simulator(config, telemetry=leg_telemetry()).run(
            trace, args.benchmark, name)
        print(f"  {name:12s} IPC {result.ipc:5.2f}  "
              f"({result.improvement_over(baseline):+5.1f}%)")
    if handle is not None:
        handle.close()
        print(f"wrote telemetry for all legs to {args.telemetry_out}")
    return 0


def _grid_runner(args):
    """An ExperimentRunner on the execution service, with the paper
    grid prefetched (through the pool with ``--jobs N``, replayed from
    ``--cache-dir`` when warm)."""
    from repro.exec.grid import paper_grid
    from repro.harness import ExperimentRunner
    runner = ExperimentRunner(scale=args.scale, jobs=args.jobs,
                              cache_dir=args.cache_dir)
    if args.jobs > 1 or args.cache_dir:
        runner.prefetch(paper_grid(runner.benchmarks))
    return runner


def cmd_figures(args) -> int:
    from repro.harness import figures
    runner = _grid_runner(args)
    if args.svg:
        from repro.harness.svgchart import write_all_figures
        for path in write_all_figures(runner, args.svg):
            print(f"wrote {path}")
        return 0
    wanted = args.only or ["3", "4", "5", "6", "7", "8"]
    generators = {"3": figures.figure3, "4": figures.figure4,
                  "5": figures.figure5, "6": figures.figure6,
                  "7": figures.figure7, "8": figures.figure8}
    for key in wanted:
        print(generators[key](runner).render())
        print()
    return 0


def cmd_tables(args) -> int:
    from repro.harness import tables
    runner = _grid_runner(args)
    print(tables.table1(runner).render())
    print()
    print(tables.table2(runner).render())
    return 0


def cmd_validate(args) -> int:
    from repro.workloads.validate import validate_benchmark
    names = args.benchmarks or workloads.names()
    unknown = [n for n in names if n not in workloads.names()]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}")
        return 2
    off_target = 0
    for name in names:
        report = validate_benchmark(name, scale=args.scale)
        print(report.render())
        if not report.within():
            off_target += 1
            print("  ^ outside the 3x band")
    print(f"\n{len(names) - off_target}/{len(names)} within the 3x band")
    return 0


def cmd_verify_traces(args) -> int:
    """Replay one or more benchmarks with online segment verification
    and report per-pass/per-rule violation counts; exit nonzero when
    any error-severity violation was found."""
    from dataclasses import replace

    from repro.telemetry import Telemetry
    from repro.telemetry.events import VERIFY_VIOLATION

    names = args.benchmarks or ["compress", "li"]
    unknown = [n for n in names if n not in workloads.names()]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}")
        return 2
    total_errors = 0
    for name in names:
        program = workloads.build(name, args.scale)
        config = replace(
            SimConfig.paper(_opt_config(args.opts), args.fill_latency),
            verify_fill=True,
            verify_each_pass=not args.whole_pipeline)
        telemetry = Telemetry(attribution=False)
        sink = telemetry.attach_memory(kinds=(VERIFY_VIOLATION,))
        result = Simulator(config, telemetry=telemetry).run(
            program, name, args.opts)
        checked = result.telemetry.get(
            "fillunit.verify.segments_checked", 0)
        clean = result.telemetry.get(
            "fillunit.verify.segments_clean", 0)
        counts: dict = {}
        errors = 0
        for event in sink.events:
            key = (event.data["opt"], event.data["rule"],
                   event.data["severity"])
            counts[key] = counts.get(key, 0) + 1
            if event.data["severity"] == "error":
                errors += 1
        status = "CLEAN" if errors == 0 else f"{errors} violations"
        print(f"{name}: {checked} segments verified, {clean} clean "
              f"({args.opts}, "
              f"{'whole-pipeline' if args.whole_pipeline else 'per-pass'}"
              f") -> {status}")
        if counts:
            print(f"  {'pass':12s} {'rule':20s} {'severity':8s} "
                  f"{'count':>6s}")
            for (opt, rule_id, severity), n in sorted(counts.items()):
                print(f"  {opt:12s} {rule_id:20s} {severity:8s} {n:6d}")
            samples = 0
            for event in sink.events:
                if event.data["severity"] != "error":
                    continue
                print(f"    e.g. pc={event.data['start_pc']:#x} "
                      f"[{event.data['opt']}] {event.data['rule']}: "
                      f"{event.data['message']}")
                samples += 1
                if samples >= args.show:
                    break
        total_errors += errors
    return 1 if total_errors else 0


def cmd_analyze(args) -> int:
    """Statically analyze workloads: CFG/loop shape, fill-unit
    opportunity bounds, and lint findings. Optionally compare lint
    counts against a checked-in baseline and cross-check the dynamic
    optimizers against the static opportunity oracle; exits nonzero
    on lint errors, baseline regressions or oracle violations.

    With ``--self`` the target flips from the workloads to the
    simulator's own source: delegates to :func:`cmd_audit`."""
    import json

    if getattr(args, "self_audit", False):
        return cmd_audit(args)

    from repro.analysis.static import analyze_program
    from repro.core.export import ANALYSIS_SCHEMA_VERSION, analysis_to_dict

    names = args.benchmarks or workloads.names()
    unknown = [n for n in names if n not in workloads.names()]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}")
        return 2

    reports = {}
    failures = []
    for name in names:
        program = workloads.build(name, args.scale)
        report = analyze_program(program, name,
                                 max_shift=args.max_shift,
                                 interprocedural=args.interprocedural)
        reports[name] = report
        print(report.summary())
        for finding in report.lint[:args.show]:
            print(f"    {finding.render()}")
        errors = report.lint_errors()
        if errors:
            failures.append(f"{name}: {len(errors)} lint errors")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump({name: analysis_to_dict(r)
                       for name, r in reports.items()}, handle, indent=1)
        print(f"wrote {len(reports)} analysis reports to {args.json}")

    def _bench_payload(report):
        payload = {
            "lint": {"errors": report.lint_rule_counts("error"),
                     "warnings": report.lint_rule_counts("warning")},
            "sites": report.static_bounds(),
        }
        if report.interproc is not None:
            payload["interprocedural"] = {
                "sites": report.interproc.static_bounds(),
                "ineffectuality": report.interproc.ineff_counts(),
            }
        return payload

    baseline_payload = {
        "schema": ANALYSIS_SCHEMA_VERSION,
        "scale": args.scale,
        "benchmarks": {name: _bench_payload(report)
                       for name, report in reports.items()},
    }
    if args.write_baseline:
        with open(args.write_baseline, "w") as handle:
            json.dump(baseline_payload, handle, indent=1,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline for {len(reports)} benchmarks to "
              f"{args.write_baseline}")
    elif args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        if baseline.get("scale") != args.scale:
            print(f"baseline was recorded at scale "
                  f"{baseline.get('scale')} but this run used "
                  f"{args.scale}; re-run with the matching --scale")
            return 2
        for name, report in reports.items():
            recorded = baseline.get("benchmarks", {}).get(name)
            if recorded is None:
                print(f"  {name}: not in baseline (new benchmark?)")
                continue
            old_lint = recorded.get("lint", {})
            if "errors" in old_lint or "warnings" in old_lint:
                severities = (("errors", "error"),
                              ("warnings", "warning"))
            else:
                # legacy flat baseline: one undifferentiated count map
                severities = (("", None),)
            for key, severity in severities:
                old_counts = old_lint.get(key, {}) if key else old_lint
                new_counts = report.lint_rule_counts(severity)
                label = f"{severity} " if severity else ""
                for rule in sorted(set(new_counts) | set(old_counts)):
                    new_n = new_counts.get(rule, 0)
                    old_n = old_counts.get(rule, 0)
                    if new_n > old_n:
                        failures.append(
                            f"{name}: lint {label}rule '{rule}' "
                            f"regressed {old_n} -> {new_n}")
            old_sites = recorded.get("sites", {})
            new_sites = report.static_bounds()
            drift = {k: (old_sites.get(k), v)
                     for k, v in new_sites.items()
                     if old_sites.get(k) != v}
            if drift:
                print(f"  {name}: site counts drifted vs baseline: "
                      f"{drift} (informational)")
            old_ip = recorded.get("interprocedural")
            if old_ip is not None and report.interproc is not None:
                for section, new_counts in (
                        ("sites", report.interproc.static_bounds()),
                        ("ineffectuality",
                         report.interproc.ineff_counts())):
                    old_counts = old_ip.get(section, {})
                    for key in sorted(set(new_counts) | set(old_counts)):
                        new_n = new_counts.get(key, 0)
                        old_n = old_counts.get(key, 0)
                        if new_n > old_n:
                            failures.append(
                                f"{name}: interprocedural {section} "
                                f"'{key}' grew {old_n} -> {new_n} "
                                f"(bound loosened)")
                        elif new_n < old_n:
                            print(f"  {name}: interprocedural "
                                  f"{section} '{key}' tightened "
                                  f"{old_n} -> {new_n} "
                                  f"(informational)")

    if args.cross_check:
        from repro.errors import ConfigError
        from repro.harness.crosscheck import (
            cross_check,
            ineffectuality_cross_check,
        )
        config = SimConfig.paper(_opt_config(args.opts),
                                 args.fill_latency)
        print()
        for name in names:
            program = workloads.build(name, args.scale)
            trace = Simulator(config).trace_program(program)
            try:
                check = cross_check(reports[name], trace, config,
                                    name, args.opts)
            except ConfigError as exc:
                print(f"cross-check: {exc}")
                return 2
            print(check.render())
            if not check.ok:
                failures.append(
                    f"{name}: {len(check.violations)} oracle "
                    f"violations")
            interproc = reports[name].interproc
            if interproc is None:
                continue
            from repro.analysis.static.ineffectuality import (
                IneffectualitySites,
            )
            static_ineff = IneffectualitySites(
                dead_writes=frozenset(interproc.dead_write_sites),
                silent_stores=frozenset(interproc.silent_store_sites),
                predictable=frozenset(interproc.predictable_sites),
                constants=frozenset(interproc.constant_sites))
            ineff_check = ineffectuality_cross_check(
                static_ineff, trace, config, program, name, args.opts)
            print(ineff_check.render())
            if not ineff_check.ok:
                failures.append(
                    f"{name}: {len(ineff_check.violations)} "
                    f"ineffectuality oracle violations")
            intra = reports[name].static_bounds()
            tight = interproc.static_bounds()
            loose = {k: (tight[k], intra[k]) for k in tight
                     if tight[k] > intra[k]}
            if loose:
                failures.append(
                    f"{name}: interprocedural bounds looser than "
                    f"intraprocedural: {loose}")

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    return 0


def cmd_audit(args) -> int:
    """Run the replay-soundness self-audit: static state-model
    extraction over the simulator's own source, digest-coverage and
    determinism lints, seeded hole mutants, and (unless ``--no-fuzz``)
    the live mutation-fuzz oracle. Exits nonzero on any new error
    finding vs the baseline, any blind field, any uncaught seeded
    hole, or loosened digest coverage."""
    import json

    from repro.analysis.selfcheck import run_self_audit
    from repro.core.export import selfaudit_to_dict

    with_fuzz = not getattr(args, "no_fuzz", False)
    report = run_self_audit(with_fuzz=with_fuzz)
    print(report.summary())

    show = getattr(args, "show", 10)
    for finding in report.findings[:show]:
        print(finding.render())
    if len(report.findings) > show:
        print(f"  ... {len(report.findings) - show} more finding(s)")

    json_path = getattr(args, "json", None)
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(selfaudit_to_dict(report), handle, indent=1)
        print(f"wrote self-audit report to {json_path}")

    write_baseline = getattr(args, "write_baseline", None)
    baseline_path = getattr(args, "baseline", None)
    baseline = None
    if write_baseline:
        with open(write_baseline, "w") as handle:
            json.dump(report.baseline_payload(), handle, indent=1,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote self-audit baseline to {write_baseline}")
    elif baseline_path:
        with open(baseline_path) as handle:
            baseline = json.load(handle)

    failures = report.failures(baseline)
    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("self-audit passed")
    return 0


def cmd_asm(args) -> int:
    from repro.asm import assemble
    from repro.machine.executor import Executor
    with open(args.file) as handle:
        source = handle.read()
    program = assemble(source, name=args.file)
    trace = Executor(program).run(max_instructions=args.max_instructions)
    print(f"{args.file}: {len(trace)} committed instructions, "
          f"output {trace.output}")
    if args.simulate:
        config = SimConfig.paper(_opt_config(args.opts),
                                 args.fill_latency)
        result = Simulator(config).run(trace, args.file, args.opts)
        print(result.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trace-cache fill-unit optimization reproduction "
                    "(Friendly/Patel/Patt, MICRO 1998)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks").set_defaults(
        func=cmd_list)

    p_run = sub.add_parser("run", help="simulate one benchmark")
    p_run.add_argument("benchmark", choices=workloads.names())
    _add_common(p_run)
    _add_telemetry_out(p_run)
    p_run.set_defaults(func=cmd_run)

    p_prof = sub.add_parser(
        "profile", help="simulate with cycle attribution and counters")
    p_prof.add_argument("benchmark", choices=workloads.names())
    _add_common(p_prof)
    _add_telemetry_out(p_prof)
    p_prof.set_defaults(func=cmd_profile)

    p_trace = sub.add_parser(
        "trace",
        help="simulate with span tracing; export a Perfetto timeline")
    p_trace.add_argument("benchmark", choices=workloads.names())
    _add_common(p_trace)
    p_trace.add_argument("--out", metavar="FILE.json",
                         default="trace.json",
                         help="Chrome trace-event output file "
                              "(default trace.json)")
    p_trace.add_argument("--metrics-out", metavar="FILE.prom",
                         help="also write the metric registry in "
                              "OpenMetrics text exposition format")
    p_trace.add_argument("--hostprof-out", metavar="FILE.json",
                         help="also write the host-time profile as JSON "
                              "(render with tools/hostprof_report.py)")
    p_trace.add_argument("--verify", default=True,
                         action=argparse.BooleanOptionalAction,
                         help="run online segment verification so "
                              "verify spans appear (default on)")
    p_trace.set_defaults(func=cmd_trace)

    p_cmp = sub.add_parser("compare",
                           help="baseline vs each optimization")
    p_cmp.add_argument("benchmark", choices=workloads.names())
    p_cmp.add_argument("--scale", type=float, default=0.5)
    p_cmp.add_argument("--fill-latency", type=int, default=5)
    p_cmp.add_argument("--extended", action="store_true",
                       help="also run the future-work passes")
    p_cmp.add_argument("--policy", default="lru",
                       choices=["lru", "srrip", "trrip"],
                       help="replacement policy for every leg "
                            "(default lru)")
    _add_telemetry_out(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_fig = sub.add_parser("figures", help="regenerate figures 3-8")
    p_fig.add_argument("--scale", type=float, default=0.5)
    p_fig.add_argument("--only", nargs="*",
                       choices=["3", "4", "5", "6", "7", "8"])
    p_fig.add_argument("--svg", metavar="DIR",
                       help="write figures as SVG files into DIR")
    _add_exec(p_fig)
    p_fig.set_defaults(func=cmd_figures)

    p_tab = sub.add_parser("tables", help="regenerate tables 1-2")
    p_tab.add_argument("--scale", type=float, default=0.5)
    _add_exec(p_tab)
    p_tab.set_defaults(func=cmd_tables)

    p_val = sub.add_parser("validate",
                           help="score workload fingerprints vs Table 2")
    p_val.add_argument("benchmarks", nargs="*", metavar="BENCH")
    p_val.add_argument("--scale", type=float, default=0.3)
    p_val.set_defaults(func=cmd_validate)

    p_ver = sub.add_parser(
        "verify-traces",
        help="replay benchmarks with online segment verification")
    p_ver.add_argument("benchmarks", nargs="*", metavar="BENCH",
                       help="benchmarks to verify (default: compress li)")
    _add_common(p_ver)
    p_ver.add_argument("--whole-pipeline", action="store_true",
                       help="verify the composed pipeline instead of "
                            "each pass in isolation")
    p_ver.add_argument("--show", type=int, default=5,
                       help="sample violation messages to print "
                            "(default 5)")
    p_ver.set_defaults(func=cmd_verify_traces)

    p_ana = sub.add_parser(
        "analyze",
        help="static CFG/dataflow analysis, opportunity bounds, lint")
    p_ana.add_argument("benchmarks", nargs="*", metavar="BENCH",
                       help="benchmarks to analyze (default: all)")
    _add_common(p_ana)
    p_ana.add_argument("--max-shift", type=int, default=3,
                       help="largest SLL amount counted as a scaled-add "
                            "opportunity (default 3)")
    p_ana.add_argument("--json", metavar="FILE",
                       help="write full analysis reports to FILE")
    p_ana.add_argument("--baseline", metavar="FILE",
                       help="fail if lint counts regress vs this "
                            "baseline JSON")
    p_ana.add_argument("--write-baseline", metavar="FILE",
                       help="record the current lint/site counts as "
                            "the new baseline")
    p_ana.add_argument("--interprocedural", action="store_true",
                       help="run the interprocedural value-flow layer: "
                            "call graph, tightened opportunity bounds "
                            "and the ineffectuality oracle")
    p_ana.add_argument("--cross-check", action="store_true",
                       help="simulate each benchmark and check dynamic "
                            "transformed PCs against the static bounds "
                            "(with --interprocedural, also check "
                            "observed ineffectual PCs)")
    p_ana.add_argument("--show", type=int, default=10,
                       help="lint findings to print per benchmark "
                            "(default 10)")
    p_ana.add_argument("--self", dest="self_audit",
                       action="store_true",
                       help="audit the simulator's own source instead "
                            "of the workloads (alias of the audit "
                            "verb; honors --json/--baseline/"
                            "--write-baseline/--show)")
    p_ana.set_defaults(func=cmd_analyze)

    p_audit = sub.add_parser(
        "audit",
        help="replay-soundness self-audit: state-model extraction, "
             "digest-coverage + determinism lints, mutation-fuzz "
             "oracle with seeded holes")
    p_audit.add_argument("--json", metavar="FILE",
                         help="write the schema-versioned self-audit "
                              "report to FILE")
    p_audit.add_argument("--baseline", metavar="FILE",
                         help="fail on new findings or loosened "
                              "digest coverage vs this baseline JSON")
    p_audit.add_argument("--write-baseline", metavar="FILE",
                         help="record current finding counts and "
                              "digest coverage as the new baseline")
    p_audit.add_argument("--no-fuzz", action="store_true",
                         help="skip the live mutation-fuzz oracle "
                              "(static extraction and lints only)")
    p_audit.add_argument("--show", type=int, default=10,
                         help="findings to print (default 10)")
    p_audit.set_defaults(func=cmd_audit)

    p_asm = sub.add_parser("asm", help="assemble and run a .s file")
    p_asm.add_argument("file")
    p_asm.add_argument("--simulate", action="store_true",
                       help="also run the timing model")
    p_asm.add_argument("--max-instructions", type=int, default=5_000_000)
    _add_common(p_asm)
    p_asm.set_defaults(func=cmd_asm)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
