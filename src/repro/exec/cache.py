"""Content-addressed on-disk result cache.

Layout: ``<root>/<fp[:2]>/<fp>.json`` — one JSON document per job
fingerprint, holding the serialized :class:`~repro.core.results.
SimResult` (the :mod:`repro.core.export` schema, telemetry snapshot
included) plus a small provenance header. Writes are atomic
(tmp-file + ``os.replace``) so concurrent worker processes racing on
the same fingerprint can only ever leave a complete entry; corrupt or
schema-incompatible entries read as misses and are quietly discarded.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
import tempfile
from typing import Dict, Optional, Union

from repro.core.export import result_from_dict, result_to_dict
from repro.core.results import SimResult

#: bump when the on-disk envelope changes shape.
ENVELOPE_VERSION = 1


class ResultCache:
    """Fingerprint-addressed store of finished simulation results."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def _path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def __contains__(self, fingerprint: str) -> bool:
        return self._path(fingerprint).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    # ------------------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[SimResult]:
        """The cached result, or ``None`` on a miss (including corrupt
        or schema-incompatible entries, which are removed)."""
        path = self._path(fingerprint)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
            if envelope.get("envelope") != ENVELOPE_VERSION:
                raise ValueError("envelope version mismatch")
            result = result_from_dict(envelope["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            # A torn or outdated entry: treat as a miss and clear it so
            # the slot can be refilled cleanly.
            path.unlink(missing_ok=True)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, fingerprint: str, result: SimResult,
            provenance: Optional[Dict[str, object]] = None) -> Path:
        """Store *result* under *fingerprint* (atomic; last writer
        wins, and every writer writes identical bytes by construction
        of the fingerprint)."""
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "envelope": ENVELOPE_VERSION,
            "fingerprint": fingerprint,
            "provenance": dict(provenance or {}),
            "result": result_to_dict(result),
        }
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(envelope, handle, indent=1)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise
        return path


__all__ = ["ResultCache", "ENVELOPE_VERSION"]
