"""The execution service: content-addressed, parallel simulation.

The paper's evaluation is an embarrassingly parallel grid — the
optimization sets crossed with fill latencies crossed with the fifteen
workloads — and every figure/table regeneration used to re-simulate
identical configurations from scratch. This package turns one
simulation into an addressable *job*:

* :mod:`repro.exec.fingerprint` — a canonical, stable hash of the
  full :class:`~repro.core.config.SimConfig`, the workload identity
  (benchmark name + scale) and the code version;
* :mod:`repro.exec.cache` — a content-addressed on-disk result store:
  a hit replays the archived :class:`~repro.core.results.SimResult`
  (telemetry snapshot included) without simulating;
* :mod:`repro.exec.pool` — a multiprocess worker pool with
  deterministic per-job seeding and retry-on-worker-crash;
* :mod:`repro.exec.grid` — the one grid-expansion helper behind the
  harness's figures, tables and sweeps;
* :mod:`repro.exec.service` — the facade tying fingerprint -> cache
  -> pool together, with progress events on the telemetry stream.
"""

from repro.exec.cache import ResultCache
from repro.exec.fingerprint import code_version, job_fingerprint
from repro.exec.grid import (
    JobSpec,
    expand,
    opt_variant,
    paper_grid,
    sweep_grid,
    variant_label,
)
from repro.exec.service import ExecutionService

__all__ = [
    "ExecutionService",
    "ResultCache",
    "JobSpec",
    "code_version",
    "job_fingerprint",
    "expand",
    "opt_variant",
    "paper_grid",
    "sweep_grid",
    "variant_label",
]
