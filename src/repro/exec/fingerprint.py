"""Canonical job fingerprinting.

A job is addressed by the SHA-256 of its canonical JSON description:
the full :class:`~repro.core.config.SimConfig` (via ``to_dict``), the
workload identity (benchmark name, scale, instruction budget), and the
code version. Two processes — today or next week — that would simulate
the same machine on the same workload under the same code produce the
same fingerprint, which is what makes the on-disk result cache safe to
share between runs, branches and worker processes.

Cache invalidation (see ``docs/architecture.md``): the code version is
a content hash over every ``repro`` source file, so *any* source
change — timing model, workload builder, optimization pass — retires
every previously cached result. That is deliberately conservative:
stale timing data silently feeding a figure is far worse than a cold
cache.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

from repro.core.config import SimConfig

#: bump manually on semantic changes that source hashing cannot see
#: (e.g. a result-schema change in an external dependency).
SCHEMA_VERSION = 1

_code_version: Optional[str] = None


def code_version() -> str:
    """Content hash of the ``repro`` package sources (cached).

    Hashes file-relative paths and contents, in sorted order, so the
    value is independent of checkout location and filesystem mtimes.
    """
    global _code_version
    if _code_version is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _code_version = digest.hexdigest()[:16]
    return _code_version


def canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def job_fingerprint(config: SimConfig, benchmark: str, scale: float,
                    max_instructions: Optional[int] = None,
                    version: Optional[str] = None) -> str:
    """The content address of one simulation job.

    *version* defaults to :func:`code_version`; tests pass an explicit
    value to exercise invalidation without rewriting source files.
    """
    description = {
        "schema": SCHEMA_VERSION,
        "code": version if version is not None else code_version(),
        "benchmark": benchmark,
        "scale": scale,
        "max_instructions": max_instructions,
        "config": config.to_dict(),
    }
    raw = canonical_json(description).encode()
    return hashlib.sha256(raw).hexdigest()


__all__ = ["SCHEMA_VERSION", "code_version", "canonical_json",
           "job_fingerprint"]
