"""The execution service: fingerprint -> memo -> cache -> run.

:class:`ExecutionService` is the single entry point the harness,
tools and benchmarks use to obtain simulation results. Each
:class:`~repro.exec.grid.JobSpec` resolves through four tiers:

1. the in-process memo (results this service already produced);
2. the on-disk content-addressed cache (when ``cache_dir`` is set) —
   a hit replays the archived result, telemetry snapshot included,
   without simulating;
3. the multiprocess worker pool (``jobs > 1``), which simulates all
   outstanding misses concurrently;
4. inline simulation in this process (``jobs == 1``), reusing one
   committed trace per benchmark.

Every resolution emits a progress event (``exec.job.cached`` /
``exec.job.started`` / ``exec.job.finished``) on the attached
telemetry session's event stream, so long grid runs are observable
with the same machinery as the simulated machine itself.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional

from repro.core.export import result_from_dict
from repro.core.results import SimResult
from repro.exec.cache import ResultCache
from repro.exec.fingerprint import code_version, job_fingerprint
from repro.exec.grid import JobSpec
from repro.exec.pool import WorkerPool, run_job_payload
from repro.telemetry.events import (
    EXEC_JOB_CACHED,
    EXEC_JOB_FINISHED,
    EXEC_JOB_STARTED,
    NULL_EVENT_STREAM,
)
from repro.telemetry.spans import NULL_SPANS, WALL


class ExecutionService:
    """Content-addressed, optionally parallel simulation runs."""

    def __init__(self, scale: float = 1.0, jobs: int = 1,
                 cache_dir: Optional[str] = None,
                 telemetry: Optional[Any] = None,
                 retries: int = 2) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.scale = scale
        self.jobs = jobs
        self.cache = (ResultCache(cache_dir)
                      if cache_dir is not None else None)
        self.telemetry = telemetry
        self.events = (telemetry.events if telemetry is not None
                       else NULL_EVENT_STREAM)
        #: wall-clock job spans on the "exec" track; NULL_SPANS when
        #: the session does not trace (the exec layer is not on the
        #: simulated hot path, so the null-object calls are fine here).
        self.spans = (getattr(telemetry, "spans", NULL_SPANS)
                      if telemetry is not None else NULL_SPANS)
        self.retries = retries
        self._memo: Dict[str, SimResult] = {}
        self._traces: Dict[str, Any] = {}
        #: resolution tally: memo / disk / simulated job counts.
        self.stats: Dict[str, int] = {
            "memo": 0, "disk": 0, "simulated": 0}

    # -- identity ------------------------------------------------------

    def fingerprint(self, job: JobSpec) -> str:
        """The content address of *job* at this service's scale."""
        return job_fingerprint(job.config, job.benchmark, self.scale)

    # -- traces (inline execution path) --------------------------------

    def trace(self, benchmark: str) -> Any:
        """The committed trace for *benchmark* (memoized)."""
        if benchmark not in self._traces:
            from repro import workloads
            from repro.machine.executor import Executor
            program = workloads.build(benchmark, self.scale)
            self._traces[benchmark] = Executor(program).run()
        return self._traces[benchmark]

    # -- resolution tiers ----------------------------------------------

    def _lookup(self, job: JobSpec, fp: str) -> Optional[SimResult]:
        """Memo and disk tiers; relabels replayed results to the
        job's label (labels are presentation, not identity)."""
        spans = self.spans
        probe = spans.begin("exec", "exec.cache_probe",
                            spans.now_wall(), timebase=WALL,
                            benchmark=job.benchmark, label=job.label)
        source = None
        result = self._memo.get(fp)
        if result is not None:
            source = "memo"
        elif self.cache is not None:
            result = self.cache.get(fp)
            if result is not None:
                source = "disk"
        probe.end(spans.now_wall(), source=source or "miss")
        if result is None:
            return None
        self.stats[source] += 1
        if result.config_label != job.label:
            result = replace(result, config_label=job.label)
        self._memo[fp] = result
        self.events.emit(EXEC_JOB_CACHED, 0, benchmark=job.benchmark,
                         label=job.label, fingerprint=fp[:12],
                         source=source)
        return result

    def _store(self, job: JobSpec, fp: str, result: SimResult) -> None:
        self._memo[fp] = result
        self.stats["simulated"] += 1
        if self.cache is not None:
            self.cache.put(fp, result, provenance={
                "benchmark": job.benchmark, "label": job.label,
                "scale": self.scale, "code": code_version()})

    def _payload(self, job: JobSpec, fp: str) -> Dict[str, Any]:
        return {"benchmark": job.benchmark, "scale": self.scale,
                "config": job.config.to_dict(), "label": job.label,
                "fingerprint": fp}

    def _simulate_inline(self, job: JobSpec, fp: str) -> SimResult:
        from repro.core.engine import Engine
        spans = self.spans
        self.events.emit(EXEC_JOB_STARTED, 0, benchmark=job.benchmark,
                         label=job.label, fingerprint=fp[:12])
        handle = spans.begin("exec", "exec.simulate", spans.now_wall(),
                             timebase=WALL, benchmark=job.benchmark,
                             label=job.label, source="inline")
        result = Engine(job.config).run(
            self.trace(job.benchmark), benchmark=job.benchmark,
            label=job.label)
        handle.end(spans.now_wall(), cycles=result.cycles)
        self._store(job, fp, result)
        self.events.emit(EXEC_JOB_FINISHED, 0, benchmark=job.benchmark,
                         label=job.label, fingerprint=fp[:12],
                         cycles=result.cycles)
        return result

    # -- public API ----------------------------------------------------

    def run(self, job: JobSpec) -> SimResult:
        """One job, through every tier."""
        spans = self.spans
        handle = spans.begin("exec", "exec.job", spans.now_wall(),
                             timebase=WALL, benchmark=job.benchmark,
                             label=job.label)
        fp = self.fingerprint(job)
        hit = self._lookup(job, fp)
        if hit is not None:
            handle.end(spans.now_wall(), source="cache",
                       cycles=hit.cycles)
            return hit
        result = self._simulate_inline(job, fp)
        handle.end(spans.now_wall(), source="simulated",
                   cycles=result.cycles)
        return result

    def run_many(self, jobs: List[JobSpec]) -> List[SimResult]:
        """All *jobs*, results in submission order. Misses run through
        the worker pool when ``jobs > 1``, inline otherwise; duplicate
        specs within the batch simulate once."""
        spans = self.spans
        fps = [self.fingerprint(job) for job in jobs]
        results: Dict[int, SimResult] = {}
        misses: List[int] = []
        dispatched: Dict[str, int] = {}
        # One exec.job span per submission. For batched misses the end
        # timestamp is when the batch's results are folded back in —
        # an approximation (pool jobs overlap), documented in
        # docs/observability.md.
        handles = [spans.begin("exec", "exec.job", spans.now_wall(),
                               timebase=WALL, benchmark=job.benchmark,
                               label=job.label)
                   for job in jobs]
        for idx, (job, fp) in enumerate(zip(jobs, fps)):
            hit = self._lookup(job, fp)
            if hit is not None:
                results[idx] = hit
                handles[idx].end(spans.now_wall(), source="cache",
                                 cycles=hit.cycles)
            elif fp in dispatched:
                continue                      # duplicate; fill in later
            else:
                dispatched[fp] = idx
                misses.append(idx)
        if misses and self.jobs > 1:
            self._run_pool([jobs[i] for i in misses],
                           [fps[i] for i in misses])
        elif misses:
            for idx in misses:
                self._simulate_inline(jobs[idx], fps[idx])
        out: List[SimResult] = []
        for idx, (job, fp) in enumerate(zip(jobs, fps)):
            result = results.get(idx)
            if result is None:
                memo = self._memo[fp]
                result = (memo if memo.config_label == job.label
                          else replace(memo, config_label=job.label))
                source = ("simulated" if dispatched.get(fp) == idx
                          else "duplicate")
                handles[idx].end(spans.now_wall(), source=source,
                                 cycles=result.cycles)
            out.append(result)
        return out

    def _run_pool(self, jobs: List[JobSpec], fps: List[str]) -> None:
        pool = WorkerPool(self.jobs, retries=self.retries,
                          events=self.events, spans=self.spans)
        payloads = []
        for job, fp in zip(jobs, fps):
            payloads.append(self._payload(job, fp))
            self.events.emit(EXEC_JOB_STARTED, 0,
                             benchmark=job.benchmark, label=job.label,
                             fingerprint=fp[:12])
        raw = pool.run(payloads)
        by_fp = {entry["fingerprint"]: entry["result"] for entry in raw}
        for job, fp in zip(jobs, fps):
            result = result_from_dict(by_fp[fp])
            self._store(job, fp, result)
            self.events.emit(EXEC_JOB_FINISHED, 0,
                             benchmark=job.benchmark, label=job.label,
                             fingerprint=fp[:12], cycles=result.cycles)

    # -- bookkeeping ---------------------------------------------------

    def run_payload_inline(self, job: JobSpec) -> SimResult:
        """The exact worker path, in-process (tests: serial-vs-pool
        equivalence without spawning)."""
        fp = self.fingerprint(job)
        entry = run_job_payload(self._payload(job, fp))
        return result_from_dict(entry["result"])

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of resolved jobs served without simulating."""
        served = sum(self.stats.values())
        if not served:
            return 0.0
        return (self.stats["memo"] + self.stats["disk"]) / served

    def clear(self) -> None:
        """Drop in-process memo and traces (the disk cache stays)."""
        self._memo.clear()
        self._traces.clear()


__all__ = ["ExecutionService"]
