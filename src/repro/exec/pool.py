"""Multiprocess job execution with deterministic seeding and retry.

The worker entry point (:func:`run_job_payload`) is a plain top-level
function over a plain-dict payload, so it pickles cleanly and can also
run inline in the parent (``jobs=1``, and the unit tests). Each worker
process memoizes committed traces by ``(benchmark, scale)`` — the
expensive functional execution happens once per process, not once per
job — and seeds :mod:`random` from the job fingerprint before
touching any model code, so a pool run is reproducible job-by-job no
matter which worker picks which job up.

Crash handling: a worker dying mid-job (OOM killer, hard crash)
surfaces as :class:`~concurrent.futures.process.BrokenProcessPool`,
which poisons the whole executor. The pool rebuilds the executor and
resubmits the unfinished payloads, up to ``retries`` extra attempts
per job, emitting an ``exec.worker.retry`` telemetry event each time.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
import os
from pathlib import Path
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.events import EXEC_WORKER_RETRY, NULL_EVENT_STREAM
from repro.telemetry.spans import NULL_SPANS, WALL

#: per-process committed-trace memo, keyed (benchmark, scale).
_TRACE_MEMO: Dict[Tuple[str, float], Any] = {}


def derive_seed(fingerprint: str) -> int:
    """The deterministic per-job seed: the fingerprint's head."""
    return int(fingerprint[:16], 16)


def _trace_for(benchmark: str, scale: float) -> Any:
    key = (benchmark, scale)
    if key not in _TRACE_MEMO:
        from repro import workloads
        from repro.machine.executor import Executor
        program = workloads.build(benchmark, scale)
        _TRACE_MEMO[key] = Executor(program).run()
    return _TRACE_MEMO[key]


def run_job_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Simulate one job described by a picklable payload.

    Payload keys: ``benchmark``, ``scale``, ``config`` (a
    ``SimConfig.to_dict()`` form), ``label``, ``fingerprint``, and
    optionally ``crash_once_path`` (test hook: hard-kill this worker
    the first time the job is attempted, to exercise retry).
    Returns ``{"fingerprint", "result"}`` with the result in the
    :mod:`repro.core.export` dict schema.
    """
    marker = payload.get("crash_once_path")
    if marker is not None and not os.path.exists(marker):
        Path(marker).touch()
        os._exit(17)

    random.seed(derive_seed(payload["fingerprint"]))

    from repro.core.config import SimConfig
    from repro.core.engine import Engine
    from repro.core.export import result_to_dict

    config = SimConfig.from_dict(payload["config"])
    trace = _trace_for(payload["benchmark"], payload["scale"])
    result = Engine(config).run(trace, benchmark=payload["benchmark"],
                                label=payload["label"])
    return {"fingerprint": payload["fingerprint"],
            "result": result_to_dict(result)}


class WorkerPool:
    """A crash-tolerant, order-preserving process pool."""

    def __init__(self, jobs: int, retries: int = 2,
                 events: Any = NULL_EVENT_STREAM,
                 spans: Any = NULL_SPANS) -> None:
        if jobs < 1:
            raise ValueError("need at least one worker")
        self.jobs = jobs
        self.retries = retries
        self.events = events
        #: span recorder for wall-clock pool-batch spans; worker
        #: processes themselves never see it (it does not pickle into
        #: the payloads), so per-run engine spans stay parent-only.
        self.spans = spans
        self.retry_count = 0

    def run(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """All payloads through :func:`run_job_payload`, results in
        submission order.

        Raises:
            RuntimeError: when a job keeps failing after ``retries``
                resubmissions.
        """
        results: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
        pending = list(range(len(payloads)))
        attempts = [0] * len(payloads)
        spans = self.spans
        round_no = 0
        while pending:
            batch = spans.begin(
                "exec", "exec.pool_batch", spans.now_wall(),
                timebase=WALL, jobs=len(pending), workers=self.jobs,
                round=round_no)
            round_no += 1
            executor = ProcessPoolExecutor(max_workers=self.jobs)
            futures = {executor.submit(run_job_payload, payloads[idx]): idx
                       for idx in pending}
            failed: List[int] = []
            errors: Dict[int, BaseException] = {}
            for future in as_completed(futures):
                idx = futures[future]
                try:
                    results[idx] = future.result()
                except Exception as exc:  # incl. BrokenProcessPool
                    attempts[idx] += 1
                    errors[idx] = exc
                    failed.append(idx)
            executor.shutdown(wait=False)
            batch.end(spans.now_wall(), failed=len(failed))
            exhausted = [idx for idx in failed
                         if attempts[idx] > self.retries]
            if exhausted:
                idx = exhausted[0]
                raise RuntimeError(
                    f"job {payloads[idx].get('label')!r} on "
                    f"{payloads[idx].get('benchmark')!r} failed after "
                    f"{attempts[idx]} attempt(s)") from errors[idx]
            for idx in failed:
                self.retry_count += 1
                spans.instant(
                    "exec", "exec.worker.retry", spans.now_wall(),
                    timebase=WALL,
                    benchmark=payloads[idx].get("benchmark"),
                    label=payloads[idx].get("label"),
                    attempt=attempts[idx])
                self.events.emit(
                    EXEC_WORKER_RETRY, 0,
                    benchmark=payloads[idx].get("benchmark"),
                    label=payloads[idx].get("label"),
                    attempt=attempts[idx])
            pending = sorted(failed)
        return [r for r in results if r is not None]


__all__ = ["WorkerPool", "run_job_payload", "derive_seed"]
