"""Grid expansion: the one place experiment grids are spelled out.

The harness used to hand-roll its config-variant expansion twice
(``harness/experiment.py`` and ``harness/sweeps.py``); every grid now
flows through :class:`JobSpec` and the helpers here, so the figures,
tables, sweeps and the CLI all dispatch the same job shapes to the
execution service.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.core.config import SimConfig
from repro.fillunit.opts.base import OptimizationConfig


@dataclass(frozen=True)
class JobSpec:
    """One simulation job: a benchmark under one machine config.

    The *label* is presentation only — it names the config in reports
    and :class:`~repro.core.results.SimResult.config_label` but does
    not participate in the job fingerprint, so relabelled duplicates
    of the same machine still share one cache entry.
    """

    benchmark: str
    config: SimConfig
    label: str


def variant_label(opts: OptimizationConfig) -> str:
    """The harness's conventional name for an optimization set."""
    names = opts.enabled_names()
    return "+".join(names) if names else "baseline"


def opt_variant(opts: OptimizationConfig,
                fill_latency: int = 5) -> Tuple[str, SimConfig]:
    """A ``(label, config)`` pair: the paper machine under *opts*."""
    return variant_label(opts), SimConfig.paper(opts, fill_latency)


def expand(benchmarks: Sequence[str],
           variants: Iterable[Tuple[str, SimConfig]]) -> List[JobSpec]:
    """The cross product, benchmark-major (matching the order the
    figures iterate, so warm traces are reused back-to-back)."""
    variant_list = list(variants)
    return [JobSpec(bench, config, label)
            for bench in benchmarks
            for label, config in variant_list]


def sweep_grid(benchmarks: Sequence[str], points: Sequence[object],
               make_config: Callable[[object, OptimizationConfig],
                                     SimConfig]) -> List[JobSpec]:
    """The baseline-vs-optimized pair at every knob point, for every
    benchmark — the shape every sensitivity sweep runs.

    Returns jobs benchmark-major, points in order, baseline before
    optimized; consumers rely on that layout to re-pair results.
    """
    variants: List[Tuple[str, SimConfig]] = []
    for point in points:
        variants.append(
            (f"base@{point}",
             make_config(point, OptimizationConfig.none())))
        variants.append(
            (f"all@{point}", make_config(point, OptimizationConfig.all())))
    return expand(benchmarks, variants)


def paper_grid(benchmarks: Sequence[str],
               latencies: Sequence[int] = (1, 5, 10)) -> List[JobSpec]:
    """Every job behind the paper's figures 3-8 and table 2: the four
    single-optimization machines at the default fill latency, plus
    baseline and all-optimizations at each *latencies* point."""
    variants: List[Tuple[str, SimConfig]] = []
    for latency in latencies:
        variants.append(
            ("baseline" if latency == 5 else f"baseline@{latency}",
             SimConfig.paper(OptimizationConfig.none(), latency)))
    for name in ("moves", "reassoc", "scaled_adds", "placement"):
        variants.append(opt_variant(OptimizationConfig.only(name)))
    for latency in latencies:
        label, config = opt_variant(OptimizationConfig.all(), latency)
        if latency != 5:
            label = f"{label}@{latency}"
        variants.append((label, config))
    return expand(benchmarks, variants)


def with_label(job: JobSpec, label: str) -> JobSpec:
    """*job* renamed (same machine, same fingerprint)."""
    return replace(job, label=label)


__all__ = ["JobSpec", "variant_label", "opt_variant", "expand",
           "sweep_grid", "paper_grid", "with_label"]
