"""Architectural register state."""

from __future__ import annotations

from repro.isa.registers import NUM_REGS, ZERO_REG, reg_name
from repro.isa.semantics import to_s32


class ArchState:
    """The 32 architected integer registers plus the PC.

    Register zero reads as zero and ignores writes, matching the ISA
    convention the move-detection logic relies on. Values are stored as
    signed 32-bit Python ints.
    """

    __slots__ = ("regs", "pc")

    def __init__(self, pc: int = 0) -> None:
        self.regs = [0] * NUM_REGS
        self.pc = pc

    def read_reg(self, num: int) -> int:
        return self.regs[num]

    def write_reg(self, num: int, value: int) -> None:
        if num != ZERO_REG:
            self.regs[num] = to_s32(value)

    def copy(self) -> "ArchState":
        other = ArchState(self.pc)
        other.regs = list(self.regs)
        return other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArchState):
            return NotImplemented
        return self.regs == other.regs and self.pc == other.pc

    def __repr__(self) -> str:
        nonzero = {reg_name(idx): value
                   for idx, value in enumerate(self.regs) if value}
        return f"ArchState(pc={self.pc:#x}, {nonzero})"


__all__ = ["ArchState"]
