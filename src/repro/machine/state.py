"""Architectural register state."""

from __future__ import annotations

from typing import Tuple

from repro.isa.registers import NUM_REGS, ZERO_REG, reg_name
from repro.isa.semantics import to_s32

#: a recorded architectural effect: ``((reg, value), ...), pc``
ArchDelta = Tuple[Tuple[Tuple[int, int], ...], int]


class ArchState:
    """The 32 architected integer registers plus the PC.

    Register zero reads as zero and ignores writes, matching the ISA
    convention the move-detection logic relies on. Values are stored as
    signed 32-bit Python ints.
    """

    __slots__ = ("regs", "pc")

    def __init__(self, pc: int = 0) -> None:
        self.regs = [0] * NUM_REGS
        self.pc = pc

    def read_reg(self, num: int) -> int:
        return self.regs[num]

    def write_reg(self, num: int, value: int) -> None:
        if num != ZERO_REG:
            self.regs[num] = to_s32(value)

    def copy(self) -> "ArchState":
        other = ArchState(self.pc)
        other.regs = list(self.regs)
        return other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArchState):
            return NotImplemented
        return self.regs == other.regs and self.pc == other.pc

    def __repr__(self) -> str:
        nonzero = {reg_name(idx): value
                   for idx, value in enumerate(self.regs) if value}
        return f"ArchState(pc={self.pc:#x}, {nonzero})"

    # -- snapshot / digest / delta surface ------------------------------

    def snapshot(self) -> Tuple[Tuple[int, ...], int]:
        """An immutable copy of the full state: ``(regs, pc)``."""
        return (tuple(self.regs), self.pc)

    def restore(self, snap: Tuple[Tuple[int, ...], int]) -> None:
        """Install a :meth:`snapshot`."""
        regs, pc = snap
        self.regs = list(regs)
        self.pc = pc

    def digest(self) -> Tuple[Tuple[int, ...], int]:
        """Hashable identity of the architectural state. Register
        values are position-independent (no cycle numbers), so the
        snapshot itself is the digest."""
        return self.snapshot()

    def delta_from(self, snap: Tuple[Tuple[int, ...], int]) -> ArchDelta:
        """Changes since *snap* as ``((reg, new_value), ...), new_pc``.

        Applying the result to any state equal to *snap* (via
        :meth:`apply_delta`) reproduces this state exactly — the
        round-trip contract the replay layer's property tests pin.
        """
        regs, _pc = snap
        changed = tuple((idx, value)
                        for idx, value in enumerate(self.regs)
                        if value != regs[idx])
        return (changed, self.pc)

    def apply_delta(self, delta: ArchDelta) -> None:
        """Apply a :meth:`delta_from` record."""
        changed, pc = delta
        for idx, value in changed:
            self.regs[idx] = value
        self.pc = pc


__all__ = ["ArchState", "ArchDelta"]
