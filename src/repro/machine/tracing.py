"""Committed-stream records.

The functional executor emits one :class:`CommittedInstr` per retired
instruction; the trace cache, fill unit and timing pipeline all consume
this stream. It is the moral equivalent of the paper's correct-path
instruction stream.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instruction import Instruction


class CommittedInstr:
    """One committed (correct-path) dynamic instruction."""

    __slots__ = ("pc", "instr", "next_pc", "taken", "mem_addr",
                 "mem_size", "is_store", "seq")

    def __init__(self, seq: int, pc: int, instr: Instruction, next_pc: int,
                 taken: bool = False, mem_addr: Optional[int] = None,
                 mem_size: int = 0, is_store: bool = False) -> None:
        self.seq = seq
        self.pc = pc
        self.instr = instr
        self.next_pc = next_pc
        self.taken = taken
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.is_store = is_store

    def __repr__(self) -> str:
        return (f"CommittedInstr(#{self.seq} pc={self.pc:#x} "
                f"{self.instr.op.value} -> {self.next_pc:#x})")


class CommittedTrace:
    """The full committed stream of one program run."""

    def __init__(self, records: list, final_state, output: list) -> None:
        self.records = records
        self.final_state = final_state
        self.output = output

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index):
        return self.records[index]

    def __iter__(self):
        return iter(self.records)

    def dynamic_op_mix(self) -> dict:
        """Histogram of committed opcode classes (workload fingerprint)."""
        mix: dict = {}
        for record in self.records:
            key = record.instr.opclass.value
            mix[key] = mix.get(key, 0) + 1
        return mix

    def conditional_branch_count(self) -> int:
        return sum(1 for r in self.records if r.instr.is_cond_branch())

    def executed_edges(self) -> set:
        """Distinct executed control transitions as ``(pc, next_pc)``
        pairs. The halt self-transition (``next_pc == pc``) is
        excluded: it marks program exit, not a flow edge."""
        return {(r.pc, r.next_pc) for r in self.records
                if r.next_pc != r.pc}


__all__ = ["CommittedInstr", "CommittedTrace"]
