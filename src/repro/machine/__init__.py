"""Functional machine: architectural state, byte memory, executor.

The functional machine serves two roles:

1. It generates the *committed instruction stream* (the "correct path")
   that the timing simulator replays — the oracle the trace-driven
   model is built on.
2. It is the semantic referee for the fill-unit optimizations: the
   property-based tests execute original and optimized instruction
   sequences on two machines and require identical architectural state.
"""

from repro.machine.executor import Executor, run_program
from repro.machine.memory import Memory
from repro.machine.state import ArchState
from repro.machine.tracing import CommittedInstr, CommittedTrace

__all__ = [
    "ArchState",
    "Memory",
    "Executor",
    "run_program",
    "CommittedInstr",
    "CommittedTrace",
]
