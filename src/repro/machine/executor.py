"""Functional executor.

Runs a :class:`~repro.program.Program` to architectural completion,
producing the committed instruction stream the timing model replays.

A minimal syscall interface is provided for the example programs
(SPIM-style: service number in ``$v0``):

* ``$v0 == 1`` -- append the integer in ``$a0`` to :attr:`Executor.output`.
* ``$v0 == 11`` -- append ``chr($a0)`` to the output.
* ``$v0 == 10`` -- exit (equivalent to ``halt``).

Any other service number is a serializing no-op, which is all the
timing model needs (serializing instructions terminate trace segments).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExecutionError
from repro.isa.semantics import evaluate, to_s32
from repro.machine.memory import Memory
from repro.machine.state import ArchState
from repro.machine.tracing import CommittedInstr, CommittedTrace
from repro.program.image import Program
from repro.program.loader import load_program

DEFAULT_MAX_INSTRUCTIONS = 5_000_000


class Executor:
    """Architectural interpreter for one program."""

    def __init__(self, program: Program,
                 memory: Optional[Memory] = None,
                 state: Optional[ArchState] = None) -> None:
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.state = state if state is not None else ArchState()
        self.output: list = []
        self.halted = False
        self.instructions_retired = 0
        load_program(program, self.memory, self.state)

    # ------------------------------------------------------------------

    def step(self) -> CommittedInstr:
        """Execute one instruction and return its committed record.

        Raises:
            ExecutionError: on fetch outside text, bad memory access, or
                stepping a halted machine.
        """
        if self.halted:
            raise ExecutionError("machine is halted")
        state = self.state
        pc = state.pc
        instr = self.program.instr_at(pc)
        effect = evaluate(instr, state.read_reg)

        mem_addr = None
        mem_size = 0
        is_store = False
        value = effect.value
        if effect.mem is not None:
            mem = effect.mem
            mem_addr, mem_size, is_store = mem.addr, mem.size, mem.is_store
            if mem.is_store:
                self.memory.store(mem.addr, mem.store_value, mem.size)
            else:
                value = self.memory.load(mem.addr, mem.size, mem.signed)

        if effect.dest is not None:
            state.write_reg(effect.dest, value)

        if instr.op.value == "syscall":
            self._syscall()
        if effect.halt or self.halted:
            self.halted = True
            next_pc = pc
        elif effect.is_ctrl:
            next_pc = effect.target
        else:
            next_pc = pc + 4
        state.pc = next_pc
        record = CommittedInstr(self.instructions_retired, pc, instr,
                                next_pc, effect.taken and effect.is_ctrl,
                                mem_addr, mem_size, is_store)
        self.instructions_retired += 1
        return record

    def _syscall(self) -> None:
        service = self.state.read_reg(2)          # $v0
        arg = self.state.read_reg(4)              # $a0
        if service == 1:
            self.output.append(to_s32(arg))
        elif service == 11:
            self.output.append(chr(arg & 0xFF))
        elif service == 10:
            self.halted = True

    # ------------------------------------------------------------------

    def run(self,
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
            collect: bool = True) -> CommittedTrace:
        """Run to halt (or the instruction limit) and return the trace.

        Raises:
            ExecutionError: if the program does not halt within
                *max_instructions* — almost always a workload bug, so it
                is loud rather than silent.
        """
        records: list = []
        append = records.append
        while not self.halted:
            if self.instructions_retired >= max_instructions:
                raise ExecutionError(
                    f"program did not halt within {max_instructions} "
                    f"instructions (pc={self.state.pc:#x})")
            record = self.step()
            if collect:
                append(record)
        return CommittedTrace(records, self.state, self.output)


def run_program(program: Program,
                max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
                ) -> CommittedTrace:
    """Assemble-and-go convenience: execute *program* from a fresh
    machine and return its committed trace."""
    return Executor(program).run(max_instructions)


def execute_sequence(instrs: list, state: ArchState,
                     memory: Memory) -> None:
    """Execute a straight-line instruction sequence in order, mutating
    *state* and *memory*.

    Used by the optimization-equivalence tests: a trace segment replayed
    fully on-path must leave identical architectural state whether or
    not the fill unit transformed it. Control-flow effects update the PC
    but do not redirect (the sequence itself encodes the path).
    """
    for instr in instrs:
        effect = evaluate(instr, state.read_reg)
        value = effect.value
        if effect.mem is not None:
            mem = effect.mem
            if mem.is_store:
                memory.store(mem.addr, mem.store_value, mem.size)
            else:
                value = memory.load(mem.addr, mem.size, mem.signed)
        if effect.dest is not None:
            state.write_reg(effect.dest, value)


__all__ = ["Executor", "run_program", "execute_sequence",
           "DEFAULT_MAX_INSTRUCTIONS"]
