"""Sparse paged byte-addressable memory.

Pages are allocated lazily in 4KB chunks, so the 32-bit address space
costs only what the program touches. Loads from untouched memory read
as zero (matching a zero-filled loader image), which keeps workload
generators simple; alignment is enforced because the timing model's
memory system assumes naturally aligned accesses.
"""

from __future__ import annotations

from repro.errors import ExecutionError

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """Byte-addressable sparse memory with natural-alignment checking."""

    def __init__(self) -> None:
        self._pages: dict = {}

    def _page(self, addr: int) -> bytearray:
        key = addr >> PAGE_SHIFT
        page = self._pages.get(key)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[key] = page
        return page

    # ------------------------------------------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read *size* bytes starting at *addr* (may straddle pages)."""
        out = bytearray()
        while size:
            page = self._page(addr)
            offset = addr & PAGE_MASK
            chunk = min(size, PAGE_SIZE - offset)
            out += page[offset:offset + chunk]
            addr += chunk
            size -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write *data* starting at *addr* (may straddle pages)."""
        pos = 0
        while pos < len(data):
            page = self._page(addr)
            offset = addr & PAGE_MASK
            chunk = min(len(data) - pos, PAGE_SIZE - offset)
            page[offset:offset + chunk] = data[pos:pos + chunk]
            addr += chunk
            pos += chunk

    # ------------------------------------------------------------------

    def load(self, addr: int, size: int, signed: bool) -> int:
        """Aligned little-endian load of 1, 2 or 4 bytes.

        Raises:
            ExecutionError: on misaligned access.
        """
        self._check_align(addr, size)
        offset = addr & PAGE_MASK
        if offset + size <= PAGE_SIZE:
            page = self._page(addr)
            raw = bytes(page[offset:offset + size])
        else:  # pragma: no cover - aligned accesses never straddle
            raw = self.read_bytes(addr, size)
        return int.from_bytes(raw, "little", signed=signed)

    def store(self, addr: int, value: int, size: int) -> None:
        """Aligned little-endian store of 1, 2 or 4 bytes.

        Raises:
            ExecutionError: on misaligned access.
        """
        self._check_align(addr, size)
        value &= (1 << (8 * size)) - 1
        offset = addr & PAGE_MASK
        page = self._page(addr)
        page[offset:offset + size] = value.to_bytes(size, "little")

    def load_word(self, addr: int) -> int:
        """Signed 32-bit load (convenience for tests and workloads)."""
        return self.load(addr, 4, signed=True)

    def store_word(self, addr: int, value: int) -> None:
        """32-bit store (convenience for tests and workloads)."""
        self.store(addr, value, 4)

    @staticmethod
    def _check_align(addr: int, size: int) -> None:
        if addr % size:
            raise ExecutionError(
                f"misaligned {size}-byte access at {addr:#x}")

    # ------------------------------------------------------------------

    def touched_pages(self) -> int:
        """Number of pages allocated so far (test/debug aid)."""
        return len(self._pages)

    def snapshot(self) -> dict:
        """A deep copy of all touched pages, for state-equality checks."""
        return {key: bytes(page) for key, page in self._pages.items()}


__all__ = ["Memory", "PAGE_SIZE"]
