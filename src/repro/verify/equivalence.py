"""Translation validation for optimized trace segments.

Proves — per segment, without executing anything — that an optimized
segment is equivalent to its pre-optimization original along the
embedded path:

* ``equiv-registers``: every register either side writes must hold a
  symbolically identical final value (a register only the original
  writes was deleted; only the optimized writes, fabricated);
* ``equiv-memory``: the ordered store log must match record for record
  (width, address term, value term) — loads are validated implicitly,
  because a moved or rewritten load changes the terms that flow into
  registers and stores;
* ``equiv-branches``: every branch present in both segments (paired by
  PC) must test a symbolically identical condition.

Structural lint violations already explain some divergences (a squashed
live instruction both breaks ``def-before-use`` and perturbs the final
register state); the caller passes the offending instruction indices in
*suppressed* so each defect is reported once, by its most precise rule.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, List, Optional, Tuple

from repro.tracecache.segment import TraceSegment
from repro.verify.rules import RULES, Violation
from repro.verify.symbolic import (
    BranchCondition,
    SymbolicState,
    evaluate_segment,
    render_term,
    written_registers,
)


def _violation(rule_id: str, index: Optional[int], message: str,
               pass_name: Optional[str]) -> Violation:
    spec = RULES[rule_id]
    return Violation(rule=rule_id, severity=spec.severity,
                     message=message, index=index, pass_name=pass_name,
                     hint=spec.hint)


def _compare_registers(original: TraceSegment, optimized: TraceSegment,
                       orig_state: SymbolicState,
                       opt_state: SymbolicState,
                       suppressed: AbstractSet[int],
                       pass_name: Optional[str]) -> List[Violation]:
    orig_writers = written_registers(original)
    opt_writers = written_registers(optimized)
    found: List[Violation] = []
    for reg in sorted(set(orig_writers) | set(opt_writers)):
        before = orig_state.final_value(reg)
        after = opt_state.final_value(reg)
        if before == after:
            continue
        writer_o = orig_writers.get(reg)
        writer_n = opt_writers.get(reg)
        if writer_o in suppressed or writer_n in suppressed:
            continue
        found.append(_violation(
            "equiv-registers", writer_n if writer_n is not None
            else writer_o,
            f"live-out r{reg} diverged: original "
            f"{render_term(before)}, optimized {render_term(after)}",
            pass_name))
    return found


def _compare_memory(orig_state: SymbolicState,
                    opt_state: SymbolicState,
                    suppressed: AbstractSet[int],
                    order_already_reported: bool,
                    pass_name: Optional[str]) -> List[Violation]:
    found: List[Violation] = []
    if len(orig_state.stores) != len(opt_state.stores):
        if not order_already_reported:
            found.append(_violation(
                "equiv-memory", None,
                f"store count changed: {len(orig_state.stores)} -> "
                f"{len(opt_state.stores)}", pass_name))
        return found
    for pos, (before, after) in enumerate(
            zip(orig_state.stores, opt_state.stores)):
        if before.index in suppressed or after.index in suppressed:
            continue
        if before.width != after.width:
            found.append(_violation(
                "equiv-memory", after.index,
                f"store #{pos} width changed "
                f"({before.width} -> {after.width})", pass_name))
        elif before.address != after.address:
            found.append(_violation(
                "equiv-memory", after.index,
                f"store #{pos} address diverged: "
                f"{render_term(before.address)} vs "
                f"{render_term(after.address)}", pass_name))
        elif before.value != after.value:
            found.append(_violation(
                "equiv-memory", after.index,
                f"store #{pos} value diverged: "
                f"{render_term(before.value)} vs "
                f"{render_term(after.value)}", pass_name))
    return found


def _compare_branches(orig_state: SymbolicState,
                      opt_state: SymbolicState,
                      suppressed: AbstractSet[int],
                      pass_name: Optional[str]) -> List[Violation]:
    # Pair by instruction index: a surviving branch keeps its position
    # (branch-preserved enforces that), and a segment may embed the
    # same branch PC twice, so PC alone cannot pair records.
    before_map: Dict[int, BranchCondition] = {
        b.index: b for b in orig_state.branches}
    found: List[Violation] = []
    for after in opt_state.branches:
        before = before_map.get(after.index)
        if before is None or before.pc != after.pc \
                or after.index in suppressed \
                or before.index in suppressed:
            continue           # missing/extra records: branch-preserved
        if (before.condition, before.taken_iff) != \
                (after.condition, after.taken_iff):
            found.append(_violation(
                "equiv-branches", after.index,
                f"branch at {after.pc:#x} condition diverged: "
                f"{render_term(before.condition)} vs "
                f"{render_term(after.condition)}", pass_name))
    return found


def check_equivalence(
        original: TraceSegment, optimized: TraceSegment,
        suppressed: AbstractSet[int] = frozenset(),
        order_already_reported: bool = False,
        pass_name: Optional[str] = None
) -> Tuple[List[Violation], SymbolicState, SymbolicState]:
    """Validate *optimized* against *original*; returns the violations
    plus both symbolic states (for diagnostics and tests)."""
    orig_state = evaluate_segment(original)
    opt_state = evaluate_segment(optimized,
                                 assumptions=orig_state.assumptions)
    violations = _compare_registers(original, optimized, orig_state,
                                    opt_state, suppressed, pass_name)
    violations += _compare_memory(orig_state, opt_state, suppressed,
                                  order_already_reported, pass_name)
    violations += _compare_branches(orig_state, opt_state, suppressed,
                                    pass_name)
    return violations, orig_state, opt_state


__all__ = ["check_equivalence"]
