"""Invariant lint rules for fill-unit rewrites.

Each rule is a *structural* invariant the fill unit must maintain when
it rewrites a trace segment — independent of (and complementary to)
the symbolic equivalence check in :mod:`repro.verify.equivalence`.
Rules are registered in :data:`RULES` via the :func:`rule` decorator;
each carries a severity and a fix-it hint, and yields
:class:`Violation` records pointing at the offending instruction.

A rule receives a :class:`RuleInput`: the pre-rewrite segment, the
post-rewrite segment, the optimization configuration, and — when the
check runs per-pass under ``PassManager.verify_each`` — the name and
declared mutation surface of the pass that just ran.

Writing a new rule::

    @rule("my-rule", severity=ERROR,
          description="what must hold",
          hint="what to fix when it does not")
    def _check_my_rule(inp: RuleInput) -> Iterator[Violation]:
        for idx, instr in enumerate(inp.optimized.instrs):
            if something_wrong(instr):
                yield inp.violation("my-rule", idx, "what went wrong")

See ``docs/verification.md`` for the full rule catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.fillunit.opts.base import OptimizationConfig
from repro.isa.instruction import Instruction, move_source
from repro.isa.opcodes import Format, Op
from repro.isa.registers import ZERO_REG
from repro.tracecache.segment import TraceSegment

ERROR = "error"
WARNING = "warning"

_IMM_MIN, _IMM_MAX = -32768, 32767

#: Formats whose immediate field is architecturally 16 bits (signed).
_IMM16_FORMATS = (Format.R2I, Format.LOAD, Format.STORE,
                  Format.BR1, Format.BR2)

#: Per-instruction fields a pass may declare in its mutation surface.
_SURFACE_FIELDS = ("op", "rd", "rs", "rt", "imm", "move_flag",
                   "move_bypassed", "scale", "guard", "reassociated")

#: Fields no pass may ever touch (segment identity).
_IDENTITY_FIELDS = ("pc", "block_id", "flow_id", "orig_index")


@dataclass(frozen=True)
class Violation:
    """One invariant violation found in an optimized segment."""

    rule: str
    severity: str
    message: str
    #: index of the offending instruction in the optimized segment
    #: (``None`` for segment-level violations).
    index: Optional[int] = None
    #: the optimization pass that produced the rewrite, when known
    #: (per-pass verification); ``None`` for whole-pipeline checks.
    pass_name: Optional[str] = None
    hint: Optional[str] = None

    def render(self) -> str:
        where = f"[{self.index}]" if self.index is not None else "[seg]"
        owner = f" pass={self.pass_name}" if self.pass_name else ""
        text = (f"{self.severity}: {self.rule} {where}{owner}: "
                f"{self.message}")
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class RuleInput:
    """Everything a lint rule may inspect."""

    original: TraceSegment
    optimized: TraceSegment
    config: OptimizationConfig = field(
        default_factory=OptimizationConfig)
    pass_name: Optional[str] = None
    #: the pass's declared mutation surface (field names it may change),
    #: when verifying a single pass; ``None`` disables surface checks.
    surface: Optional[frozenset] = None

    def violation(self, rule_id: str, index: Optional[int],
                  message: str) -> Violation:
        spec = RULES[rule_id]
        return Violation(rule=rule_id, severity=spec.severity,
                         message=message, index=index,
                         pass_name=self.pass_name, hint=spec.hint)


Checker = Callable[[RuleInput], Iterable[Violation]]


@dataclass(frozen=True)
class LintRule:
    """A registered invariant rule."""

    rule_id: str
    severity: str
    description: str
    hint: str
    check: Optional[Checker]
    #: semantic rules are emitted by the equivalence checker, not by
    #: iterating the registry; they are registered for the catalogue.
    semantic: bool = False


RULES: Dict[str, LintRule] = {}


def rule(rule_id: str, severity: str = ERROR, description: str = "",
         hint: str = "") -> Callable[[Checker], Checker]:
    """Register a lint rule; the decorated callable yields
    :class:`Violation` records for one (original, optimized) pair."""
    def register(check: Checker) -> Checker:
        RULES[rule_id] = LintRule(rule_id, severity, description, hint,
                                  check)
        return check
    return register


def register_semantic(rule_id: str, description: str,
                      hint: str = "") -> None:
    """Register a semantic (equivalence-checker) rule descriptor."""
    RULES[rule_id] = LintRule(rule_id, ERROR, description, hint,
                              check=None, semantic=True)


def run_rules(inp: RuleInput,
              rule_ids: Optional[Iterable[str]] = None) -> List[Violation]:
    """Run the structural rules (all registered ones by default)."""
    selected = (list(RULES) if rule_ids is None else list(rule_ids))
    found: List[Violation] = []
    for rule_id in selected:
        spec = RULES[rule_id]
        if spec.check is None:
            continue
        found.extend(spec.check(inp))
    return found


def attribute(violations: Iterable[Violation],
              pass_name: str) -> List[Violation]:
    """Tag *violations* with the pass that produced them."""
    return [replace(v, pass_name=pass_name) for v in violations]


# ======================================================================
# Structural rules
# ======================================================================

def _squashed(original: Instruction, optimized: Instruction) -> bool:
    """True when a pass replaced *original* with a NOP."""
    return optimized.op is Op.NOP and original.op is not Op.NOP


@rule("def-before-use",
      description="a squashed instruction's value must not reach any "
                  "surviving use or the segment exit",
      hint="only squash an instruction whose destination is redefined "
           "later in the same checkpoint block with no intervening "
           "reader (DeadCodePass._dead_within_block)")
def _check_def_before_use(inp: RuleInput) -> Iterator[Violation]:
    orig, opt = inp.original.instrs, inp.optimized.instrs
    for idx in range(min(len(orig), len(opt))):
        if not _squashed(orig[idx], opt[idx]):
            continue
        dest = orig[idx].dest()
        if dest is None:
            continue        # squashed branches are guard-sound's domain
        for later_idx in range(idx + 1, len(opt)):
            later = opt[later_idx]
            if dest in later.sources():
                yield inp.violation(
                    "def-before-use", idx,
                    f"squashed def of r{dest} is read by "
                    f"instruction [{later_idx}]")
                break
            if later.dest() == dest:
                if later.block_id != orig[idx].block_id:
                    yield inp.violation(
                        "def-before-use", idx,
                        f"squashed def of r{dest} is redefined only in "
                        f"a later checkpoint block; an early exit "
                        f"between them would observe the deleted value")
                break
        else:
            yield inp.violation(
                "def-before-use", idx,
                f"squashed def of r{dest} is live-out of the segment")


@rule("move-marking",
      description="the move flag may only mark genuine register-move "
                  "idioms, and never a guarded instruction",
      hint="rename completes a marked move by copying the source "
           "mapping; a non-move (or conditional) instruction marked as "
           "a move produces the wrong value")
def _check_move_marking(inp: RuleInput) -> Iterator[Violation]:
    for idx, instr in enumerate(inp.optimized.instrs):
        if not instr.move_flag:
            continue
        if move_source(instr) is None:
            yield inp.violation(
                "move-marking", idx,
                f"{instr.op.value} is marked as a move but is not a "
                f"detectable move idiom")
        elif instr.guard is not None:
            yield inp.violation(
                "move-marking", idx,
                "marked move carries a guard annotation; rename-copy "
                "cannot execute conditionally")


@rule("scale-shift-limit",
      description="scale annotations must respect max_scale_shift",
      hint="the trace cache stores 2 bits of shift amount and the ALU "
           "path-length argument caps the absorbable shift "
           "(OptimizationConfig.max_scale_shift)")
def _check_scale_shift_limit(inp: RuleInput) -> Iterator[Violation]:
    limit = inp.config.max_scale_shift
    for idx, instr in enumerate(inp.optimized.instrs):
        if instr.scale is None:
            continue
        if not 1 <= instr.scale.shamt <= limit:
            yield inp.violation(
                "scale-shift-limit", idx,
                f"scaled operand shifts by {instr.scale.shamt} "
                f"(allowed 1..{limit})")


@rule("scale-provenance",
      description="a scaled operand must name the source of a live "
                  "in-segment shift producing the replaced register",
      hint="annotate only when the rs operand was produced by an "
           "earlier SLL whose source register is unmodified between "
           "the shift and the use")
def _check_scale_provenance(inp: RuleInput) -> Iterator[Violation]:
    instrs = inp.optimized.instrs
    for idx, instr in enumerate(instrs):
        scale = instr.scale
        if scale is None:
            continue
        # The scaled slot replaces the architected rs operand: find the
        # latest in-segment definition of that register.
        producer_idx = None
        for j in range(idx - 1, -1, -1):
            if instrs[j].dest() == instr.rs:
                producer_idx = j
                break
        if producer_idx is None:
            yield inp.violation(
                "scale-provenance", idx,
                f"scaled operand replaces r{instr.rs}, which has no "
                f"in-segment shift producer")
            continue
        producer = instrs[producer_idx]
        if (producer.op is not Op.SLL or producer.move_flag
                or (producer.imm or 0) != scale.shamt
                or producer.rs != scale.src):
            yield inp.violation(
                "scale-provenance", idx,
                f"scaled operand claims r{scale.src} << {scale.shamt} "
                f"but r{instr.rs} was produced by "
                f"[{producer_idx}] {producer.op.value}")
            continue
        if producer.dest() == scale.src:
            yield inp.violation(
                "scale-provenance", idx,
                f"shift at [{producer_idx}] clobbers its own source "
                f"r{scale.src}")
            continue
        for k in range(producer_idx + 1, idx):
            if instrs[k].dest() == scale.src:
                yield inp.violation(
                    "scale-provenance", idx,
                    f"scale source r{scale.src} is redefined at [{k}] "
                    f"between the shift and the scaled use")
                break


@rule("placement-order",
      description="placement may only reassign issue slots; the "
                  "logical instruction order is never permuted",
      hint="write a fresh permutation into segment.slots and leave "
           "segment.instrs (and each orig_index) untouched")
def _check_placement_order(inp: RuleInput) -> Iterator[Violation]:
    orig, opt = inp.original, inp.optimized
    if len(opt.instrs) != len(orig.instrs):
        yield inp.violation(
            "placement-order", None,
            f"segment length changed from {len(orig.instrs)} to "
            f"{len(opt.instrs)}")
        return
    if sorted(opt.slots) != list(range(len(opt.instrs))):
        yield inp.violation(
            "placement-order", None,
            f"slot assignment {opt.slots} is not a permutation of "
            f"0..{len(opt.instrs) - 1}")
    for idx in range(len(opt.instrs)):
        if opt.instrs[idx].orig_index != orig.instrs[idx].orig_index:
            yield inp.violation(
                "placement-order", idx,
                f"logical order permuted: position {idx} now holds "
                f"original instruction "
                f"{opt.instrs[idx].orig_index}")
            return


@rule("mem-branch-order",
      description="memory and control operations are never reordered "
                  "across each other, and memory operations are never "
                  "dropped",
      hint="the memory scheduler relies on original program order; "
           "rewrites must keep every load/store/branch in place "
           "(predication may remove a conditional branch)")
def _check_mem_branch_order(inp: RuleInput) -> Iterator[Violation]:
    def kind(instr: Instruction) -> Optional[str]:
        if instr.is_load():
            return "load"
        if instr.is_store():
            return "store"
        if instr.is_ctrl():
            return "ctrl"
        return None

    orig, opt = inp.original.instrs, inp.optimized.instrs
    orig_proj = []
    for idx, instr in enumerate(orig):
        k = kind(instr)
        if k is None:
            continue
        # A conditional branch squashed by predication legitimately
        # disappears from the stream (guard-sound vets the conversion).
        if (k == "ctrl" and instr.is_cond_branch()
                and idx < len(opt) and opt[idx].op is Op.NOP):
            continue
        orig_proj.append((k, instr.pc))
    opt_proj = [(kind(i), i.pc) for i in opt if kind(i) is not None]
    if orig_proj == opt_proj:
        return
    for pos in range(max(len(orig_proj), len(opt_proj))):
        before = orig_proj[pos] if pos < len(orig_proj) else None
        after = opt_proj[pos] if pos < len(opt_proj) else None
        if before != after:
            yield inp.violation(
                "mem-branch-order", None,
                f"memory/control sequence diverges at position {pos}: "
                f"expected {before}, found {after}")
            return


@rule("branch-preserved",
      description="every embedded branch survives intact (op, "
                  "displacement, position, promotion state) unless "
                  "removed by a predication conversion",
      hint="passes may re-source branch condition operands through "
           "move bypassing, but never alter opcode, displacement or "
           "the branch record itself")
def _check_branch_preserved(inp: RuleInput) -> Iterator[Violation]:
    orig, opt = inp.original, inp.optimized
    # Pair records positionally (a segment may embed the same branch
    # PC twice — an unrolled loop body — so PC alone is ambiguous).
    # Records are in segment order; a conversion only ever *removes*
    # records, so a cursor walk recovers the pairing.
    cursor = 0
    matched = [False] * len(opt.branches)
    for ob in orig.branches:
        nb = None
        if (cursor < len(opt.branches)
                and opt.branches[cursor].pc == ob.pc):
            nb = opt.branches[cursor]
            matched[cursor] = True
            cursor += 1
        o_instr = orig.instrs[ob.index]
        if nb is None:
            ok = (ob.index < len(opt.instrs)
                  and opt.instrs[ob.index].op is Op.NOP)
            if ok:
                # Predication-shaped removal: the body right after the
                # squashed branch is guarded (guard-sound vets the
                # guard's register and sense precisely — checking them
                # here too would double-report one defect) or was
                # itself squashed by a later dead-code pass.
                follower = (opt.instrs[ob.index + 1]
                            if ob.index + 1 < len(opt.instrs) else None)
                ok = follower is not None and (
                    follower.op is Op.NOP
                    or follower.guard is not None)
            if not ok:
                yield inp.violation(
                    "branch-preserved", ob.index,
                    f"branch at {ob.pc:#x} lost its record without a "
                    f"matching predication conversion")
            continue
        n_instr = opt.instrs[nb.index]
        if (nb.index != ob.index or not n_instr.is_cond_branch()
                or n_instr.op is not o_instr.op
                or n_instr.imm != o_instr.imm
                or nb.direction != ob.direction
                or nb.promoted != ob.promoted):
            yield inp.violation(
                "branch-preserved", nb.index,
                f"branch at {ob.pc:#x} was altered "
                f"(op/displacement/record fields must be preserved)")
    for pos, nb in enumerate(opt.branches):
        if not matched[pos]:
            yield inp.violation(
                "branch-preserved", nb.index,
                f"fabricated branch record at {nb.pc:#x}")


@rule("guard-sound",
      description="a guard annotation must encode exactly the squashed "
                  "hard branch it replaces: same register, correct "
                  "sense, single-slot hammock, simple ALU body",
      hint="guards come only from PredicationPass: BEQ/BNE rs vs zero "
           "skipping one slot; execute_if_zero must equal (op is BNE)")
def _check_guard_sound(inp: RuleInput) -> Iterator[Violation]:
    orig, opt = inp.original.instrs, inp.optimized.instrs
    for idx, instr in enumerate(opt):
        guard = instr.guard
        if guard is None:
            continue
        if idx < len(orig) and orig[idx].guard is not None:
            continue                     # guard predates this rewrite
        if (instr.dest() is None or instr.is_mem() or instr.is_ctrl()
                or instr.is_serializing()):
            yield inp.violation(
                "guard-sound", idx,
                f"guard on {instr.op.value}, which is not a simple "
                f"ALU instruction with a destination")
            continue
        branch = orig[idx - 1] if 0 < idx <= len(orig) else None
        if (branch is None or branch.op not in (Op.BEQ, Op.BNE)
                or branch.rt != ZERO_REG or branch.imm != 8
                or opt[idx - 1].op is not Op.NOP):
            yield inp.violation(
                "guard-sound", idx,
                "guard does not correspond to a squashed single-slot "
                "BEQ/BNE-vs-zero hammock immediately before it")
            continue
        if branch.rs != guard.reg:
            yield inp.violation(
                "guard-sound", idx,
                f"guard reads r{guard.reg} but the squashed branch "
                f"tested r{branch.rs}")
            continue
        if guard.execute_if_zero != (branch.op is Op.BNE):
            yield inp.violation(
                "guard-sound", idx,
                f"guard sense inverted: {branch.op.value} skips its "
                f"body when the condition holds, so execute_if_zero "
                f"must be {branch.op is Op.BNE}")


@rule("imm-encodable",
      description="rewritten immediates must still fit the stored "
                  "instruction format (16-bit signed; 5-bit shamt)",
      hint="the trace cache stores unmodified instruction formats; "
           "reject a combined immediate that no longer encodes "
           "(ReassociationPass rejects with reason imm_overflow)")
def _check_imm_encodable(inp: RuleInput) -> Iterator[Violation]:
    for idx, instr in enumerate(inp.optimized.instrs):
        if instr.op is Op.NOP or instr.imm is None:
            continue
        fmt = instr.format
        if fmt in _IMM16_FORMATS:
            if not _IMM_MIN <= instr.imm <= _IMM_MAX:
                yield inp.violation(
                    "imm-encodable", idx,
                    f"immediate {instr.imm} does not fit the 16-bit "
                    f"signed field of {instr.op.value}")
        elif fmt is Format.SHIFT:
            if not 0 <= instr.imm <= 31:
                yield inp.violation(
                    "imm-encodable", idx,
                    f"shift amount {instr.imm} outside 0..31")


@rule("pass-surface",
      description="a pass may only change the per-instruction fields "
                  "and segment structures it declares in its mutation "
                  "surface",
      hint="extend the pass's `surface` declaration if the new "
           "mutation is intentional; identity fields (pc, block_id, "
           "flow_id, orig_index) are never mutable")
def _check_pass_surface(inp: RuleInput) -> Iterator[Violation]:
    surface = inp.surface
    if surface is None:
        return
    orig, opt = inp.original, inp.optimized
    if len(opt.instrs) == len(orig.instrs):
        for idx in range(len(opt.instrs)):
            o, n = orig.instrs[idx], opt.instrs[idx]
            for name in _IDENTITY_FIELDS:
                if getattr(o, name) != getattr(n, name):
                    yield inp.violation(
                        "pass-surface", idx,
                        f"identity field {name!r} changed "
                        f"({getattr(o, name)!r} -> "
                        f"{getattr(n, name)!r})")
            if _squashed(o, n) and "squash" in surface:
                continue
            for name in _SURFACE_FIELDS:
                if getattr(o, name) == getattr(n, name):
                    continue
                if name not in surface:
                    yield inp.violation(
                        "pass-surface", idx,
                        f"field {name!r} changed "
                        f"({getattr(o, name)!r} -> {getattr(n, name)!r}) "
                        f"outside the pass's declared surface "
                        f"{sorted(surface)}")
    if opt.slots != orig.slots and "slots" not in surface:
        yield inp.violation(
            "pass-surface", None,
            "slot assignment changed outside the declared surface")
    orig_records = [(b.index, b.pc, b.direction, b.promoted)
                    for b in orig.branches]
    opt_records = [(b.index, b.pc, b.direction, b.promoted)
                   for b in opt.branches]
    if opt_records != orig_records and "branches" not in surface:
        yield inp.violation(
            "pass-surface", None,
            "branch records changed outside the declared surface")


@rule("unmarked-move", severity=WARNING,
      description="after the move pass, every unguarded move idiom "
                  "should carry the move flag (missed optimization)",
      hint="RegisterMovePass should have marked this instruction; "
           "check move_source() coverage for the idiom")
def _check_unmarked_move(inp: RuleInput) -> Iterator[Violation]:
    if inp.pass_name != "moves":
        return
    for idx, instr in enumerate(inp.optimized.instrs):
        if (not instr.move_flag and instr.guard is None
                and instr.op is not Op.NOP
                and move_source(instr) is not None):
            yield inp.violation(
                "unmarked-move", idx,
                f"{instr.op.value} is a move idiom but was left "
                f"unmarked")


# Semantic rules live in repro.verify.equivalence; register their
# catalogue entries here so reporting and docs see one registry.
register_semantic(
    "equiv-registers",
    "every register live-out of the original segment must hold a "
    "symbolically identical value after optimization",
    hint="the rewrite changed a live-out dataflow expression; compare "
         "the rendered terms in the message to locate the divergence")
register_semantic(
    "equiv-memory",
    "the sequence of stores (address and value expressions) and every "
    "load's address/ordering must be symbolically identical",
    hint="a rewrite changed an address or store-value expression, or "
         "moved a load across a store")
register_semantic(
    "equiv-branches",
    "every surviving branch must test a symbolically identical "
    "condition",
    hint="a rewrite changed a branch's condition operands to a "
         "non-equivalent expression")


__all__ = ["Violation", "RuleInput", "LintRule", "RULES", "rule",
           "run_rules", "attribute", "register_semantic", "ERROR",
           "WARNING"]
