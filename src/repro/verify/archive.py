"""JSON serialization of trace segments for offline verification.

``tools/lint_segments.py`` captures (original, optimized) segment
pairs from a workload replay into a JSONL archive, and lints archives
without re-running the simulator. One JSON object per line::

    {"benchmark": "compress", "opts": "all",
     "original": {...segment...}, "optimized": {...segment...}}

The segment encoding is lossless for everything the verifier reads:
instructions with their fill-unit annotations, branch records, the
slot assignment and segment metadata.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterator, List, Optional, Tuple

from repro.isa.instruction import (
    GuardAnnotation,
    Instruction,
    ScaleAnnotation,
)
from repro.isa.opcodes import op_by_mnemonic
from repro.tracecache.segment import BranchInfo, TraceSegment


def instr_to_dict(instr: Instruction) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"op": instr.op.value}
    for name in ("rd", "rs", "rt", "imm", "pc"):
        value = getattr(instr, name)
        if value is not None:
            payload[name] = value
    for name in ("move_flag", "move_bypassed", "reassociated"):
        if getattr(instr, name):
            payload[name] = True
    for name in ("block_id", "flow_id", "orig_index"):
        value = getattr(instr, name)
        if value:
            payload[name] = value
    if instr.scale is not None:
        payload["scale"] = {"src": instr.scale.src,
                            "shamt": instr.scale.shamt}
    if instr.guard is not None:
        payload["guard"] = {
            "reg": instr.guard.reg,
            "execute_if_zero": instr.guard.execute_if_zero}
    return payload


def instr_from_dict(payload: Dict[str, Any]) -> Instruction:
    instr = Instruction(
        op=op_by_mnemonic(payload["op"]),
        rd=payload.get("rd"), rs=payload.get("rs"),
        rt=payload.get("rt"), imm=payload.get("imm"),
        pc=payload.get("pc"))
    instr.move_flag = bool(payload.get("move_flag", False))
    instr.move_bypassed = bool(payload.get("move_bypassed", False))
    instr.reassociated = bool(payload.get("reassociated", False))
    instr.block_id = int(payload.get("block_id", 0))
    instr.flow_id = int(payload.get("flow_id", 0))
    instr.orig_index = int(payload.get("orig_index", 0))
    scale = payload.get("scale")
    if scale is not None:
        instr.scale = ScaleAnnotation(src=scale["src"],
                                      shamt=scale["shamt"])
    guard = payload.get("guard")
    if guard is not None:
        instr.guard = GuardAnnotation(
            reg=guard["reg"],
            execute_if_zero=guard["execute_if_zero"])
    return instr


def segment_to_dict(segment: TraceSegment) -> Dict[str, Any]:
    return {
        "start_pc": segment.start_pc,
        "block_count": segment.block_count,
        "slots": list(segment.slots),
        "build_promo": list(segment.build_promo),
        "instrs": [instr_to_dict(i) for i in segment.instrs],
        "branches": [{"index": b.index, "pc": b.pc,
                      "direction": b.direction,
                      "promoted": b.promoted}
                     for b in segment.branches],
    }


def segment_from_dict(payload: Dict[str, Any]) -> TraceSegment:
    return TraceSegment(
        start_pc=payload["start_pc"],
        instrs=[instr_from_dict(p) for p in payload["instrs"]],
        branches=[BranchInfo(b["index"], b["pc"], b["direction"],
                             b["promoted"])
                  for b in payload["branches"]],
        slots=list(payload["slots"]),
        block_count=payload.get("block_count", 1),
        build_promo=tuple(payload.get("build_promo", ())))


def write_pair(handle: IO[str], original: TraceSegment,
               optimized: TraceSegment,
               meta: Optional[Dict[str, Any]] = None) -> None:
    """Append one (original, optimized) pair to a JSONL archive."""
    payload: Dict[str, Any] = dict(meta or {})
    payload["original"] = segment_to_dict(original)
    payload["optimized"] = segment_to_dict(optimized)
    json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
    handle.write("\n")


def read_pairs(path: str) -> Iterator[
        Tuple[TraceSegment, TraceSegment, Dict[str, Any]]]:
    """Yield (original, optimized, meta) triples from an archive."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            original = segment_from_dict(payload.pop("original"))
            optimized = segment_from_dict(payload.pop("optimized"))
            yield original, optimized, payload


__all__: List[str] = ["instr_to_dict", "instr_from_dict",
                      "segment_to_dict", "segment_from_dict",
                      "write_pair", "read_pairs"]
