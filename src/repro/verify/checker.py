"""The segment verifier: lint rules + translation validation.

:class:`SegmentVerifier` is the one entry point the fill unit, the
``verify-traces`` CLI verb and ``tools/lint_segments.py`` all share.
``check()`` takes a pre-rewrite snapshot and the rewritten segment and
returns every violation found, most precise diagnosis first: the
structural lint rules run first, and the symbolic equivalence check
then skips divergences a structural violation already explains, so one
defect is reported by exactly one rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fillunit.opts.base import OptimizationConfig
from repro.tracecache.segment import TraceSegment
from repro.verify.equivalence import check_equivalence
from repro.verify.rules import (
    ERROR,
    RuleInput,
    Violation,
    run_rules,
)


def snapshot_segment(segment: TraceSegment) -> TraceSegment:
    """An independent pre-rewrite copy of *segment* (no shared mutable
    state with the live segment the passes will rewrite)."""
    return segment.clone()


@dataclass
class VerificationReport:
    """Accumulated verification outcomes across many segments."""

    segments_checked: int = 0
    segments_clean: int = 0
    #: ``{(pass or "(pipeline)", rule): count}`` for error severities.
    violation_counts: Dict[Tuple[str, str], int] = field(
        default_factory=dict)
    warning_counts: Dict[Tuple[str, str], int] = field(
        default_factory=dict)

    @property
    def violations(self) -> int:
        return sum(self.violation_counts.values())

    @property
    def warnings(self) -> int:
        return sum(self.warning_counts.values())

    def record(self, violations: List[Violation]) -> None:
        self.segments_checked += 1
        errors = [v for v in violations if v.severity == ERROR]
        if not errors:
            self.segments_clean += 1
        for violation in violations:
            key = (violation.pass_name or "(pipeline)", violation.rule)
            counts = (self.violation_counts
                      if violation.severity == ERROR
                      else self.warning_counts)
            counts[key] = counts.get(key, 0) + 1

    def render(self) -> str:
        lines = [f"segments checked: {self.segments_checked}   "
                 f"clean: {self.segments_clean}   "
                 f"violations: {self.violations}   "
                 f"warnings: {self.warnings}"]
        if self.violation_counts or self.warning_counts:
            lines.append(f"  {'pass':12s} {'rule':20s} "
                         f"{'severity':8s} {'count':>5s}")
            merged = [(key, count, ERROR)
                      for key, count in self.violation_counts.items()]
            merged += [(key, count, "warning")
                       for key, count in self.warning_counts.items()]
            for (pass_name, rule_id), count, severity in sorted(merged):
                lines.append(f"  {pass_name:12s} {rule_id:20s} "
                             f"{severity:8s} {count:5d}")
        return "\n".join(lines)


class SegmentVerifier:
    """Static translation validator for fill-unit rewrites."""

    def __init__(self, config: Optional[OptimizationConfig] = None
                 ) -> None:
        self.config = (config if config is not None
                       else OptimizationConfig())
        self.report = VerificationReport()

    def check(self, original: TraceSegment, optimized: TraceSegment,
              pass_name: Optional[str] = None,
              surface: Optional[frozenset] = None,
              record: bool = True) -> List[Violation]:
        """Verify one rewrite; returns every violation found.

        *pass_name*/*surface* attribute violations to a single pass
        (per-pass mode); without them the check covers the whole
        pipeline. With *record*, outcomes accumulate in
        :attr:`report`.
        """
        inp = RuleInput(original=original, optimized=optimized,
                        config=self.config, pass_name=pass_name,
                        surface=surface)
        violations = run_rules(inp)
        suppressed = {v.index for v in violations
                      if v.severity == ERROR and v.index is not None}
        order_reported = any(v.rule == "mem-branch-order"
                             for v in violations)
        semantic, _, _ = check_equivalence(
            original, optimized, suppressed=suppressed,
            order_already_reported=order_reported, pass_name=pass_name)
        violations += semantic
        if record:
            self.report.record(violations)
        return violations


__all__ = ["SegmentVerifier", "VerificationReport", "snapshot_segment"]
