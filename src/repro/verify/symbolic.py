"""Symbolic dataflow evaluation of trace segments.

Evaluates a segment *without executing anything*: every register starts
as an opaque live-in term, each instruction combines terms, and the
final machine state (register terms, an ordered store log, branch
condition terms) is returned for comparison against another segment.

Terms are canonical nested tuples, built so that the fill unit's
algebraic rewrites normalize to identical terms:

* immediate-add chains fold — ``('sum', base, k)`` with constants
  accumulated, so ``ADDI+ADDI`` equals the reassociated single ADDI;
* left shifts by a constant stay explicit — ``('shl', t, k)`` — so a
  scaled-add operand ``(src << shamt)`` equals the SLL+ADD pair it
  collapsed;
* commutative operators sort their operand terms, so scaled-add's
  operand swap and CSE's canonical source ordering are invisible;
* marked moves evaluate to their source's term, so move marking,
  bypass rewriting and CSE-to-move conversion are invisible.

A trace segment embeds one *path* of execution, so evaluation is
path-sensitive: the recorded direction of each embedded branch becomes
an assumption about its condition term, and guard annotations whose
condition is decided by an assumption fold to the active leg. This is
what lets the verifier prove a predication conversion equivalent to
the original fall-through path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction, move_source
from repro.isa.opcodes import Format, Op, OpClass
from repro.isa.registers import ZERO_REG
from repro.tracecache.segment import TraceSegment

#: A symbolic term: a canonical nested tuple. The first element is a
#: tag; the rest is tag-specific.
Term = Tuple[object, ...]

CONST_ZERO: Term = ("const", 0)

#: Operators whose operand order is architecturally irrelevant.
_COMMUTATIVE = frozenset({Op.ADD, Op.AND, Op.OR, Op.XOR, Op.NOR,
                          Op.MULT})

_LOAD_WIDTH = {Op.LW: "w", Op.LWX: "w", Op.LH: "h", Op.LHU: "hu",
               Op.LB: "b", Op.LBU: "bu"}
_STORE_WIDTH = {Op.SW: "w", Op.SWX: "w", Op.SH: "h", Op.SB: "b",
                Op.SBX: "b"}


def const(value: int) -> Term:
    return ("const", value)


def init(reg: int) -> Term:
    return ("init", reg)


def _term_key(term: Term) -> str:
    return repr(term)


def _split_sum(term: Term) -> Tuple[Optional[Term], int]:
    """Decompose *term* into (symbolic base, constant offset)."""
    if term[0] == "const":
        return None, int(term[1])                    # type: ignore[arg-type]
    if term[0] == "sum":
        return term[1], int(term[2])                 # type: ignore[arg-type]
    return term, 0


def add_const(term: Term, offset: int) -> Term:
    base, acc = _split_sum(term)
    total = acc + offset
    if base is None:
        return const(total)
    if total == 0:
        return base
    return ("sum", base, total)


def add_terms(a: Term, b: Term) -> Term:
    """Canonical symbolic addition (commutative, associative across
    one nesting level, constants folded)."""
    base_a, off_a = _split_sum(a)
    base_b, off_b = _split_sum(b)
    if base_a is None:
        return add_const(b, off_a)
    if base_b is None:
        return add_const(a, off_b)
    pair = tuple(sorted((base_a, base_b), key=_term_key))
    return add_const(("add", pair), off_a + off_b)


def shl(term: Term, amount: int) -> Term:
    if amount == 0:
        return term
    if term[0] == "const":
        return const(int(term[1]) << amount)    # type: ignore[arg-type]
    if term[0] == "shl":
        inner = int(term[2])                    # type: ignore[arg-type]
        return ("shl", term[1], inner + amount)
    return ("shl", term, amount)


def opnode(name: str, operands: Tuple[Term, ...],
           commutative: bool = False) -> Term:
    if commutative:
        operands = tuple(sorted(operands, key=_term_key))
    return ("op", name, operands)


def eq_condition(a: Term, b: Term) -> Term:
    pair = tuple(sorted((a, b), key=_term_key))
    return ("eq", pair)


def _sub(part: object) -> str:
    """Render a term element known (by tag) to itself be a term."""
    return render_term(part)                    # type: ignore[arg-type]


def _subs(parts: object) -> List[str]:
    """Render a term element known to be a tuple of terms."""
    return [_sub(p) for p in parts]             # type: ignore[union-attr]


def render_term(term: Term, depth: int = 0) -> str:
    """A compact human-readable rendering for violation messages."""
    tag = term[0]
    if tag == "const":
        return str(term[1])
    if tag == "init":
        return f"r{term[1]}@in"
    if tag == "sum":
        return f"({_sub(term[1])} + {term[2]})"
    if tag == "add":
        return "(" + " + ".join(_subs(term[1])) + ")"
    if tag == "shl":
        return f"({_sub(term[1])} << {term[2]})"
    if tag == "op":
        return f"{term[1]}({', '.join(_subs(term[2]))})"
    if tag == "load":
        return f"load.{term[1]}[{_sub(term[2])}]#{term[3]}"
    if tag == "eq":
        a, b = term[1]                          # type: ignore[misc]
        return f"({render_term(a)} == {render_term(b)})"
    if tag == "lez":
        return f"({_sub(term[1])} <= 0)"
    if tag == "ltz":
        return f"({_sub(term[1])} < 0)"
    if tag == "select":
        return (f"sel({_sub(term[1])}=={term[2]} ? "
                f"{_sub(term[3])} : {_sub(term[4])})")
    if tag == "ra":
        return f"ra@{term[1]:#x}"               # type: ignore[str-format]
    return repr(term)


@dataclass(frozen=True)
class StoreRecord:
    """One store in segment order."""

    width: str
    address: Term
    value: Term
    index: int              # instruction index that produced the store


@dataclass(frozen=True)
class BranchCondition:
    """One surviving conditional branch's condition."""

    pc: int
    index: int
    condition: Term
    #: True when the branch is taken exactly when the condition holds.
    taken_iff: bool


@dataclass
class SymbolicState:
    """The result of evaluating one segment."""

    #: final register terms; registers never written stay absent
    #: (their value is the live-in term by definition).
    regs: Dict[int, Term] = field(default_factory=dict)
    stores: List[StoreRecord] = field(default_factory=list)
    branches: List[BranchCondition] = field(default_factory=list)
    #: path assumptions: canonical condition term -> truth value on
    #: the embedded path.
    assumptions: Dict[Term, bool] = field(default_factory=dict)

    def read(self, reg: Optional[int]) -> Term:
        if reg is None or reg == ZERO_REG:
            return CONST_ZERO
        return self.regs.get(reg, init(reg))

    def final_value(self, reg: int) -> Term:
        return self.read(reg)


def branch_condition(instr: Instruction,
                     state: SymbolicState) -> Tuple[Term, bool]:
    """The canonical condition term for a conditional branch, plus
    whether taken means the condition is true."""
    if instr.op in (Op.BEQ, Op.BNE):
        cond = eq_condition(state.read(instr.rs), state.read(instr.rt))
        return cond, instr.op is Op.BEQ
    if instr.op in (Op.BLEZ, Op.BGTZ):
        return ("lez", state.read(instr.rs)), instr.op is Op.BLEZ
    # BLTZ / BGEZ
    return ("ltz", state.read(instr.rs)), instr.op is Op.BLTZ


def _operand_rs(instr: Instruction, state: SymbolicState) -> Term:
    """The rs-slot operand term, honouring a scale annotation."""
    if instr.scale is not None:
        return shl(state.read(instr.scale.src), instr.scale.shamt)
    return state.read(instr.rs)


def _alu_term(instr: Instruction, state: SymbolicState) -> Term:
    """The value computed by a (non-memory) value-producing
    instruction, annotations applied."""
    if instr.scale is None:
        # Normalize every detectable move idiom — marked or not — to
        # its source term: ``xor rd, zero, rt`` IS ``rt``
        # architecturally, and the moves pass exploits exactly these
        # identities when it rewrites consumers through its alias map.
        # (A bogus move *flag* on a non-idiom is lint's domain; the
        # fallthrough models the architected computation.)
        src = move_source(instr)
        if src is not None:
            return state.read(src)
    op = instr.op
    if op is Op.ADD:
        return add_terms(_operand_rs(instr, state), state.read(instr.rt))
    if op is Op.ADDI:
        return add_const(_operand_rs(instr, state), instr.imm or 0)
    if op is Op.SLL:
        return shl(state.read(instr.rs), instr.imm or 0)
    if op is Op.LUI:
        return const((instr.imm or 0) << 16)
    # Zero-identity folds, mirroring the move idioms: when an operand
    # *value* is zero (not necessarily the zero register — e.g. a
    # register the segment itself zeroed), ``x ^ 0``, ``x | 0`` and
    # ``x - 0`` are ``x``. The moves pass's alias rewriting relies on
    # these identities, so the evaluator must too.
    if op in (Op.XOR, Op.OR):
        a, b = _operand_rs(instr, state), state.read(instr.rt)
        if a == CONST_ZERO:
            return b
        if b == CONST_ZERO:
            return a
        return opnode(op.value, (a, b), commutative=True)
    if op is Op.SUB:
        a, b = _operand_rs(instr, state), state.read(instr.rt)
        if b == CONST_ZERO:
            return a
        return opnode(op.value, (a, b))
    fmt = instr.format
    if fmt is Format.R3:
        return opnode(op.value,
                      (_operand_rs(instr, state), state.read(instr.rt)),
                      commutative=op in _COMMUTATIVE)
    if fmt in (Format.R2I, Format.SHIFT):
        return opnode(op.value,
                      (_operand_rs(instr, state), const(instr.imm or 0)))
    return opnode(op.value, (_operand_rs(instr, state),))


def _address_term(instr: Instruction, state: SymbolicState) -> Term:
    """The effective-address term of a memory instruction."""
    base = _operand_rs(instr, state)
    fmt = instr.format
    if fmt in (Format.LOAD, Format.STORE):
        return add_const(base, instr.imm or 0)
    # Indexed forms: base register (rs slot, scalable) plus index.
    return add_terms(base, state.read(instr.rt))


def _write(state: SymbolicState, instr: Instruction, dest: int,
           computed: Term) -> None:
    """Commit *computed* to *dest*, folding a guard annotation through
    the path assumptions when its outcome is known."""
    guard = instr.guard
    if guard is None:
        state.regs[dest] = computed
        return
    cond = eq_condition(state.read(guard.reg), CONST_ZERO)
    known = state.assumptions.get(cond)
    old = state.read(dest)
    if known is not None:
        active = known == guard.execute_if_zero
        state.regs[dest] = computed if active else old
    else:
        state.regs[dest] = ("select", cond, guard.execute_if_zero,
                            computed, old)


def evaluate_segment(
        segment: TraceSegment,
        assumptions: Optional[Dict[Term, bool]] = None) -> SymbolicState:
    """Symbolically evaluate *segment* along its embedded path.

    *assumptions* seeds the path-assumption map (pass the original
    segment's assumptions when evaluating its optimized counterpart, so
    guard folding sees the branch directions predication consumed).
    """
    state = SymbolicState()
    if assumptions:
        state.assumptions.update(assumptions)
    directions = {b.index: b.direction for b in segment.branches}
    for idx, instr in enumerate(segment.instrs):
        op = instr.op
        if op is Op.NOP:
            continue
        opclass = instr.opclass
        if opclass is OpClass.BRANCH:
            cond, taken_iff = branch_condition(instr, state)
            state.branches.append(
                BranchCondition(instr.pc or 0, idx, cond, taken_iff))
            if idx in directions:
                truth = (directions[idx] if taken_iff
                         else not directions[idx])
                state.assumptions.setdefault(cond, truth)
            continue
        if opclass in (OpClass.JUMP, OpClass.INDIRECT, OpClass.SYSCALL):
            continue
        if opclass is OpClass.CALL:
            dest = instr.dest()
            if dest is not None:
                state.regs[dest] = ("ra", instr.pc or 0)
            continue
        if opclass is OpClass.LOAD:
            dest = instr.dest()
            if dest is None:
                continue
            value: Term = ("load", _LOAD_WIDTH[op],
                           _address_term(instr, state),
                           len(state.stores))
            _write(state, instr, dest, value)
            continue
        if opclass is OpClass.STORE:
            value_reg = instr.rd if instr.format is Format.STOREX \
                else instr.rt
            state.stores.append(StoreRecord(
                width=_STORE_WIDTH[op],
                address=_address_term(instr, state),
                value=state.read(value_reg),
                index=idx))
            continue
        dest = instr.dest()
        if dest is None:
            continue
        _write(state, instr, dest, _alu_term(instr, state))
    return state


def written_registers(segment: TraceSegment) -> Dict[int, int]:
    """Map each register written by *segment* to the index of its
    final (surviving) writer."""
    writers: Dict[int, int] = {}
    for idx, instr in enumerate(segment.instrs):
        dest = instr.dest()
        if dest is not None:
            writers[dest] = idx
    return writers


__all__ = ["Term", "SymbolicState", "StoreRecord", "BranchCondition",
           "evaluate_segment", "written_registers", "render_term",
           "add_terms", "add_const", "shl", "opnode", "const", "init",
           "eq_condition", "branch_condition", "CONST_ZERO"]
