"""Segment verifier: translation validation + invariant lint.

The fill unit rewrites retired instructions — move marking,
reassociation, scaled adds, placement, and the extension passes — and
the paper's whole premise is that those rewrites never change
architectural semantics. This package *proves* that, statically, for
every optimized :class:`~repro.tracecache.segment.TraceSegment`:

* :mod:`repro.verify.symbolic` — a symbolic dataflow evaluator whose
  term normalization makes sound rewrites literally equal;
* :mod:`repro.verify.equivalence` — translation validation of
  registers live-out, the store sequence and branch conditions;
* :mod:`repro.verify.rules` — a pluggable invariant-lint framework
  (rule registry, severities, fix-it hints) for the structural
  contracts each pass must keep;
* :mod:`repro.verify.checker` — :class:`SegmentVerifier`, the facade
  the fill unit's online mode, the ``verify-traces`` CLI verb and
  ``tools/lint_segments.py`` share;
* :mod:`repro.verify.archive` — JSONL serialization of segment pairs
  for offline lints.

See ``docs/verification.md``.
"""

from __future__ import annotations

from repro.verify.checker import (
    SegmentVerifier,
    VerificationReport,
    snapshot_segment,
)
from repro.verify.equivalence import check_equivalence
from repro.verify.rules import (
    ERROR,
    RULES,
    RuleInput,
    Violation,
    rule,
    run_rules,
)
from repro.verify.symbolic import evaluate_segment, render_term

__all__ = ["SegmentVerifier", "VerificationReport", "snapshot_segment",
           "check_equivalence", "Violation", "RuleInput", "RULES",
           "rule", "run_rules", "evaluate_segment", "render_term",
           "ERROR"]
