"""Two-pass assembler for the reproduction ISA.

The workloads standing in for SPECint95 are written in this assembly
dialect; the assembler turns source text into a loadable
:class:`repro.program.Program`.

Example::

    from repro.asm import assemble

    program = assemble('''
        .text
        main:
            li   $t0, 10
            move $t1, $zero
        loop:
            addi $t1, $t1, 3
            addi $t0, $t0, -1
            bgtz $t0, loop
            halt
    ''')
"""

from repro.asm.assembler import Assembler, assemble

__all__ = ["Assembler", "assemble"]
