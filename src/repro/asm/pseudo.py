"""Pseudo-instruction expansion.

Pseudo-instructions expand to the same idioms a MIPS-era compiler emits;
in particular ``move`` expands to ``addi rd, rs, 0`` — precisely the
idiom the paper's fill unit detects and marks for zero-cycle execution
in the rename logic.

Expansion happens before operand resolution: each expanded line is a
``(mnemonic, operands)`` pair that goes back through normal parsing.
"""

from __future__ import annotations

from repro.errors import AssemblerError
from repro.asm.tokenizer import parse_int, parse_symbol_expr
from repro.isa.semantics import to_s32

#: Assembler temporary used by compare-and-branch expansions.
AT = "$at"

PSEUDO_MNEMONICS = frozenset({
    "move", "li", "la", "b", "ret", "call", "subi", "neg", "not",
    "blt", "bge", "bgt", "ble", "bltu", "bgeu", "seq", "sne", "clear",
})


def _hi_lo(value: int):
    """Split a 32-bit value for a ``lui``/``addi`` pair.

    ``addi`` sign-extends, so the high half is adjusted to compensate:
    ``value == (hi << 16) + sext16(lo)``.
    """
    value = to_s32(value)
    lo = value & 0xFFFF
    lo_signed = lo - 0x10000 if lo & 0x8000 else lo
    hi = ((value - lo_signed) >> 16) & 0xFFFF
    hi_signed = hi - 0x10000 if hi & 0x8000 else hi
    return hi_signed, lo_signed


def expand(mnemonic: str, operands: list, line: int) -> list:
    """Expand one pseudo-instruction into real ``(mnemonic, operands)``
    pairs.

    Raises:
        AssemblerError: on operand-count mismatch.
    """

    def need(count: int) -> None:
        if len(operands) != count:
            raise AssemblerError(
                f"{mnemonic} expects {count} operands, got {len(operands)}",
                line)

    if mnemonic == "move":
        need(2)
        return [("addi", [operands[0], operands[1], "0"])]
    if mnemonic == "clear":
        need(1)
        return [("addi", [operands[0], "$zero", "0"])]
    if mnemonic == "li":
        need(2)
        value = parse_int(operands[1], line)
        if -32768 <= value <= 32767:
            return [("addi", [operands[0], "$zero", str(value)])]
        hi, lo = _hi_lo(value)
        out = [("lui", [operands[0], str(hi)])]
        if lo:
            out.append(("addi", [operands[0], operands[0], str(lo)]))
        return out
    if mnemonic == "la":
        need(2)
        if parse_symbol_expr(operands[1]) is None:
            # Plain integer address: same as li.
            return expand("li", operands, line)
        # Symbol addresses resolve in pass 2; always emit the full pair
        # so the instruction count is fixed in pass 1.
        return [
            ("lui", [operands[0], f"%hi({operands[1]})"]),
            ("addi", [operands[0], operands[0], f"%lo({operands[1]})"]),
        ]
    if mnemonic == "b":
        need(1)
        return [("j", operands)]
    if mnemonic == "ret":
        need(0)
        return [("jr", ["$ra"])]
    if mnemonic == "call":
        need(1)
        return [("jal", operands)]
    if mnemonic == "subi":
        need(3)
        value = parse_int(operands[2], line)
        return [("addi", [operands[0], operands[1], str(-value)])]
    if mnemonic == "neg":
        need(2)
        return [("sub", [operands[0], "$zero", operands[1]])]
    if mnemonic == "not":
        need(2)
        return [("nor", [operands[0], operands[1], "$zero"])]
    if mnemonic in ("blt", "bge", "bltu", "bgeu"):
        need(3)
        slt = "sltu" if mnemonic.endswith("u") else "slt"
        branch = "bne" if mnemonic.startswith("blt") else "beq"
        return [
            (slt, [AT, operands[0], operands[1]]),
            (branch, [AT, "$zero", operands[2]]),
        ]
    if mnemonic in ("bgt", "ble"):
        need(3)
        branch = "bne" if mnemonic == "bgt" else "beq"
        return [
            ("slt", [AT, operands[1], operands[0]]),
            (branch, [AT, "$zero", operands[2]]),
        ]
    if mnemonic in ("seq", "sne"):
        need(3)
        out = [("xor", [AT, operands[1], operands[2]])]
        if mnemonic == "seq":
            out.append(("sltiu", [operands[0], AT, "1"]))
        else:
            out.append(("sltu", [operands[0], "$zero", AT]))
        return out
    raise AssemblerError(f"unknown pseudo-instruction {mnemonic!r}", line)


__all__ = ["expand", "PSEUDO_MNEMONICS", "AT"]
