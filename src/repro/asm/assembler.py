"""The two-pass assembler.

Pass 1 expands pseudo-instructions, lays out the text and data sections
and collects the symbol table; pass 2 resolves symbol references
(branch displacements, jump targets, ``%hi``/``%lo`` halves, immediate
constants and data-word initializers).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AssemblerError
from repro.asm import pseudo
from repro.asm.tokenizer import (
    SourceLine,
    parse_int,
    parse_mem_operand,
    parse_symbol_expr,
    tokenize,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Op, op_by_mnemonic, op_info
from repro.isa.registers import reg_number
from repro.program.image import Program

_HI_RE = re.compile(r"^%hi\((.+)\)$")
_LO_RE = re.compile(r"^%lo\((.+)\)$")

DEFAULT_TEXT_BASE = 0x1000
DEFAULT_DATA_BASE = 0x100000


@dataclass
class _Fixup:
    """A deferred operand resolution."""

    index: int       # instruction index (or data byte offset for words)
    kind: str        # branch | jump | imm | hi | lo | dataword
    expr: str
    line: int


@dataclass
class Assembler:
    """Reusable assembler with configurable section bases."""

    text_base: int = DEFAULT_TEXT_BASE
    data_base: int = DEFAULT_DATA_BASE

    def assemble(self, source: str, name: str = "a.out") -> Program:
        """Assemble *source* into a :class:`Program`.

        Raises:
            AssemblerError: with a source line number on any syntax,
                range or resolution failure.
        """
        state = _Pass1State(self.text_base, self.data_base)
        for srcline in tokenize(source):
            state.process(srcline)
        _resolve(state)
        return Program(
            instructions=state.instrs,
            text_base=self.text_base,
            data=state.data,
            data_base=self.data_base,
            symbols=dict(state.symbols),
            name=name,
        )


def assemble(source: str, name: str = "a.out",
             text_base: int = DEFAULT_TEXT_BASE,
             data_base: int = DEFAULT_DATA_BASE) -> Program:
    """Convenience wrapper around :class:`Assembler`."""
    return Assembler(text_base, data_base).assemble(source, name)


@dataclass
class _Pass1State:
    text_base: int
    data_base: int
    instrs: list = field(default_factory=list)
    data: bytearray = field(default_factory=bytearray)
    symbols: dict = field(default_factory=dict)
    equates: dict = field(default_factory=dict)
    fixups: list = field(default_factory=list)
    section: str = "text"

    # ------------------------------------------------------------------

    def process(self, srcline: SourceLine) -> None:
        if srcline.label is not None:
            self._define_label(srcline.label, srcline.number)
        if srcline.mnemonic is None:
            return
        mnemonic = srcline.mnemonic
        if mnemonic.startswith("."):
            self._directive(mnemonic, srcline.operands, srcline.number)
        elif self.section != "text":
            raise AssemblerError(
                f"instruction {mnemonic!r} outside .text", srcline.number)
        elif mnemonic in pseudo.PSEUDO_MNEMONICS:
            # Substitute .equ constants before expansion so pseudo
            # forms like ``li $t0, SIZE`` see literal values.
            operands = [str(self.equates[op]) if op in self.equates else op
                        for op in srcline.operands]
            for real, ops in pseudo.expand(mnemonic, operands,
                                           srcline.number):
                self._instruction(real, ops, srcline.number)
        else:
            self._instruction(mnemonic, srcline.operands, srcline.number)

    def _define_label(self, label: str, line: int) -> None:
        if label in self.symbols or label in self.equates:
            raise AssemblerError(f"duplicate label {label!r}", line)
        if self.section == "text":
            self.symbols[label] = self.text_base + 4 * len(self.instrs)
        else:
            self.symbols[label] = self.data_base + len(self.data)

    # -- directives ----------------------------------------------------

    def _directive(self, name: str, operands: list, line: int) -> None:
        if name == ".text":
            self.section = "text"
        elif name == ".data":
            self.section = "data"
        elif name == ".equ":
            if len(operands) != 2:
                raise AssemblerError(".equ expects name, value", line)
            self.equates[operands[0]] = parse_int(operands[1], line)
        elif name == ".word":
            self._align(4)
            for operand in operands:
                self._emit_word(operand, line)
        elif name == ".half":
            self._align(2)
            for operand in operands:
                value = self._const(operand, line)
                self.data += (value & 0xFFFF).to_bytes(2, "little")
        elif name == ".byte":
            for operand in operands:
                value = self._const(operand, line)
                self.data += bytes([value & 0xFF])
        elif name == ".space":
            if len(operands) != 1:
                raise AssemblerError(".space expects a size", line)
            self.data += bytes(self._const(operands[0], line))
        elif name == ".align":
            if len(operands) != 1:
                raise AssemblerError(".align expects a size", line)
            self._align(self._const(operands[0], line))
        elif name == ".asciiz":
            raise AssemblerError(".asciiz is not supported; use .byte",
                                 line)
        else:
            raise AssemblerError(f"unknown directive {name!r}", line)

    def _align(self, boundary: int) -> None:
        if self.section != "data" or boundary <= 1:
            return
        while len(self.data) % boundary:
            self.data.append(0)

    def _emit_word(self, operand: str, line: int) -> None:
        sym = parse_symbol_expr(operand)
        if sym is not None and sym[0] not in self.equates:
            self.fixups.append(
                _Fixup(len(self.data), "dataword", operand, line))
            self.data += bytes(4)
        else:
            value = self._const(operand, line)
            self.data += (value & 0xFFFFFFFF).to_bytes(4, "little")

    def _const(self, text: str, line: int) -> int:
        if text in self.equates:
            return self.equates[text]
        return parse_int(text, line)

    # -- instructions ----------------------------------------------------

    def _instruction(self, mnemonic: str, operands: list, line: int) -> None:
        try:
            op = op_by_mnemonic(mnemonic)
        except KeyError:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line)
        fmt = op_info(op).format
        index = len(self.instrs)
        builder = _FORMAT_BUILDERS[fmt]
        instr = builder(self, op, operands, line, index)
        self.instrs.append(instr)

    def _imm_or_fixup(self, text: str, line: int, index: int,
                      kind: str) -> Optional[int]:
        """Resolve *text* now when possible, else record a fixup."""
        text = text.strip()
        hi = _HI_RE.match(text)
        lo = _LO_RE.match(text)
        if hi:
            self.fixups.append(_Fixup(index, "hi", hi.group(1), line))
            return None
        if lo:
            self.fixups.append(_Fixup(index, "lo", lo.group(1), line))
            return None
        if text in self.equates:
            value = self.equates[text]
        else:
            sym = parse_symbol_expr(text)
            if sym is not None:
                self.fixups.append(_Fixup(index, kind, text, line))
                return None
            value = parse_int(text, line)
        if kind == "imm" and not -32768 <= value <= 32767:
            raise AssemblerError(
                f"immediate {value} does not fit in 16 bits", line)
        return value


def _reg(text: str, line: int) -> int:
    try:
        return reg_number(text)
    except KeyError:
        raise AssemblerError(f"invalid register {text!r}", line)


def _need(operands: list, count: int, op: Op, line: int) -> None:
    if len(operands) != count:
        raise AssemblerError(
            f"{op.value} expects {count} operands, got {len(operands)}",
            line)


def _build_r3(state, op, operands, line, index):
    _need(operands, 3, op, line)
    return Instruction(op, rd=_reg(operands[0], line),
                       rs=_reg(operands[1], line),
                       rt=_reg(operands[2], line))


def _build_r2i(state, op, operands, line, index):
    _need(operands, 3, op, line)
    imm = state._imm_or_fixup(operands[2], line, index, "imm")
    return Instruction(op, rd=_reg(operands[0], line),
                       rs=_reg(operands[1], line), imm=imm)


def _build_shift(state, op, operands, line, index):
    _need(operands, 3, op, line)
    shamt = parse_int(operands[2], line)
    if not 0 <= shamt <= 31:
        raise AssemblerError(f"shift amount {shamt} out of range", line)
    return Instruction(op, rd=_reg(operands[0], line),
                       rs=_reg(operands[1], line), imm=shamt)


def _build_lui(state, op, operands, line, index):
    _need(operands, 2, op, line)
    imm = state._imm_or_fixup(operands[1], line, index, "imm")
    return Instruction(op, rd=_reg(operands[0], line), imm=imm)


def _build_load(state, op, operands, line, index):
    _need(operands, 2, op, line)
    disp, base = parse_mem_operand(operands[1], line)
    imm = state._imm_or_fixup(disp, line, index, "imm")
    return Instruction(op, rd=_reg(operands[0], line),
                       rs=_reg(base, line), imm=imm)


def _build_store(state, op, operands, line, index):
    _need(operands, 2, op, line)
    disp, base = parse_mem_operand(operands[1], line)
    imm = state._imm_or_fixup(disp, line, index, "imm")
    return Instruction(op, rt=_reg(operands[0], line),
                       rs=_reg(base, line), imm=imm)


def _build_loadx(state, op, operands, line, index):
    _need(operands, 3, op, line)
    return Instruction(op, rd=_reg(operands[0], line),
                       rs=_reg(operands[1], line),
                       rt=_reg(operands[2], line))


def _build_br2(state, op, operands, line, index):
    _need(operands, 3, op, line)
    imm = state._imm_or_fixup(operands[2], line, index, "branch")
    return Instruction(op, rs=_reg(operands[0], line),
                       rt=_reg(operands[1], line), imm=imm)


def _build_br1(state, op, operands, line, index):
    _need(operands, 2, op, line)
    imm = state._imm_or_fixup(operands[1], line, index, "branch")
    return Instruction(op, rs=_reg(operands[0], line), imm=imm)


def _build_j(state, op, operands, line, index):
    _need(operands, 1, op, line)
    imm = state._imm_or_fixup(operands[0], line, index, "jump")
    return Instruction(op, imm=imm)


def _build_jr(state, op, operands, line, index):
    _need(operands, 1, op, line)
    return Instruction(op, rs=_reg(operands[0], line))


def _build_jalr(state, op, operands, line, index):
    if len(operands) == 1:
        return Instruction(op, rd=31, rs=_reg(operands[0], line))
    _need(operands, 2, op, line)
    return Instruction(op, rd=_reg(operands[0], line),
                       rs=_reg(operands[1], line))


def _build_none(state, op, operands, line, index):
    _need(operands, 0, op, line)
    return Instruction(op)


_FORMAT_BUILDERS = {
    Format.R3: _build_r3,
    Format.R2I: _build_r2i,
    Format.SHIFT: _build_shift,
    Format.LUI: _build_lui,
    Format.LOAD: _build_load,
    Format.STORE: _build_store,
    Format.LOADX: _build_loadx,
    Format.STOREX: _build_loadx,
    Format.BR2: _build_br2,
    Format.BR1: _build_br1,
    Format.J: _build_j,
    Format.JR: _build_jr,
    Format.JALR: _build_jalr,
    Format.NONE: _build_none,
}


def _resolve(state: _Pass1State) -> None:
    """Pass 2: apply all recorded fixups."""
    for fixup in state.fixups:
        value = _symbol_value(state, fixup)
        if fixup.kind == "dataword":
            state.data[fixup.index:fixup.index + 4] = \
                (value & 0xFFFFFFFF).to_bytes(4, "little")
            continue
        instr = state.instrs[fixup.index]
        if fixup.kind == "branch":
            pc = state.text_base + 4 * fixup.index
            disp = value - pc
            if not -131072 <= disp <= 131068:
                raise AssemblerError(
                    f"branch target out of range ({disp} bytes)",
                    fixup.line)
            instr.imm = disp
        elif fixup.kind == "jump":
            instr.imm = value
        elif fixup.kind == "hi":
            hi, _ = pseudo._hi_lo(value)
            instr.imm = hi
        elif fixup.kind == "lo":
            _, lo = pseudo._hi_lo(value)
            instr.imm = lo
        else:  # plain immediate
            if not -32768 <= value <= 32767:
                raise AssemblerError(
                    f"immediate {value} does not fit in 16 bits",
                    fixup.line)
            instr.imm = value


def _symbol_value(state: _Pass1State, fixup: _Fixup) -> int:
    parsed = parse_symbol_expr(fixup.expr)
    if parsed is None:
        return parse_int(fixup.expr, fixup.line)
    name, sign, offset_text = parsed
    if name in state.symbols:
        base = state.symbols[name]
    elif name in state.equates:
        base = state.equates[name]
    else:
        raise AssemblerError(f"undefined symbol {name!r}", fixup.line)
    offset = (state.equates.get(offset_text)
              if offset_text in state.equates
              else parse_int(offset_text, fixup.line))
    return base + sign * offset


__all__ = ["Assembler", "assemble"]
