"""Line tokenizer for the assembler.

The grammar is line-oriented: ``[label:] [mnemonic [operands]]`` with
``#`` or ``;`` comments. Operands are registers (``$t0``), integers
(decimal, hex, negative, character literals), symbols, and symbol±offset
expressions; memory operands use the ``imm(reg)`` shape.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import AssemblerError

_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][\w.$]*)\s*:")
_COMMENT_RE = re.compile(r"[#;].*$")
_MEM_RE = re.compile(r"^(?P<disp>[^()]*)\((?P<base>[^()]+)\)$")
_SYM_OFF_RE = re.compile(
    r"^(?P<sym>[A-Za-z_.][\w.]*)\s*(?P<sign>[+-])\s*(?P<off>\w+)$")
_INT_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")


@dataclass
class SourceLine:
    """One logical source line after comment/label stripping."""

    number: int               # 1-based line number in the original source
    label: Optional[str]      # label defined on this line, if any
    mnemonic: Optional[str]   # directive (with leading '.') or opcode
    operands: list            # raw operand strings, comma-split


def split_operands(text: str, line: int) -> list:
    """Split an operand string on top-level commas.

    Parentheses (memory operands) never nest, so a flat scan suffices;
    quoting is supported for character literals like ``','``.
    """
    parts = []
    depth = 0
    current = []
    in_quote = False
    for char in text:
        if in_quote:
            current.append(char)
            if char == "'":
                in_quote = False
            continue
        if char == "'":
            in_quote = True
            current.append(char)
        elif char == "(":
            depth += 1
            current.append(char)
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise AssemblerError("unbalanced ')'", line)
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise AssemblerError("unbalanced '('", line)
    if in_quote:
        raise AssemblerError("unterminated character literal", line)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    if any(not part for part in parts):
        raise AssemblerError("empty operand", line)
    return parts


def tokenize(source: str) -> list:
    """Tokenize assembly *source* into :class:`SourceLine` records.

    Lines that are blank after comment removal produce records only when
    they carry a label (a label may stand alone on its own line).
    """
    lines = []
    for number, raw in enumerate(source.splitlines(), start=1):
        text = _COMMENT_RE.sub("", raw).strip()
        label = None
        match = _LABEL_RE.match(text)
        if match:
            label = match.group(1)
            text = text[match.end():].strip()
        if not text and label is None:
            continue
        mnemonic = None
        operands: list = []
        if text:
            head, _, rest = text.partition(" ")
            mnemonic = head.strip().lower()
            if rest.strip():
                operands = split_operands(rest.strip(), number)
        lines.append(SourceLine(number, label, mnemonic, operands))
    return lines


def parse_int(text: str, line: int) -> int:
    """Parse an integer literal (decimal, hex, or character)."""
    text = text.strip()
    if len(text) == 3 and text[0] == "'" and text[2] == "'":
        return ord(text[1])
    if _INT_RE.match(text):
        return int(text, 0)
    raise AssemblerError(f"invalid integer literal {text!r}", line)


def parse_mem_operand(text: str, line: int):
    """Parse an ``disp(base)`` memory operand into (disp_text, base_text).

    The displacement may be empty (meaning zero), an integer, or a
    symbol expression; resolution happens in the assembler's second pass.
    """
    match = _MEM_RE.match(text.strip())
    if not match:
        raise AssemblerError(f"invalid memory operand {text!r}", line)
    disp = match.group("disp").strip() or "0"
    return disp, match.group("base").strip()


def parse_symbol_expr(text: str):
    """Split ``sym``, ``sym+off`` or ``sym-off`` into (symbol, offset_text).

    Returns ``None`` if *text* is not symbol-shaped (e.g. pure integer).
    """
    text = text.strip()
    match = _SYM_OFF_RE.match(text)
    if match:
        sign = -1 if match.group("sign") == "-" else 1
        return match.group("sym"), sign, match.group("off")
    if re.match(r"^[A-Za-z_.][\w.]*$", text):
        return text, 1, "0"
    return None


__all__ = [
    "SourceLine",
    "tokenize",
    "split_operands",
    "parse_int",
    "parse_mem_operand",
    "parse_symbol_expr",
]
