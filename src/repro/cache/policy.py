"""Pluggable replacement policies for the set-associative structures.

Both :class:`~repro.cache.setassoc.SetAssocCache` and the trace cache
keep their ways in insertion-ordered dicts (move-to-end on hit), which
is the recency spine every policy here can lean on.  A policy owns two
things on top of that spine:

* **victim selection** — which resident key leaves when a set is full;
* **metadata** — any per-set state the selection consults (RRPV
  counters, reuse history).  That state is *timing state*: it decides
  future evictions, so it must participate in the replay memo key
  exactly like the LRU recency order does today.  Every policy
  therefore exposes :meth:`ReplacementPolicy.state_digest` /
  :meth:`ReplacementPolicy.restore`, which the containers splice into
  their ``set_digest`` / ``restore_set`` replay surface.

Three policies are provided:

* :class:`TrueLRU` — the seed behaviour, bit for bit: the victim is
  the insertion-ordered dict's oldest entry and there is no metadata.
* :class:`SRRIPPolicy` — static re-reference interval prediction
  (Jaleel et al.): 2-bit RRPVs, insert "long", promote to "immediate"
  on hit, evict the first "distant" entry (aging until one exists).
* :class:`TRRIPPolicy` — temperature-based RRIP in the spirit of "A
  TRRIP Down Memory Lane": the *insertion* RRPV comes from a
  temperature prediction.  Dynamic reuse history (how many hits the
  key's previous generation saw before eviction — the ``tc.reuse`` /
  ``tc.evict`` feedback loop) takes precedence; static hints joining
  natural-loop membership with instruction mix (see
  :mod:`repro.cache.hints`) cover keys never seen before; unknown
  keys insert "long".

The classes are deliberately flat — no shared mutable base state —
because the selfcheck extractor models each class from its own body
(`super()` is not followed); every method named in a
:class:`~repro.analysis.selfcheck.model.ComponentSpec` is defined
directly on the class it describes.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Mapping, Tuple

from repro.errors import ConfigError

#: A resident key: a line tag (``int``) for :class:`SetAssocCache`,
#: ``(start_pc, path_key)`` for the trace cache.
Key = Hashable

#: 2-bit re-reference prediction values (SRRIP-HP configuration).
RRPV_MAX = 3        # "distant future" — next victim
RRPV_LONG = 2       # "long" insertion — scan resistant
RRPV_IMMEDIATE = 0  # "near-immediate" — just reused

#: Temperature classes for TRRIP-style insertion prediction.
TEMP_COLD = 0
TEMP_WARM = 1
TEMP_HOT = 2

#: Per-set bound on the TRRIP eviction-history table (FIFO).
HISTORY_PER_SET = 64


class ReplacementPolicy:
    """Victim selection + replay-digested metadata for one container.

    The container calls the hooks at the obvious points (``on_insert``
    after installing a key, ``on_hit`` on a reuse, ``victim`` to pick
    the key to drop, ``on_evict`` after dropping it, ``on_flush`` when
    the whole structure empties).  ``state_digest(index)`` must return
    a hashable snapshot of *all* metadata for set ``index`` such that
    equal digests imply identical future behaviour, and
    ``restore(index, digest)`` must reinstate exactly that snapshot —
    the pair is the policy's replay-soundness contract.
    """

    name = "abstract"

    def on_insert(self, index: int, key: Key) -> None:
        """A new generation of *key* was installed in set *index*."""

    def on_hit(self, index: int, key: Key) -> None:
        """*key* was reused in set *index*."""

    def victim(self, index: int, entries: Mapping[Key, object]) -> Key:
        """Choose the key to evict from the non-empty set *index*."""
        raise NotImplementedError

    def on_evict(self, index: int, key: Key) -> None:
        """*key* left set *index* (capacity eviction or invalidate)."""

    def on_flush(self) -> None:
        """The container dropped every resident key."""

    def state_digest(self, index: int) -> tuple:
        """Hashable snapshot of the metadata for set *index*."""
        return ()

    def restore(self, index: int, digest: tuple) -> None:
        """Reinstate a :meth:`state_digest` snapshot for set *index*."""


class TrueLRU(ReplacementPolicy):
    """The seed policy: evict the least recently used way.

    Recency lives entirely in the container's insertion-ordered dict,
    so this policy is stateless — ``state_digest`` is empty because
    ``tuple(entries)`` in the container's own digest already *is* the
    LRU order.
    """

    name = "lru"

    def __init__(self, num_sets: int) -> None:
        self.num_sets = num_sets

    def victim(self, index: int, entries: Mapping[Key, object]) -> Key:
        return next(iter(entries))

    def state_digest(self, index: int) -> tuple:
        return ()

    def restore(self, index: int, digest: tuple) -> None:
        return None


class SRRIPPolicy(ReplacementPolicy):
    """Static re-reference interval prediction (2-bit RRPV per way).

    Insertions predict a "long" re-reference interval
    (:data:`RRPV_LONG`), hits promote to "near-immediate", and the
    victim is the first resident key (in recency order, oldest first)
    whose RRPV has reached "distant" — aging every way until one has.
    """

    name = "srrip"

    def __init__(self, num_sets: int) -> None:
        self.num_sets = num_sets
        #: per-set RRPV: key -> 0..RRPV_MAX; every resident key of the
        #: owning container has an entry.
        self._meta: List[Dict[Key, int]] = [
            dict() for _ in range(num_sets)]

    def insertion_rrpv(self, index: int, key: Key) -> int:
        return RRPV_LONG

    def on_insert(self, index: int, key: Key) -> None:
        self._meta[index][key] = self.insertion_rrpv(index, key)

    def on_hit(self, index: int, key: Key) -> None:
        self._meta[index][key] = RRPV_IMMEDIATE

    def victim(self, index: int, entries: Mapping[Key, object]) -> Key:
        meta = self._meta[index]
        while True:
            for key in entries:
                if meta.get(key, RRPV_MAX) >= RRPV_MAX:
                    return key
            for key in entries:
                meta[key] = min(meta.get(key, RRPV_MAX) + 1, RRPV_MAX)

    def on_evict(self, index: int, key: Key) -> None:
        self._meta[index].pop(key, None)

    def on_flush(self) -> None:
        for meta in self._meta:
            meta.clear()

    def state_digest(self, index: int) -> tuple:
        return tuple(sorted(self._meta[index].items()))

    def restore(self, index: int, digest: tuple) -> None:
        meta = self._meta[index]
        meta.clear()
        meta.update(digest)


class TRRIPPolicy(ReplacementPolicy):
    """Temperature-directed RRIP for reuse-skewed reference streams.

    The RRPV mechanics match :class:`SRRIPPolicy` (hit promotes to
    "near-immediate", victim is the first "distant" way with aging),
    but the *insertion* RRPV is predicted per key:

    ===========  ==========================  =================
    temperature  meaning                     insertion RRPV
    ===========  ==========================  =================
    hot          reused >= 2x last life      0 (immediate)
    warm         reused once / loop body     RRPV_LONG
    cold         dead on arrival last life   RRPV_MAX
    ===========  ==========================  =================

    Dynamic evidence wins: a bounded per-set history of
    hits-before-eviction from each key's previous generation.  Keys
    with no history fall back to static temperature hints (pc ->
    temperature, from natural-loop membership and instruction mix —
    installed by the engine via :meth:`set_static_hints`), and finally
    to "warm".
    """

    name = "trrip"

    def __init__(self, num_sets: int) -> None:
        self.num_sets = num_sets
        #: per-set RRPV: key -> 0..RRPV_MAX (resident keys only).
        self._meta: List[Dict[Key, int]] = [
            dict() for _ in range(num_sets)]
        #: per-set hits seen by each resident key's current generation.
        self._reuse: List[Dict[Key, int]] = [
            dict() for _ in range(num_sets)]
        #: per-set hits-before-eviction of each key's *previous*
        #: generation; FIFO-bounded to HISTORY_PER_SET entries, so the
        #: dict's insertion order is itself timing state (it decides
        #: which history entry falls off next) and the digest keeps it.
        self._history: List[Dict[Key, int]] = [
            dict() for _ in range(num_sets)]
        #: pc -> TEMP_* from static analysis; config-role (installed
        #: once per program before the run, never on the step path).
        self._hints: Dict[int, int] = {}

    # -- temperature prediction ----------------------------------------

    def set_static_hints(self, hints: Mapping[int, int]) -> None:
        """Install pc -> temperature hints (see repro.cache.hints)."""
        self._hints = dict(hints)

    def temperature(self, index: int, key: Key) -> int:
        """Predicted temperature for inserting *key* into *index*."""
        past = self._history[index].get(key)
        if past is not None:
            if past >= 2:
                return TEMP_HOT
            if past == 1:
                return TEMP_WARM
            return TEMP_COLD
        if isinstance(key, tuple):
            hint = self._hints.get(key[0])
            if hint is not None:
                return hint
        return TEMP_WARM

    def insertion_rrpv(self, index: int, key: Key) -> int:
        temp = self.temperature(index, key)
        if temp == TEMP_HOT:
            return RRPV_IMMEDIATE
        if temp == TEMP_COLD:
            return RRPV_MAX
        return RRPV_LONG

    # -- container hooks -----------------------------------------------

    def on_insert(self, index: int, key: Key) -> None:
        self._meta[index][key] = self.insertion_rrpv(index, key)
        self._reuse[index][key] = 0

    def on_hit(self, index: int, key: Key) -> None:
        self._meta[index][key] = RRPV_IMMEDIATE
        reuse = self._reuse[index]
        # Saturate at the "hot" threshold: the temperature classes
        # only distinguish 0 / 1 / >= 2 hits, and a bounded counter
        # keeps the replay digest space finite (an ever-growing count
        # would make every set digest unique and starve the memo).
        count = reuse.get(key, 0)
        if count < 2:
            reuse[key] = count + 1

    def victim(self, index: int, entries: Mapping[Key, object]) -> Key:
        meta = self._meta[index]
        while True:
            for key in entries:
                if meta.get(key, RRPV_MAX) >= RRPV_MAX:
                    return key
            for key in entries:
                meta[key] = min(meta.get(key, RRPV_MAX) + 1, RRPV_MAX)

    def on_evict(self, index: int, key: Key) -> None:
        self._meta[index].pop(key, None)
        history = self._history[index]
        history.pop(key, None)
        history[key] = self._reuse[index].pop(key, 0)
        if len(history) > HISTORY_PER_SET:
            history.pop(next(iter(history)))

    def on_flush(self) -> None:
        for index in range(self.num_sets):
            self._meta[index].clear()
            self._reuse[index].clear()
            self._history[index].clear()

    # -- replay surface ------------------------------------------------

    def state_digest(self, index: int) -> tuple:
        # _history is digested in dict order, not sorted: its FIFO age
        # order decides which entry the bound drops next, so the order
        # is part of the state the digest must pin.
        return (tuple(sorted(self._meta[index].items())),
                tuple(sorted(self._reuse[index].items())),
                tuple(self._history[index].items()))

    def restore(self, index: int, digest: tuple) -> None:
        meta, reuse, history = digest
        self._meta[index].clear()
        self._meta[index].update(meta)
        self._reuse[index].clear()
        self._reuse[index].update(reuse)
        self._history[index].clear()
        self._history[index].update(history)


_POLICIES: Dict[str, Callable[[int], ReplacementPolicy]] = {
    TrueLRU.name: TrueLRU,
    SRRIPPolicy.name: SRRIPPolicy,
    TRRIPPolicy.name: TRRIPPolicy,
}

#: Valid values for the ``policy`` config knobs, registration order.
POLICY_NAMES: Tuple[str, ...] = tuple(_POLICIES)


def make_policy(name: str, num_sets: int) -> ReplacementPolicy:
    """Instantiate the replacement policy registered as *name*."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown replacement policy {name!r}; "
            f"expected one of {', '.join(POLICY_NAMES)}") from None
    return factory(num_sets)


__all__ = [
    "HISTORY_PER_SET", "Key", "POLICY_NAMES", "RRPV_IMMEDIATE",
    "RRPV_LONG", "RRPV_MAX", "ReplacementPolicy", "SRRIPPolicy",
    "TEMP_COLD", "TEMP_HOT", "TEMP_WARM", "TRRIPPolicy", "TrueLRU",
    "make_policy",
]
