"""The paper's memory hierarchy.

* 4KB 4-way supporting instruction cache,
* 64KB 4-way L1 data cache (one-cycle load latency after AGEN),
* 1MB unified L2 with a 6-cycle latency on L1 misses,
* 50 additional cycles for L2 misses serviced from memory.

Latency accounting returns the number of cycles *beyond* the L1 access
that an access costs; the pipeline model adds its own L1/AGEN cycles.
Bus contention is not modelled (the paper's 50-cycle figure is also the
uncontended number).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cache.policy import POLICY_NAMES
from repro.cache.setassoc import SetAssocCache
from repro.errors import ConfigError


@dataclass
class HierarchyConfig:
    """Sizes, latencies and replacement policy for the hierarchy."""

    l1i_size: int = 4 * 1024
    l1i_assoc: int = 4
    l1i_line: int = 32
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 4
    l1d_line: int = 32
    l2_size: int = 1024 * 1024
    l2_assoc: int = 8
    l2_line: int = 64
    l2_latency: int = 6
    memory_latency: int = 50
    #: replacement policy for all three caches (see repro.cache.policy).
    policy: str = "lru"

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ConfigError(
                f"unknown hierarchy replacement policy {self.policy!r}; "
                f"expected one of {', '.join(POLICY_NAMES)}")


class MemoryHierarchy:
    """L1I + L1D backed by a unified L2 backed by memory."""

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        self.config = config if config is not None else HierarchyConfig()
        cfg = self.config
        self.l1i = SetAssocCache(cfg.l1i_size, cfg.l1i_assoc, cfg.l1i_line,
                                 "L1I", cfg.policy)
        self.l1d = SetAssocCache(cfg.l1d_size, cfg.l1d_assoc, cfg.l1d_line,
                                 "L1D", cfg.policy)
        self.l2 = SetAssocCache(cfg.l2_size, cfg.l2_assoc, cfg.l2_line,
                                "L2", cfg.policy)

    # ------------------------------------------------------------------

    def _miss_penalty(self, addr: int) -> int:
        """Penalty for an L1 miss: L2 hit or full memory trip."""
        if self.l2.access(addr):
            return self.config.l2_latency
        return self.config.l2_latency + self.config.memory_latency

    def fetch_instr(self, addr: int) -> int:
        """Instruction fetch at *addr*: extra cycles beyond the L1I access
        (0 on an L1I hit)."""
        if self.l1i.access(addr):
            return 0
        return self._miss_penalty(addr)

    def load(self, addr: int) -> int:
        """Data load at *addr*: extra cycles beyond the 1-cycle L1D
        access (0 on an L1D hit)."""
        if self.l1d.access(addr):
            return 0
        return self._miss_penalty(addr)

    def store(self, addr: int) -> None:
        """Data store at *addr*.

        Stores retire through a store buffer and do not stall the
        pipeline in this model; the reference still updates L1D/L2
        residency (write-allocate) so later loads see the lines.
        """
        if not self.l1d.access(addr):
            self.l2.access(addr)

    def flush(self) -> None:
        for cache in (self.l1i, self.l1d, self.l2):
            cache.flush()

    def stats_summary(self) -> Dict[str, Tuple[int, int]]:
        return {
            "l1i": (self.l1i.stats.hits, self.l1i.stats.misses),
            "l1d": (self.l1d.stats.hits, self.l1d.stats.misses),
            "l2": (self.l2.stats.hits, self.l2.stats.misses),
        }


__all__ = ["MemoryHierarchy", "HierarchyConfig"]
