"""Cache models: generic set-associative cache and the paper's hierarchy."""

from repro.cache.setassoc import CacheStats, SetAssocCache
from repro.cache.hierarchy import MemoryHierarchy

__all__ = ["SetAssocCache", "CacheStats", "MemoryHierarchy"]
