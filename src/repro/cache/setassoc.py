"""Generic set-associative cache with true-LRU replacement.

This is a *presence* model: it tracks which lines are resident (for hit
and miss accounting and latency), not their contents — data values come
from the functional memory. That is exactly what a trace-driven timing
simulator needs from its caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigError


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass
class CacheStats:
    """Hit and miss counters."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0


class SetAssocCache:
    """A set-associative cache keyed by byte address.

    LRU is maintained per set via insertion-ordered dicts (move-to-end
    on hit), which is both exact and fast in CPython.
    """

    def __init__(self, size_bytes: int, assoc: int, line_size: int,
                 name: str = "cache") -> None:
        if not (_is_pow2(line_size) and _is_pow2(assoc)):
            raise ConfigError(f"{name}: line size and associativity must "
                              f"be powers of two")
        if size_bytes % (assoc * line_size):
            raise ConfigError(f"{name}: size {size_bytes} not divisible by "
                              f"assoc*line ({assoc}x{line_size})")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size_bytes // (assoc * line_size)
        if not _is_pow2(self.num_sets):
            raise ConfigError(f"{name}: set count {self.num_sets} "
                              f"must be a power of two")
        self._line_shift = line_size.bit_length() - 1
        self._set_mask = self.num_sets - 1
        # set index -> {tag: None}, insertion order == LRU order.
        self._sets: List[Dict[int, None]] = [
            dict() for _ in range(self.num_sets)]
        #: hit/access counters; delta-captured per instance by
        #: the replay controller's attribute cells (the L1I runs
        #: live on both paths and is deliberately uncaptured)
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    def _locate(self, addr: int) -> Tuple[Dict[int, None], int]:
        line = addr >> self._line_shift
        return self._sets[line & self._set_mask], line

    def probe(self, addr: int) -> bool:
        """Non-allocating lookup; does not update LRU or stats."""
        entries, tag = self._locate(addr)
        return tag in entries

    def access(self, addr: int) -> bool:
        """Reference *addr*: returns hit/miss, allocating on miss.

        On a miss the line is filled (the latency of doing so is the
        caller's concern) and the LRU victim in the set is evicted.
        """
        entries, tag = self._locate(addr)
        self.stats.accesses += 1
        if tag in entries:
            self.stats.hits += 1
            entries[tag] = entries.pop(tag)  # move to MRU position
            return True
        if len(entries) >= self.assoc:
            entries.pop(next(iter(entries)))  # evict LRU
        entries[tag] = None
        return False

    def fill(self, addr: int) -> None:
        """Install the line containing *addr* without counting an access."""
        entries, tag = self._locate(addr)
        if tag in entries:
            entries[tag] = entries.pop(tag)
            return
        if len(entries) >= self.assoc:
            entries.pop(next(iter(entries)))
        entries[tag] = None

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing *addr*; returns whether it was present."""
        entries, tag = self._locate(addr)
        return entries.pop(tag, "absent") != "absent"

    def flush(self) -> None:
        """Empty the cache (stats retained)."""
        for entries in self._sets:
            entries.clear()

    def resident_lines(self) -> int:
        return sum(len(entries) for entries in self._sets)

    # -- replay context surface -----------------------------------------

    def set_index(self, addr: int) -> int:
        """Index of the set that *addr* maps to."""
        return (addr >> self._line_shift) & self._set_mask

    def set_digest(self, index: int) -> Tuple[int, ...]:
        """LRU-ordered resident tags of set *index* (oldest first).

        Tags are absolute (address-derived), not cycle-relative: cache
        residency transitions depend only on the reference sequence,
        never on cycle numbers, so the digest is position-independent
        and doubles as the post-visit snapshot for
        :meth:`restore_set`."""
        return tuple(self._sets[index])

    def restore_set(self, index: int, tags: Iterable[int]) -> None:
        """Install a :meth:`set_digest` snapshot into set *index*."""
        entries = self._sets[index]
        entries.clear()
        for tag in tags:
            entries[tag] = None

    def __repr__(self) -> str:
        return (f"SetAssocCache({self.name}: {self.size_bytes}B, "
                f"{self.assoc}-way, {self.line_size}B lines)")


__all__ = ["SetAssocCache", "CacheStats"]
