"""Generic set-associative cache with pluggable replacement.

This is a *presence* model: it tracks which lines are resident (for hit
and miss accounting and latency), not their contents — data values come
from the functional memory. That is exactly what a trace-driven timing
simulator needs from its caches.

Replacement is delegated to a :class:`~repro.cache.policy.
ReplacementPolicy`; the default ``"lru"`` policy reproduces the seed
behaviour bit for bit (victim = oldest entry of the insertion-ordered
set dict).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cache.policy import ReplacementPolicy, make_policy
from repro.errors import ConfigError


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass
class CacheStats:
    """Hit, miss and eviction counters."""

    accesses: int = 0
    hits: int = 0
    evictions: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.evictions = 0


class SetAssocCache:
    """A set-associative cache keyed by byte address.

    Recency is maintained per set via insertion-ordered dicts
    (move-to-end on hit), which is both exact and fast in CPython; the
    replacement policy picks victims on top of that order and may keep
    metadata of its own (digested alongside the tags for replay).
    """

    def __init__(self, size_bytes: int, assoc: int, line_size: int,
                 name: str = "cache", policy: str = "lru") -> None:
        if not (_is_pow2(line_size) and _is_pow2(assoc)):
            raise ConfigError(f"{name}: line size and associativity must "
                              f"be powers of two")
        if size_bytes % (assoc * line_size):
            raise ConfigError(f"{name}: size {size_bytes} not divisible by "
                              f"assoc*line ({assoc}x{line_size})")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size_bytes // (assoc * line_size)
        if not _is_pow2(self.num_sets):
            raise ConfigError(f"{name}: set count {self.num_sets} "
                              f"must be a power of two")
        self._line_shift = line_size.bit_length() - 1
        self._set_mask = self.num_sets - 1
        # set index -> {tag: None}, insertion order == recency order.
        self._sets: List[Dict[int, None]] = [
            dict() for _ in range(self.num_sets)]
        #: victim selection + replay-digested metadata; its per-set
        #: state rides in set_digest/restore_set next to the tags.
        self.policy: ReplacementPolicy = make_policy(policy, self.num_sets)
        #: hit/access counters; delta-captured per instance by
        #: the replay controller's attribute cells (the L1I runs
        #: live on both paths and is deliberately uncaptured)
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    def _locate(self, addr: int) -> Tuple[Dict[int, None], int, int]:
        line = addr >> self._line_shift
        index = line & self._set_mask
        return self._sets[index], line, index

    def probe(self, addr: int) -> bool:
        """Non-allocating lookup; does not update recency or stats."""
        entries, tag, _ = self._locate(addr)
        return tag in entries

    def access(self, addr: int) -> bool:
        """Reference *addr*: returns hit/miss, allocating on miss.

        On a miss the line is filled (the latency of doing so is the
        caller's concern) and the policy's victim in the set is
        evicted.
        """
        entries, tag, index = self._locate(addr)
        self.stats.accesses += 1
        if tag in entries:
            self.stats.hits += 1
            entries[tag] = entries.pop(tag)  # move to MRU position
            self.policy.on_hit(index, tag)
            return True
        if len(entries) >= self.assoc:
            victim = self.policy.victim(index, entries)
            entries.pop(victim)
            self.policy.on_evict(index, victim)
            self.stats.evictions += 1
        entries[tag] = None
        self.policy.on_insert(index, tag)
        return False

    def fill(self, addr: int) -> None:
        """Install the line containing *addr* without counting an access."""
        entries, tag, index = self._locate(addr)
        if tag in entries:
            entries[tag] = entries.pop(tag)
            self.policy.on_hit(index, tag)
            return
        if len(entries) >= self.assoc:
            victim = self.policy.victim(index, entries)
            entries.pop(victim)
            self.policy.on_evict(index, victim)
            self.stats.evictions += 1
        entries[tag] = None
        self.policy.on_insert(index, tag)

    def invalidate(self, addr: int) -> bool:
        """Drop the line containing *addr*; returns whether it was present."""
        entries, tag, index = self._locate(addr)
        if tag not in entries:
            return False
        entries.pop(tag)
        self.policy.on_evict(index, tag)
        return True

    def flush(self) -> None:
        """Empty the cache (stats retained)."""
        for entries in self._sets:
            entries.clear()
        self.policy.on_flush()

    def resident_lines(self) -> int:
        return sum(len(entries) for entries in self._sets)

    # -- replay context surface -----------------------------------------

    def set_index(self, addr: int) -> int:
        """Index of the set that *addr* maps to."""
        return (addr >> self._line_shift) & self._set_mask

    def set_digest(self, index: int) -> Tuple[Tuple[int, ...], tuple]:
        """Recency-ordered resident tags of set *index* (oldest first)
        plus the replacement policy's metadata snapshot for the set.

        Tags are absolute (address-derived), not cycle-relative: cache
        residency transitions depend only on the reference sequence,
        never on cycle numbers, so the digest is position-independent
        and doubles as the post-visit snapshot for
        :meth:`restore_set`."""
        return tuple(self._sets[index]), self.policy.state_digest(index)

    def restore_set(self, index: int,
                    digest: Tuple[Tuple[int, ...], tuple]) -> None:
        """Install a :meth:`set_digest` snapshot into set *index*."""
        tags, policy_state = digest
        entries = self._sets[index]
        entries.clear()
        for tag in tags:
            entries[tag] = None
        self.policy.restore(index, policy_state)

    def __repr__(self) -> str:
        return (f"SetAssocCache({self.name}: {self.size_bytes}B, "
                f"{self.assoc}-way, {self.line_size}B lines, "
                f"{self.policy.name})")


__all__ = ["SetAssocCache", "CacheStats"]
