"""Static temperature hints for TRRIP-style replacement.

"Decanting the Contribution of Instruction Types and Loop Structures
in the Reuse of Traces" characterizes trace reuse along two static
axes: loop structure (traces inside loops get reused; straight-line
glue does not) and instruction mix (compute-dense loop bodies re-enter
the trace cache far more often than branchy or call-heavy regions).
This module joins both — natural-loop membership/nesting depth from
:mod:`repro.analysis.static.cfg` with the per-block instruction-type
mix — into a per-pc temperature map the engine installs into a
:class:`~repro.cache.policy.TRRIPPolicy` before a run.

The classification is deliberately coarse (the dynamic reuse history
overrides it per key as soon as real evidence exists):

* nesting depth >= 2 — hot: inner-loop bodies re-reference almost
  immediately;
* depth 1 — hot when the block is compute-dense (conditional branches
  are no more than a quarter of the block), warm otherwise: branchy
  loop bodies split into many paths that compete for the same set;
* depth 0 — cold: straight-line code rarely sees its trace again
  before eviction.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.static.cfg import ControlFlowGraph, build_cfg
from repro.cache.policy import TEMP_COLD, TEMP_HOT, TEMP_WARM

#: Depth-1 blocks hotter than this branch fraction stay warm.
_BRANCHY_FRACTION = 0.25


def loop_depths(cfg: ControlFlowGraph) -> Dict[int, int]:
    """Loop nesting depth per block index (0 = not in any loop)."""
    depths: Dict[int, int] = {}
    for loop in cfg.natural_loops():
        for block_index in loop.body:
            depths[block_index] = depths.get(block_index, 0) + 1
    return depths


def pc_loop_depths(program: object) -> Dict[int, int]:
    """Loop nesting depth per instruction address (0 when loop-free)."""
    cfg = build_cfg(program)
    by_block = loop_depths(cfg)
    out: Dict[int, int] = {}
    for block in cfg.blocks:
        depth = by_block.get(block.index, 0)
        for instr in block.instrs:
            out[instr.pc or 0] = depth
    return out


def static_temperature_hints(program: object) -> Dict[int, int]:
    """pc -> TEMP_{COLD,WARM,HOT} for every instruction address."""
    cfg = build_cfg(program)
    by_block = loop_depths(cfg)
    hints: Dict[int, int] = {}
    for block in cfg.blocks:
        depth = by_block.get(block.index, 0)
        if depth >= 2:
            temp = TEMP_HOT
        elif depth == 1:
            branches = sum(1 for i in block.instrs
                           if i.is_cond_branch())
            dense = branches <= _BRANCHY_FRACTION * len(block.instrs)
            temp = TEMP_HOT if dense else TEMP_WARM
        else:
            temp = TEMP_COLD
        for instr in block.instrs:
            hints[instr.pc or 0] = temp
    return hints


__all__ = ["loop_depths", "pc_loop_depths", "static_temperature_hints"]
