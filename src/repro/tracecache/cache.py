"""The trace cache structure.

The paper's configuration: 2K lines, 4-way set associative, indexed by
fetch address; each line holds one :class:`TraceSegment` (up to 16
instructions plus 7 pre-decode bits each — about 156KB of storage).

Two fidelity details matter a great deal in practice and are modelled:

* **Time-aware fills.** A segment inserted at cycle ``t`` with fill
  latency ``L`` is not visible to lookups before ``t + L`` — how the
  fill-pipeline-latency experiments (Figure 8) are modelled.
* **Path associativity.** Ways within a set may hold *different paths
  from the same fetch address* (e.g. a loop body's steady-state path
  and its exit path). Lookup disambiguates with the branch predictor:
  among resident same-address segments it prefers the one whose first
  embedded conditional-branch direction agrees with the predicted
  direction, falling back to the most recently used. Without this,
  loop-exit segments continually evict their hot steady-state twins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cache.policy import (
    POLICY_NAMES,
    ReplacementPolicy,
    make_policy,
)
from repro.errors import ConfigError
from repro.tracecache.segment import TraceSegment


@dataclass
class TraceCacheConfig:
    """Geometry and replacement policy of the trace cache."""

    num_sets: int = 512
    assoc: int = 4
    max_instrs: int = 16
    max_cond_branches: int = 3
    policy: str = "lru"

    def __post_init__(self) -> None:
        if self.num_sets <= 0 or self.num_sets & (self.num_sets - 1):
            raise ConfigError("trace cache set count must be a power of two")
        if self.assoc < 1:
            raise ConfigError("trace cache associativity must be >= 1")
        if self.policy not in POLICY_NAMES:
            raise ConfigError(
                f"unknown trace cache replacement policy "
                f"{self.policy!r}; expected one of "
                f"{', '.join(POLICY_NAMES)}")

    @property
    def num_lines(self) -> int:
        return self.num_sets * self.assoc


@dataclass
class TraceCacheStats:
    lookups: int = 0
    hits: int = 0
    fills: int = 0
    refreshes: int = 0        # identical segment already resident
    multipath_hits: int = 0   # several same-address candidates resident
    evictions: int = 0        # capacity evictions (policy victims)
    dead_evictions: int = 0   # evicted without a single lookup hit

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class TraceCache:
    """Set-associative storage of trace segments, pluggable
    replacement, path-associative lookup."""

    def __init__(self,
                 config: Optional[TraceCacheConfig] = None) -> None:
        self.config = config if config is not None else TraceCacheConfig()
        self._set_mask = self.config.num_sets - 1
        # set index -> {(start_pc, path_key): TraceSegment},
        # insertion order == recency order.
        self._sets: List[Dict[Tuple[int, tuple], TraceSegment]] = [
            dict() for _ in range(self.config.num_sets)]
        #: victim selection + metadata (TRRIP reuse history etc.); the
        #: trace cache runs live on both replay paths, so the policy
        #: state needs no digest plumbing here — it evolves under the
        #: exact same lookup/insert sequence either way.
        self.policy: ReplacementPolicy = make_policy(
            self.config.policy, self.config.num_sets)
        self.stats = TraceCacheStats()
        #: (start_pc, path_key) -> lookup hits since its last fill;
        #: feeds dead-eviction accounting and the reuse report.
        self._seg_hits: Dict[Tuple[int, tuple], int] = {}
        #: start_pc -> [fills, hits, evictions, dead evictions],
        #: aggregated across paths and generations (reuse report).
        self.reuse_by_pc: Dict[int, List[int]] = {}
        #: start_pc -> [instrs, cond branches, mem ops], accumulated
        #: at fill time (instruction-mix axis of the reuse report).
        self.mix_by_pc: Dict[int, List[int]] = {}
        #: optional telemetry event stream (set by the pipeline when a
        #: Telemetry session is attached); evictions are reported
        #: here. [replay: presentational]
        self.events: Optional[Any] = None
        #: optional span recorder (set by the engine when the session
        #: traces spans); residency spans + reuse/evict instants land
        #: on the "tracecache" track. None keeps lookup/insert
        #: branch-lean. [replay: presentational]
        self.spans: Optional[Any] = None
        #: (start_pc, path_key) -> open tc.residency SpanHandle.
        #: [replay: presentational]
        self._residency: Dict[Tuple[int, tuple], Any] = {}

    def _index_for(self, pc: int) -> int:
        return (pc >> 2) & self._set_mask

    def _set_for(self, pc: int) -> Dict[Tuple[int, tuple],
                                        TraceSegment]:
        return self._sets[self._index_for(pc)]

    def _note_reuse(self, pc: int, slot: int) -> None:
        """Bump one column of the per-pc reuse aggregate."""
        row = self.reuse_by_pc.get(pc)
        if row is None:
            row = [0, 0, 0, 0]
            self.reuse_by_pc[pc] = row
        row[slot] += 1

    # ------------------------------------------------------------------

    def lookup(self, pc: int, now: int,
               chooser: Optional[Callable] = None
               ) -> Optional[TraceSegment]:
        """Return a segment starting at *pc* that is resident and
        already filled by cycle *now*, else ``None``.

        When several paths from *pc* are resident, *chooser* (a
        ``segment -> score`` callable; higher is better, <= 0 means the
        predictor disagrees with the path) selects among them; most
        recently used wins ties.
        """
        self.stats.lookups += 1
        entries = self._set_for(pc)
        candidates = [key for key, seg in entries.items()
                      if key[0] == pc and seg.fill_cycle <= now]
        if not candidates:
            return None
        if len(candidates) > 1:
            self.stats.multipath_hits += 1
            if chooser is not None:
                scored = [(chooser(entries[key]), key)
                          for key in candidates]
                best = max(score for score, _ in scored)
                if best > 0:
                    candidates = [key for score, key in scored
                                  if score == best]
        key = candidates[-1]            # most recently used best path
        segment = entries.pop(key)
        entries[key] = segment          # recency touch
        self.policy.on_hit(self._index_for(pc), key)
        self.stats.hits += 1
        self._seg_hits[key] = self._seg_hits.get(key, 0) + 1
        self._note_reuse(pc, 1)
        if self.spans is not None:
            self.spans.instant("tracecache", "tc.reuse", float(now),
                               start_pc=pc, instrs=len(segment.instrs))
        return segment

    def probe(self, pc: int, path_key: Optional[tuple] = None
              ) -> Optional[TraceSegment]:
        """Non-stats, non-recency lookup.

        With *path_key*, the exact segment; without, the most recently
        used resident segment starting at *pc* — the same tie-break
        :meth:`lookup` applies among equally-scored candidates (tests,
        diagnostics).
        """
        entries = self._set_for(pc)
        if path_key is not None:
            return entries.get((pc, path_key))
        for key in reversed(entries):
            if key[0] == pc:
                return entries[key]
        return None

    def touch(self, pc: int, path_key: tuple) -> None:
        """Refresh LRU for one exact segment (fill-unit dedup path:
        rebuilding an identical resident segment keeps it hot)."""
        entries = self._set_for(pc)
        key = (pc, path_key)
        if key in entries:
            entries[key] = entries.pop(key)
            self.policy.on_hit(self._index_for(pc), key)
            self.stats.refreshes += 1

    def insert(self, segment: TraceSegment, now: int,
               fill_latency: int = 0) -> None:
        """Install *segment*, visible from ``now + fill_latency``.

        An identical resident segment is refreshed rather than
        re-filled; a different path from the same address takes its own
        way (path associativity), evicting the set's LRU entry if full.
        """
        segment.validate(self.config.max_instrs,
                         self.config.max_cond_branches)
        index = self._index_for(segment.start_pc)
        entries = self._sets[index]
        key = (segment.start_pc, segment.path_key)
        if key in entries:
            # Same path resident: replace its content (e.g. the branch
            # promotion state or annotations changed) with a fresh
            # fill. The policy sees a generation boundary (evict +
            # insert) so TRRIP's reuse history closes the old life,
            # but it is not a capacity eviction — stats stay quiet.
            entries.pop(key)
            self.policy.on_evict(index, key)
            self._seg_hits.pop(key, None)
            if self.spans is not None:
                self._end_residency(key, now)
        elif len(entries) >= self.config.assoc:
            victim_key = self.policy.victim(index, entries)
            entries.pop(victim_key)
            self.policy.on_evict(index, victim_key)
            self.stats.evictions += 1
            if self._seg_hits.pop(victim_key, 0) == 0:
                self.stats.dead_evictions += 1
                self._note_reuse(victim_key[0], 3)
            self._note_reuse(victim_key[0], 2)
            if self.spans is not None:
                self._end_residency(victim_key, now)
                self.spans.instant("tracecache", "tc.evict", float(now),
                                   start_pc=victim_key[0],
                                   for_pc=segment.start_pc)
            if self.events is not None:
                from repro.telemetry.events import TC_EVICT
                self.events.emit(TC_EVICT, now, start_pc=victim_key[0],
                                 for_pc=segment.start_pc)
        segment.fill_cycle = now + fill_latency
        entries[key] = segment
        self.policy.on_insert(index, key)
        self._seg_hits[key] = 0
        self._note_reuse(segment.start_pc, 0)
        self._note_mix(segment)
        self.stats.fills += 1
        if self.spans is not None:
            fill_cycle = float(segment.fill_cycle)
            self.spans.instant("tracecache", "tc.insert", fill_cycle,
                               start_pc=segment.start_pc,
                               instrs=len(segment.instrs))
            self._residency[key] = self.spans.begin(
                "tracecache", "tc.residency", fill_cycle,
                start_pc=segment.start_pc, instrs=len(segment.instrs))

    def _note_mix(self, segment: TraceSegment) -> None:
        """Accumulate the instruction-type mix of a fill by start pc."""
        row = self.mix_by_pc.get(segment.start_pc)
        if row is None:
            row = [0, 0, 0]
            self.mix_by_pc[segment.start_pc] = row
        row[0] += len(segment.instrs)
        for instr in segment.instrs:
            if instr.is_cond_branch():
                row[1] += 1
            elif instr.is_mem():
                row[2] += 1

    def _end_residency(self, key: Tuple[int, tuple],
                       now: int) -> None:
        """Close the open residency span for *key*, if any."""
        handle = self._residency.pop(key, None)
        if handle is not None:
            handle.end(float(now))

    def invalidate(self, pc: int) -> int:
        """Drop every path starting at *pc*; returns how many."""
        index = self._index_for(pc)
        entries = self._sets[index]
        victims = [key for key in entries if key[0] == pc]
        for key in victims:
            del entries[key]
            self.policy.on_evict(index, key)
            self._seg_hits.pop(key, None)
        return len(victims)

    def flush(self) -> None:
        for entries in self._sets:
            entries.clear()
        self.policy.on_flush()
        self._seg_hits.clear()

    def resident_segments(self) -> int:
        return sum(len(entries) for entries in self._sets)


__all__ = ["TraceCache", "TraceCacheConfig", "TraceCacheStats"]
