"""The trace cache structure.

The paper's configuration: 2K lines, 4-way set associative, indexed by
fetch address; each line holds one :class:`TraceSegment` (up to 16
instructions plus 7 pre-decode bits each — about 156KB of storage).

Two fidelity details matter a great deal in practice and are modelled:

* **Time-aware fills.** A segment inserted at cycle ``t`` with fill
  latency ``L`` is not visible to lookups before ``t + L`` — how the
  fill-pipeline-latency experiments (Figure 8) are modelled.
* **Path associativity.** Ways within a set may hold *different paths
  from the same fetch address* (e.g. a loop body's steady-state path
  and its exit path). Lookup disambiguates with the branch predictor:
  among resident same-address segments it prefers the one whose first
  embedded conditional-branch direction agrees with the predicted
  direction, falling back to the most recently used. Without this,
  loop-exit segments continually evict their hot steady-state twins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.tracecache.segment import TraceSegment


@dataclass
class TraceCacheConfig:
    """Geometry of the trace cache."""

    num_sets: int = 512
    assoc: int = 4
    max_instrs: int = 16
    max_cond_branches: int = 3

    def __post_init__(self) -> None:
        if self.num_sets <= 0 or self.num_sets & (self.num_sets - 1):
            raise ConfigError("trace cache set count must be a power of two")
        if self.assoc < 1:
            raise ConfigError("trace cache associativity must be >= 1")

    @property
    def num_lines(self) -> int:
        return self.num_sets * self.assoc


@dataclass
class TraceCacheStats:
    lookups: int = 0
    hits: int = 0
    fills: int = 0
    refreshes: int = 0        # identical segment already resident
    multipath_hits: int = 0   # several same-address candidates resident

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class TraceCache:
    """Set-associative storage of trace segments, LRU replacement,
    path-associative lookup."""

    def __init__(self,
                 config: Optional[TraceCacheConfig] = None) -> None:
        self.config = config if config is not None else TraceCacheConfig()
        self._set_mask = self.config.num_sets - 1
        # set index -> {(start_pc, path_key): TraceSegment},
        # insertion order == LRU order.
        self._sets: List[Dict[Tuple[int, tuple], TraceSegment]] = [
            dict() for _ in range(self.config.num_sets)]
        self.stats = TraceCacheStats()
        #: optional telemetry event stream (set by the pipeline when a
        #: Telemetry session is attached); evictions are reported
        #: here. [replay: presentational]
        self.events: Optional[Any] = None
        #: optional span recorder (set by the engine when the session
        #: traces spans); residency spans + reuse/evict instants land
        #: on the "tracecache" track. None keeps lookup/insert
        #: branch-lean. [replay: presentational]
        self.spans: Optional[Any] = None
        #: (start_pc, path_key) -> open tc.residency SpanHandle.
        #: [replay: presentational]
        self._residency: Dict[Tuple[int, tuple], Any] = {}

    def _set_for(self, pc: int) -> Dict[Tuple[int, tuple],
                                        TraceSegment]:
        return self._sets[(pc >> 2) & self._set_mask]

    # ------------------------------------------------------------------

    def lookup(self, pc: int, now: int,
               chooser: Optional[Callable] = None
               ) -> Optional[TraceSegment]:
        """Return a segment starting at *pc* that is resident and
        already filled by cycle *now*, else ``None``.

        When several paths from *pc* are resident, *chooser* (a
        ``segment -> score`` callable; higher is better, <= 0 means the
        predictor disagrees with the path) selects among them; most
        recently used wins ties.
        """
        self.stats.lookups += 1
        entries = self._set_for(pc)
        candidates = [key for key, seg in entries.items()
                      if key[0] == pc and seg.fill_cycle <= now]
        if not candidates:
            return None
        if len(candidates) > 1:
            self.stats.multipath_hits += 1
            if chooser is not None:
                scored = [(chooser(entries[key]), key)
                          for key in candidates]
                best = max(score for score, _ in scored)
                if best > 0:
                    candidates = [key for score, key in scored
                                  if score == best]
        key = candidates[-1]            # most recently used best path
        segment = entries.pop(key)
        entries[key] = segment          # LRU touch
        self.stats.hits += 1
        if self.spans is not None:
            self.spans.instant("tracecache", "tc.reuse", float(now),
                               start_pc=pc, instrs=len(segment.instrs))
        return segment

    def probe(self, pc: int, path_key: Optional[tuple] = None
              ) -> Optional[TraceSegment]:
        """Non-stats, non-LRU lookup.

        With *path_key*, the exact segment; without, any resident
        segment starting at *pc* (tests, diagnostics).
        """
        entries = self._set_for(pc)
        if path_key is not None:
            return entries.get((pc, path_key))
        for key, segment in entries.items():
            if key[0] == pc:
                return segment
        return None

    def touch(self, pc: int, path_key: tuple) -> None:
        """Refresh LRU for one exact segment (fill-unit dedup path:
        rebuilding an identical resident segment keeps it hot)."""
        entries = self._set_for(pc)
        key = (pc, path_key)
        if key in entries:
            entries[key] = entries.pop(key)
            self.stats.refreshes += 1

    def insert(self, segment: TraceSegment, now: int,
               fill_latency: int = 0) -> None:
        """Install *segment*, visible from ``now + fill_latency``.

        An identical resident segment is refreshed rather than
        re-filled; a different path from the same address takes its own
        way (path associativity), evicting the set's LRU entry if full.
        """
        segment.validate(self.config.max_instrs,
                         self.config.max_cond_branches)
        entries = self._set_for(segment.start_pc)
        key = (segment.start_pc, segment.path_key)
        if key in entries:
            # Same path resident: replace its content (e.g. the branch
            # promotion state or annotations changed) with a fresh fill.
            entries.pop(key)
            if self.spans is not None:
                self._end_residency(key, now)
        elif len(entries) >= self.config.assoc:
            victim_key = next(iter(entries))
            entries.pop(victim_key)             # evict LRU
            if self.spans is not None:
                self._end_residency(victim_key, now)
                self.spans.instant("tracecache", "tc.evict", float(now),
                                   start_pc=victim_key[0],
                                   for_pc=segment.start_pc)
            if self.events is not None:
                from repro.telemetry.events import TC_EVICT
                self.events.emit(TC_EVICT, now, start_pc=victim_key[0],
                                 for_pc=segment.start_pc)
        segment.fill_cycle = now + fill_latency
        entries[key] = segment
        self.stats.fills += 1
        if self.spans is not None:
            fill_cycle = float(segment.fill_cycle)
            self.spans.instant("tracecache", "tc.insert", fill_cycle,
                               start_pc=segment.start_pc,
                               instrs=len(segment.instrs))
            self._residency[key] = self.spans.begin(
                "tracecache", "tc.residency", fill_cycle,
                start_pc=segment.start_pc, instrs=len(segment.instrs))

    def _end_residency(self, key: Tuple[int, tuple],
                       now: int) -> None:
        """Close the open residency span for *key*, if any."""
        handle = self._residency.pop(key, None)
        if handle is not None:
            handle.end(float(now))

    def invalidate(self, pc: int) -> int:
        """Drop every path starting at *pc*; returns how many."""
        entries = self._set_for(pc)
        victims = [key for key in entries if key[0] == pc]
        for key in victims:
            del entries[key]
        return len(victims)

    def flush(self) -> None:
        for entries in self._sets:
            entries.clear()

    def resident_segments(self) -> int:
        return sum(len(entries) for entries in self._sets)


__all__ = ["TraceCache", "TraceCacheConfig", "TraceCacheStats"]
