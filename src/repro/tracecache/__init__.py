"""Trace cache: multi-block instruction segments in physically
contiguous storage, plus the set-associative structure that holds them."""

from repro.tracecache.segment import TraceSegment, BranchInfo
from repro.tracecache.cache import TraceCache, TraceCacheConfig

__all__ = ["TraceSegment", "BranchInfo", "TraceCache", "TraceCacheConfig"]
