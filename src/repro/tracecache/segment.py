"""Trace segments.

A segment is up to 16 instructions from one dynamic path of execution,
spanning several basic blocks (trace packing packs across block
boundaries), containing at most three *unpromoted* conditional branches
(promoted branches carry an embedded static prediction and do not
consume a predictor slot). Returns, indirect jumps and serializing
instructions terminate a segment; calls and direct jumps do not.

Instructions inside a segment are *copies* of the architected
instructions: the fill unit annotates and rewrites them freely without
touching the program image. ``slots[i]`` is the issue slot (and thus
execution cluster) assigned to logical instruction ``i`` — identity
until the placement pass reassigns it; the logical order itself is
never permuted, mirroring the paper's alternative implementation where
a 4-bit field conveys placement while original order information is
retained for the memory scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SegmentError

#: process-wide allocator for segment memo tokens (see
#: :attr:`TraceSegment.memo_token`). Starts at 1 so 0 can mean
#: "unassigned" in the dataclass default.
_MEMO_TOKENS = count(1)


@dataclass
class BranchInfo:
    """Fetch-relevant facts about one conditional branch in a segment."""

    index: int          # logical position within the segment
    pc: int
    direction: bool     # the embedded (path) direction
    promoted: bool      # statically predicted via the bias table


@dataclass
class TraceSegment:
    """One trace cache line."""

    start_pc: int
    instrs: List[Any]
    branches: List[BranchInfo] = field(default_factory=list)
    slots: List[int] = field(default_factory=list)
    block_count: int = 1
    fill_cycle: int = 0
    #: DependencyInfo, set by the fill unit
    deps: Optional[Any] = None
    #: promotion state of the candidate's branches at build time, used
    #: by the fill unit's dedup (passes may remove branch records —
    #: e.g. predication — so the live list cannot be compared).
    build_promo: Tuple[bool, ...] = ()
    #: process-unique identity for the timing memo: two visits share a
    #: memo key only if they hit the *same finalized segment object*
    #: (same instruction rewrites, slots, promotions). Assigned at
    #: construction, never reused — a rebuilt segment after eviction
    #: gets a fresh token, which soundly invalidates stale memo
    #: entries instead of aliasing them.
    memo_token: int = 0

    def __post_init__(self) -> None:
        if not self.slots:
            self.slots = list(range(len(self.instrs)))
        if not self.memo_token:
            self.memo_token = next(_MEMO_TOKENS)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instrs)

    def clone(self) -> "TraceSegment":
        """An independent deep copy (instruction copies, fresh branch
        records and slot list). Used by the segment verifier to
        snapshot pre-optimization state; annotations objects are
        frozen, so sharing them is safe."""
        return TraceSegment(
            start_pc=self.start_pc,
            instrs=[instr.copy() for instr in self.instrs],
            branches=[BranchInfo(b.index, b.pc, b.direction, b.promoted)
                      for b in self.branches],
            slots=list(self.slots),
            block_count=self.block_count,
            fill_cycle=self.fill_cycle,
            deps=None,
            build_promo=self.build_promo)

    @property
    def path_key(self) -> Tuple[int, ...]:
        """Identity of the embedded path: the PC sequence."""
        return tuple(instr.pc for instr in self.instrs)

    @property
    def unpromoted_branch_count(self) -> int:
        return sum(1 for b in self.branches if not b.promoted)

    def validate(self, max_instrs: int = 16,
                 max_cond_branches: int = 3) -> None:
        """Check the structural invariants the fill unit must maintain.

        Raises:
            SegmentError: on any violation.
        """
        if not self.instrs:
            raise SegmentError("empty segment")
        if len(self.instrs) > max_instrs:
            raise SegmentError(
                f"segment has {len(self.instrs)} instructions "
                f"(max {max_instrs})")
        if self.unpromoted_branch_count > max_cond_branches:
            raise SegmentError(
                f"segment has {self.unpromoted_branch_count} unpromoted "
                f"conditional branches (max {max_cond_branches})")
        if self.instrs[0].pc != self.start_pc:
            raise SegmentError("start_pc does not match first instruction")
        for instr in self.instrs[:-1]:
            if instr.terminates_segment():
                raise SegmentError(
                    f"{instr.op.value} at {instr.pc:#x} must terminate "
                    f"the segment but is not last")
        if sorted(self.slots) != list(range(len(self.instrs))):
            raise SegmentError("slot assignment is not a permutation")
        positions = [b.index for b in self.branches]
        if positions != sorted(positions):
            raise SegmentError("branch records out of order")
        for info in self.branches:
            instr = self.instrs[info.index]
            if not instr.is_cond_branch():
                raise SegmentError(
                    f"branch record at index {info.index} does not point "
                    f"at a conditional branch")
            if instr.pc != info.pc:
                raise SegmentError("branch record PC mismatch")

    # -- statistics helpers --------------------------------------------

    def optimized_counts(self) -> Dict[str, int]:
        """Per-optimization transformed-instruction counts (Table 2)."""
        moves = sum(1 for i in self.instrs if i.move_flag)
        reassoc = sum(1 for i in self.instrs if i.reassociated)
        scaled = sum(1 for i in self.instrs if i.scale is not None)
        any_opt = sum(1 for i in self.instrs
                      if i.move_flag or i.reassociated or i.scale is not None)
        return {"moves": moves, "reassoc": reassoc, "scaled": scaled,
                "any": any_opt}

    def listing(self) -> str:
        """Readable dump: slot, cluster, annotations per instruction."""
        from repro.isa.disasm import disassemble
        lines = [f"segment @ {self.start_pc:#x} "
                 f"({len(self.instrs)} instrs, {self.block_count} blocks)"]
        for idx, instr in enumerate(self.instrs):
            slot = self.slots[idx]
            lines.append(f"  [{idx:2d}] slot={slot:2d} cl={slot // 4} "
                         f"{disassemble(instr)}")
        return "\n".join(lines)


__all__ = ["TraceSegment", "BranchInfo"]
