"""Return address stack for predicting subroutine returns."""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """A fixed-depth circular return address stack.

    Overflow wraps (oldest entry lost), underflow predicts nothing —
    both standard hardware behaviours.
    """

    def __init__(self, depth: int = 16) -> None:
        self.depth = depth
        self._stack: List[int] = []
        self.pushes = 0
        self.pops = 0

    def push(self, return_pc: int) -> None:
        self.pushes += 1
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def pop(self) -> Optional[int]:
        """Predicted return target, or ``None`` when empty."""
        self.pops += 1
        if self._stack:
            return self._stack.pop()
        return None

    def __len__(self) -> int:
        return len(self._stack)


__all__ = ["ReturnAddressStack"]
