"""Branch prediction: the paper's three-PHT multiple-branch predictor,
the bias table driving branch promotion, a return address stack and a
BTB for the instruction-cache fetch path."""

from repro.branch.bias import BiasTable
from repro.branch.btb import BranchTargetBuffer
from repro.branch.counters import SaturatingCounterArray
from repro.branch.pht import PatternHistoryTable
from repro.branch.predictor import MultiBranchPredictor, PredictorConfig
from repro.branch.ras import ReturnAddressStack

__all__ = [
    "SaturatingCounterArray",
    "PatternHistoryTable",
    "BiasTable",
    "ReturnAddressStack",
    "BranchTargetBuffer",
    "MultiBranchPredictor",
    "PredictorConfig",
]
