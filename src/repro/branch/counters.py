"""Saturating counter arrays, the substrate of every predictor table."""

from __future__ import annotations

from repro.errors import ConfigError


class SaturatingCounterArray:
    """An array of n-bit saturating up/down counters.

    Counters start at the weak side of the taken threshold (the usual
    "weakly taken" initialization for 2-bit counters).
    """

    def __init__(self, entries: int, bits: int = 2) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError(f"entry count {entries} must be a power of two")
        if bits < 1:
            raise ConfigError("counters need at least one bit")
        self.entries = entries
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        self._counters = [self.threshold] * entries
        self._mask = entries - 1

    def index(self, key: int) -> int:
        """Fold an arbitrary key into a table index."""
        return key & self._mask

    def value(self, key: int) -> int:
        return self._counters[key & self._mask]

    def predict(self, key: int) -> bool:
        """Counter's current direction prediction (taken when at or
        above the midpoint)."""
        return self._counters[key & self._mask] >= self.threshold

    def update(self, key: int, taken: bool) -> None:
        """Train toward the observed outcome."""
        idx = key & self._mask
        value = self._counters[idx]
        if taken:
            if value < self.max_value:
                self._counters[idx] = value + 1
        elif value > 0:
            self._counters[idx] = value - 1

    def reset(self) -> None:
        self._counters = [self.threshold] * self.entries


__all__ = ["SaturatingCounterArray"]
