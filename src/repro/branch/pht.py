"""Pattern history tables.

Each of the paper's three tables is "an array of saturating 2-bit
counters"; the indexing function is gshare-style (branch PC XOR global
history), a standard choice for MICRO-1998-era PHTs that the paper does
not further specify.
"""

from __future__ import annotations

from repro.branch.counters import SaturatingCounterArray


class PatternHistoryTable:
    """A 2-bit-counter PHT indexed by hashed (PC, global history)."""

    def __init__(self, entries: int, history_bits: int = 12) -> None:
        self.counters = SaturatingCounterArray(entries, bits=2)
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc: int, ghist: int) -> int:
        return (pc >> 2) ^ (ghist & self._history_mask)

    def predict(self, pc: int, ghist: int) -> bool:
        return self.counters.predict(self._index(pc, ghist))

    def update(self, pc: int, ghist: int, taken: bool) -> None:
        self.counters.update(self._index(pc, ghist), taken)


class GlobalHistory:
    """The global direction-history shift register shared by the PHTs."""

    def __init__(self, bits: int = 12) -> None:
        self.bits = bits
        self._mask = (1 << bits) - 1
        self.value = 0

    def push(self, taken: bool) -> None:
        self.value = ((self.value << 1) | int(taken)) & self._mask

    def reset(self) -> None:
        self.value = 0


__all__ = ["PatternHistoryTable", "GlobalHistory"]
