"""The paper's multiple-branch predictor.

Three separate pattern history tables of 2-bit counters predict the
first, second and third conditional branch of a fetch group
respectively. Because branch promotion removes strongly biased branches
from the dynamic-prediction stream, the tables are skewed: 64K, 16K and
8K entries (roughly 32KB of predictor state including the 8KB bias
table).

Promoted branches are predicted statically from their embedded
direction and do not consume a PHT slot — the caller (fetch engine /
fill unit) decides promotion via the :class:`~repro.branch.bias.BiasTable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.branch.bias import BiasTable
from repro.branch.btb import BranchTargetBuffer
from repro.branch.pht import GlobalHistory, PatternHistoryTable
from repro.branch.ras import ReturnAddressStack
from repro.errors import ConfigError


@dataclass
class PredictorConfig:
    """Sizing knobs for the whole prediction complex."""

    pht_entries: Tuple[int, ...] = (65536, 16384, 8192)
    history_bits: int = 12
    bias_entries: int = 8192
    promote_threshold: int = 64
    ras_depth: int = 16
    btb_entries: int = 512

    def scaled(self, factor: int) -> "PredictorConfig":
        """A uniformly smaller configuration (for fast tests)."""
        return PredictorConfig(
            pht_entries=tuple(max(16, e // factor) for e in self.pht_entries),
            history_bits=self.history_bits,
            bias_entries=max(16, self.bias_entries // factor),
            promote_threshold=self.promote_threshold,
            ras_depth=self.ras_depth,
            btb_entries=max(16, self.btb_entries // factor),
        )


@dataclass
class PredictorStats:
    cond_predictions: int = 0
    cond_mispredicts: int = 0
    promoted_predictions: int = 0
    promoted_mispredicts: int = 0
    indirect_predictions: int = 0
    indirect_mispredicts: int = 0

    @property
    def cond_accuracy(self) -> float:
        total = self.cond_predictions
        return 1.0 - self.cond_mispredicts / total if total else 1.0


class MultiBranchPredictor:
    """Three skewed PHTs + bias table + RAS + BTB."""

    def __init__(self,
                 config: Optional[PredictorConfig] = None) -> None:
        self.config = config if config is not None else PredictorConfig()
        cfg = self.config
        if len(cfg.pht_entries) < 1:
            raise ConfigError("need at least one PHT")
        self.phts: List[PatternHistoryTable] = [
            PatternHistoryTable(entries, cfg.history_bits)
            for entries in cfg.pht_entries]
        self.history = GlobalHistory(cfg.history_bits)
        self.bias = BiasTable(cfg.bias_entries, cfg.promote_threshold)
        self.ras = ReturnAddressStack(cfg.ras_depth)
        self.btb = BranchTargetBuffer(cfg.btb_entries)
        self.stats = PredictorStats()

    @property
    def max_dynamic_branches(self) -> int:
        """How many unpromoted conditional branches one fetch group may
        carry (one per PHT)."""
        return len(self.phts)

    # ------------------------------------------------------------------

    def predict_cond(self, pc: int, position: int) -> bool:
        """Predict the *position*-th unpromoted conditional branch of
        the current fetch group (0-based)."""
        table = self.phts[min(position, len(self.phts) - 1)]
        return table.predict(pc, self.history.value)

    def update_cond(self, pc: int, position: int, taken: bool) -> None:
        """Train table and history with the committed outcome.

        The replay model trains immediately at fetch with the true
        outcome (oracle update ordering); see DESIGN.md §3.
        """
        table = self.phts[min(position, len(self.phts) - 1)]
        if table.predict(pc, self.history.value) != taken:
            self.stats.cond_mispredicts += 1
        table.update(pc, self.history.value, taken)
        self.history.push(taken)
        self.stats.cond_predictions += 1

    def record_outcome(self, pc: int, taken: bool) -> None:
        """Feed the bias table (promotion bookkeeping) at retire."""
        self.bias.record(pc, taken)

    # -- indirect control ------------------------------------------------

    def predict_indirect(self, pc: int,
                         is_return: bool) -> Optional[int]:
        """Predicted target for an indirect jump, or ``None``."""
        self.stats.indirect_predictions += 1
        if is_return:
            return self.ras.pop()
        return self.btb.predict(pc)

    def train_indirect(self, pc: int, target: int) -> None:
        self.btb.update(pc, target)

    def note_call(self, return_pc: int) -> None:
        """Push the fall-through of a call onto the RAS."""
        self.ras.push(return_pc)


__all__ = ["MultiBranchPredictor", "PredictorConfig", "PredictorStats"]
