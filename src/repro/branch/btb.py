"""Branch target buffer for indirect jumps on the fetch path."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigError


class BranchTargetBuffer:
    """Direct-mapped tagged BTB storing last-seen indirect targets."""

    def __init__(self, entries: int = 512) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError(f"entry count {entries} must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._tags: List[Optional[int]] = [None] * entries
        self._targets = [0] * entries

    def predict(self, pc: int) -> Optional[int]:
        """Predicted target for the control instruction at *pc*, or
        ``None`` on a BTB miss."""
        idx = (pc >> 2) & self._mask
        if self._tags[idx] == pc:
            return self._targets[idx]
        return None

    def update(self, pc: int, target: int) -> None:
        idx = (pc >> 2) & self._mask
        self._tags[idx] = pc
        self._targets[idx] = target


__all__ = ["BranchTargetBuffer"]
