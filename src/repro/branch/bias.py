"""The bias table driving branch promotion.

Branch promotion (Patel et al., ISCA 1998) dynamically identifies
conditional branches that have gone the same direction for N
consecutive executions (the paper sets N = 64) and *promotes* them:
trace segments embed a static prediction for them, and they stop
consuming one of the three dynamic-prediction slots.

Each entry tracks, per branch address: the last observed direction, the
current run length of consecutive same-direction outcomes, and whether
the branch is currently promoted. A promoted branch that breaks its
bias is demoted and its run restarts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

PROMOTE_THRESHOLD = 64


@dataclass
class _BiasEntry:
    direction: bool = False
    run: int = 0
    promoted: bool = False


class BiasTable:
    """Direct-mapped, tagless bias table (8K entries in the paper's
    32KB-predictor budget).

    Being tagless, distinct branches may alias an entry; that mirrors
    the hardware cost constraint rather than idealizing it.
    """

    def __init__(self, entries: int = 8192,
                 threshold: int = PROMOTE_THRESHOLD) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError(f"entry count {entries} must be a power of two")
        if threshold < 1:
            raise ConfigError("promotion threshold must be positive")
        self.entries = entries
        self.threshold = threshold
        self._mask = entries - 1
        self._table = [_BiasEntry() for _ in range(entries)]
        self.promotions = 0
        self.demotions = 0

    def _entry(self, pc: int) -> _BiasEntry:
        return self._table[(pc >> 2) & self._mask]

    def record(self, pc: int, taken: bool) -> None:
        """Record a committed outcome for the branch at *pc*."""
        entry = self._entry(pc)
        if entry.run and taken == entry.direction:
            entry.run += 1
            if not entry.promoted and entry.run >= self.threshold:
                entry.promoted = True
                self.promotions += 1
        else:
            if entry.promoted:
                entry.promoted = False
                self.demotions += 1
            entry.direction = taken
            entry.run = 1
            if entry.run >= self.threshold:   # degenerate threshold of 1
                entry.promoted = True
                self.promotions += 1

    def is_promoted(self, pc: int) -> bool:
        return self._entry(pc).promoted

    def promoted_direction(self, pc: int) -> bool:
        """Static direction for a promoted branch (undefined for an
        unpromoted one; callers must check :meth:`is_promoted`)."""
        return self._entry(pc).direction

    def reset(self) -> None:
        self._table = [_BiasEntry() for _ in range(self.entries)]
        self.promotions = 0
        self.demotions = 0


__all__ = ["BiasTable", "PROMOTE_THRESHOLD"]
