"""OpenMetrics / Prometheus text exposition of the metric registry.

Renders a :class:`~repro.telemetry.registry.TelemetryRegistry` (or a
``registry.flat()`` snapshot paired with metric kinds) in the
OpenMetrics text format — the exposition the planned HTTP service will
serve from ``/metrics``, and a format every Prometheus-compatible
scraper ingests directly.

Name mapping: registry scopes are dot-separated (``fetch.tc.hits``);
metric names become ``repro_`` + the scope with dots replaced by
underscores (``repro_fetch_tc_hits``). The original scope is kept in
the ``# HELP`` line so the mapping is reversible by eye. Counters get
the mandatory ``_total`` sample suffix; histograms are exposed with
cumulative ``le`` buckets derived from the registry's power-of-two
buckets (bucket *k* holds observations with ``bit_length() == k``,
i.e. values ``<= 2^k - 1``).

:func:`parse_openmetrics` reads the exposition back into a flat dict —
used by the round-trip test and handy for scraping in-process.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

from repro.telemetry.registry import TelemetryRegistry

#: prefix for every exposed metric name.
NAME_PREFIX = "repro_"


def metric_name(scope: str) -> str:
    """The OpenMetrics name for a registry scope."""
    return NAME_PREFIX + scope.replace(".", "_")


def _histogram_lines(name: str, snap: Dict[str, Any]) -> List[str]:
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    buckets = {int(k): v for k, v in snap["buckets"].items()}
    for exponent in sorted(buckets):
        cumulative += buckets[exponent]
        le = (1 << exponent) - 1 if exponent else 0
        lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {snap["count"]}')
    lines.append(f"{name}_sum {snap['total']}")
    lines.append(f"{name}_count {snap['count']}")
    return lines


def render_openmetrics(registry: TelemetryRegistry) -> str:
    """The registry's full state in OpenMetrics text format (ends with
    the mandatory ``# EOF`` terminator)."""
    lines: List[str] = []
    for scope in sorted(registry._metrics):
        metric = registry._metrics[scope]
        name = metric_name(scope)
        if metric.kind == "histogram":
            lines.append(f"# HELP {name} scope {scope}")
            lines.extend(_histogram_lines(name, metric.snapshot_value()))
            continue
        lines.append(f"# HELP {name} scope {scope}")
        if metric.kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}_total {metric.value}")
        else:
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {metric.value}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_value(text: str) -> Any:
    value = float(text)
    if value.is_integer() and not math.isinf(value):
        return int(value)
    return value


def _split_sample(line: str) -> Tuple[str, Dict[str, str], str]:
    """``name{labels} value`` -> (name, labels, value-text)."""
    labels: Dict[str, str] = {}
    if "{" in line:
        name, rest = line.split("{", 1)
        label_text, value_text = rest.split("}", 1)
        for item in label_text.split(","):
            if not item:
                continue
            key, raw = item.split("=", 1)
            labels[key.strip()] = raw.strip().strip('"')
        return name.strip(), labels, value_text.strip()
    name, value_text = line.rsplit(None, 1)
    return name.strip(), labels, value_text.strip()


def parse_openmetrics(text: str) -> Dict[str, Any]:
    """Parse an exposition back into ``{metric_name: value}``.

    Counters and gauges map to their scalar value (the ``_total``
    suffix is kept for counters); histograms map to
    ``{"count": n, "sum": s, "buckets": {le_text: cumulative}}``.
    """
    types: Dict[str, str] = {}
    out: Dict[str, Any] = {}
    saw_eof = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        name, labels, value_text = _split_sample(line)
        value = _parse_value(value_text)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and \
                    types.get(name[: -len(suffix)]) == "histogram":
                base = name[: -len(suffix)]
                break
        if types.get(base) == "histogram":
            hist = out.setdefault(
                base, {"count": 0, "sum": 0, "buckets": {}})
            if name.endswith("_bucket"):
                hist["buckets"][labels.get("le", "+Inf")] = value
            elif name.endswith("_sum"):
                hist["sum"] = value
            elif name.endswith("_count"):
                hist["count"] = value
            continue
        out[name] = value
    if not saw_eof:
        raise ValueError("exposition is missing the '# EOF' terminator")
    return out


__all__ = ["render_openmetrics", "parse_openmetrics", "metric_name",
           "NAME_PREFIX"]
