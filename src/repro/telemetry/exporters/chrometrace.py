"""Chrome trace-event export (Perfetto / chrome://tracing).

Serializes a :class:`~repro.telemetry.spans.SpanRecorder` (and,
optionally, a structured-event archive) into the Chrome trace-event
JSON object format: load the file in https://ui.perfetto.dev to see
the segment lifecycle and execution-service activity as timelines.

Timebase mapping: the format has one timestamp unit (microseconds), so
the two timebases become two *processes* — pid 1 carries the
simulated-cycle tracks (1 "us" == 1 cycle), pid 2 the wall-clock
tracks (real microseconds). Each recorder track becomes a named thread
(tid) in its process; spans are complete events (``ph: "X"``, nested
by containment), instants are ``ph: "i"``. Perfetto renders the two
processes as separate groups, so mixed timebases never share an axis.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.telemetry.spans import CYCLES, WALL

#: process id per timebase (see module docstring).
TIMEBASE_PIDS = {CYCLES: 1, WALL: 2}

_PROCESS_NAMES = {
    TIMEBASE_PIDS[CYCLES]: "simulated time (1us = 1 cycle)",
    TIMEBASE_PIDS[WALL]: "host time",
}

#: event kinds from a JSONL archive worth showing as trace instants
#: (low-frequency lifecycle markers; the high-frequency kinds already
#: have first-class spans).
ARCHIVE_INSTANT_KINDS = frozenset((
    "run.started", "run.finished", "segment.built", "segment.deduped",
    "branch.promoted", "tc.evict", "verify.violation",
))


def _thread_ids(records: List[Dict[str, Any]]) -> Dict[tuple, int]:
    """Stable ``(pid, track) -> tid`` assignment, per-process, in
    first-appearance order."""
    tids: Dict[tuple, int] = {}
    next_tid: Dict[int, int] = {}
    for record in records:
        pid = TIMEBASE_PIDS[record["timebase"]]
        key = (pid, record["track"])
        if key not in tids:
            next_tid[pid] = next_tid.get(pid, 0) + 1
            tids[key] = next_tid[pid]
    return tids


def trace_events(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Convert span-recorder records to trace-event dicts.

    Every returned event carries the format's required keys (``ph``,
    ``ts``, ``pid``, ``tid``, ``name``); events are sorted by
    ``(pid, tid, ts)`` so timestamps are monotonic per track.
    """
    tids = _thread_ids(records)
    out: List[Dict[str, Any]] = []
    for pid, name in sorted(_PROCESS_NAMES.items()):
        if any(p == pid for p, _ in tids):
            out.append({"ph": "M", "ts": 0, "pid": pid, "tid": 0,
                        "name": "process_name",
                        "args": {"name": name}})
    for (pid, track), tid in sorted(tids.items()):
        out.append({"ph": "M", "ts": 0, "pid": pid, "tid": tid,
                    "name": "thread_name", "args": {"name": track}})
    body: List[Dict[str, Any]] = []
    for record in records:
        pid = TIMEBASE_PIDS[record["timebase"]]
        tid = tids[(pid, record["track"])]
        event: Dict[str, Any] = {
            "ts": record["ts"], "pid": pid, "tid": tid,
            "name": record["name"], "cat": record["track"],
            "args": record["args"],
        }
        if record["kind"] == "instant":
            event["ph"] = "i"
            event["s"] = "t"            # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = record["dur"]
        body.append(event)
    body.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return out + body


def events_to_span_records(events: List[Any]) -> List[Dict[str, Any]]:
    """Lower a structured-event list (e.g. a ``--telemetry-out``
    archive loaded by :func:`repro.telemetry.io.read_events`) to
    span-recorder instant records on one simulated-time track per
    event kind family."""
    records: List[Dict[str, Any]] = []
    for event in events:
        if event.kind not in ARCHIVE_INSTANT_KINDS:
            continue
        track = "events." + event.kind.split(".")[0]
        args = {k: v for k, v in event.data.items()
                if not isinstance(v, (dict, list))}
        records.append({"track": track, "timebase": CYCLES,
                        "kind": "instant", "name": event.kind,
                        "ts": float(event.cycle), "dur": 0.0,
                        "args": args})
    return records


def write_chrome_trace(path: Any, recorder: Any,
                       events: Optional[List[Any]] = None,
                       metadata: Optional[Dict[str, Any]] = None) -> int:
    """Write *recorder*'s spans (plus optional archive *events*) as a
    Chrome trace-event JSON file; returns the trace-event count."""
    records = list(recorder.records)
    if events:
        records += events_to_span_records(events)
    payload: Dict[str, Any] = {
        "traceEvents": trace_events(records),
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["otherData"] = metadata
    with open(path, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    return len(payload["traceEvents"])


def archive_to_trace(jsonl_path: Any, out_path: Any) -> int:
    """Convert a ``--telemetry-out`` JSONL archive straight to a trace
    file (no span recorder needed); returns the trace-event count."""
    from repro.telemetry.io import read_events

    events = read_events(jsonl_path, on_error="warn")
    records = events_to_span_records(events)
    payload = {"traceEvents": trace_events(records),
               "displayTimeUnit": "ms"}
    with open(out_path, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    return len(payload["traceEvents"])


__all__ = ["trace_events", "events_to_span_records",
           "write_chrome_trace", "archive_to_trace", "TIMEBASE_PIDS",
           "ARCHIVE_INSTANT_KINDS"]
