"""Telemetry exporters: serialize sessions for external tooling.

* :mod:`repro.telemetry.exporters.chrometrace` — Chrome trace-event
  JSON for ``ui.perfetto.dev`` / ``chrome://tracing``: span timelines
  on a simulated-cycle timebase (pipeline/segment lifecycle) and a
  wall-clock timebase (execution-service jobs).
* :mod:`repro.telemetry.exporters.openmetrics` — OpenMetrics /
  Prometheus text exposition of the full metric registry, the format
  the planned HTTP service will serve from ``/metrics``.
"""

from __future__ import annotations

from repro.telemetry.exporters.chrometrace import (
    archive_to_trace,
    trace_events,
    write_chrome_trace,
)
from repro.telemetry.exporters.openmetrics import (
    parse_openmetrics,
    render_openmetrics,
)

__all__ = ["trace_events", "write_chrome_trace", "archive_to_trace",
           "render_openmetrics", "parse_openmetrics"]
