"""Top-down cycle accounting.

Classifies every cycle of a replay into a seven-class taxonomy so a
``compare`` can report *why* a configuration won, not just its IPC
delta:

``base``
    A cycle in which at least one instruction retired — the productive
    baseline every machine pays.
``fetch_starved``
    Nothing retired because the front end had not yet delivered the
    next instruction (fetch bandwidth: group sequencing, taken-branch
    breaks, line crossings).
``tc_miss``
    Front-end dead time specifically due to instruction-fetch latency
    after a trace cache miss (the supporting I-cache/L2/memory round
    trip). On a machine with the trace cache disabled these cycles
    are reported as ``fetch_starved``.
``mispredict_recovery``
    Fetch was stalled waiting for a mispredicted branch to resolve and
    redirect.
``bypass_delay``
    The next retiring instruction had finished all work except the
    extra cycle(s) its last-arriving operand spent crossing clusters —
    the penalty the placement optimization attacks.
``issue_bound``
    The next retiring instruction was fetched but still waiting to
    execute or executing (dataflow chains, RS/FU contention, rename
    and window stalls, memory latency).
``drain``
    The instruction had completed but not yet retired (retire
    bandwidth, in-order commit backpressure, serialization drain).

The accounting is **exact**: the classes always sum to the run's total
cycle count. It is computed online from the in-order retirement
stream — between two consecutive retirement cycles every skipped cycle
is attributed by walking the *next* retiring instruction's own
timeline (its fetch / complete / retire cycles plus the front-end
delay decomposition of its fetch group), newest cause first.

Front-end delays that *overlap* retirement of earlier instructions
(common on this machine: a one-cycle mispredict redirect hides behind
the previous group draining) are carried as *debts* — when the
pipeline later stalls refilling, those waiting cycles are charged to
the original cause (``mispredict_recovery``, ``tc_miss``, ``drain``)
rather than generic ``issue_bound``.
"""

from __future__ import annotations

from repro.errors import ConfigError

#: the taxonomy, in report order.
CYCLE_CLASSES = ("base", "fetch_starved", "tc_miss",
                 "mispredict_recovery", "bypass_delay", "issue_bound",
                 "drain")


class CycleAccountant:
    """Online cycle classifier fed from the retirement stream.

    The pipeline calls :meth:`on_retire` for every committed
    instruction, in program order; :meth:`finish` validates the
    partition against the run's final cycle count and returns it.
    """

    def __init__(self, bypass_penalty: int = 1) -> None:
        self.bypass_penalty = bypass_penalty
        self.classes = {name: 0 for name in CYCLE_CLASSES}
        self._last_retire = 0
        self.instructions = 0
        # Front-end delays not yet charged to a stall gap (see module
        # docstring): redirect, fetch-latency, serialization.
        self._recovery_debt = 0
        self._extra_debt = 0
        self._serialize_debt = 0

    def on_retire(self, fetch: int, complete: int, retire: int,
                  recovery: int = 0, fetch_extra: int = 0,
                  extra_is_tc_miss: bool = True, serialize: int = 0,
                  bypass_penalized: bool = False) -> None:
        """Account the cycles up to and including *retire*.

        *recovery*, *fetch_extra* and *serialize* are the front-end
        delay decomposition of this instruction's fetch group: cycles
        its fetch was pushed back by mispredict redirect, by
        instruction-fetch latency (trace cache miss), and by
        serialization drain respectively — pass them on the group's
        first retiring instruction only. *bypass_penalized* marks an
        instruction whose last-arriving source paid the cross-cluster
        bypass penalty.
        """
        self.instructions += 1
        self._recovery_debt += recovery
        self._extra_debt += fetch_extra
        self._serialize_debt += serialize
        classes = self.classes
        extra_class = "tc_miss" if extra_is_tc_miss else "fetch_starved"
        last = self._last_retire
        if retire <= last:      # shares an already-counted retire cycle
            return
        classes["base"] += 1    # the retire cycle itself is productive
        stalls_end = retire - 1
        # Cycles in (last, min(fetch, stalls_end)]: front-end bound.
        frontend = min(fetch, stalls_end) - last
        if frontend > 0:
            take = min(frontend, self._extra_debt)
            classes[extra_class] += take
            self._extra_debt -= take
            frontend -= take
            take = min(frontend, self._recovery_debt)
            classes["mispredict_recovery"] += take
            self._recovery_debt -= take
            frontend -= take
            take = min(frontend, self._serialize_debt)
            classes["drain"] += take
            self._serialize_debt -= take
            frontend -= take
            classes["fetch_starved"] += frontend
        # Cycles in (max(last, fetch), min(complete, stalls_end)]:
        # fetched but not yet complete — back-end bound. The pipeline
        # may be here *because* fetch restarted late (the delay hid
        # behind the previous group's retirement): settle those debts
        # before calling the remainder issue-bound.
        backend = min(complete, stalls_end) - max(last, fetch)
        if backend > 0:
            if bypass_penalized:
                take = min(backend, self.bypass_penalty)
                classes["bypass_delay"] += take
                backend -= take
            take = min(backend, self._recovery_debt)
            classes["mispredict_recovery"] += take
            self._recovery_debt -= take
            backend -= take
            take = min(backend, self._extra_debt)
            classes[extra_class] += take
            self._extra_debt -= take
            backend -= take
            take = min(backend, self._serialize_debt)
            classes["drain"] += take
            self._serialize_debt -= take
            backend -= take
            classes["issue_bound"] += backend
        # Cycles in (max(last, complete), stalls_end]: complete but
        # not retired — commit backpressure.
        drain = stalls_end - max(last, complete)
        if drain > 0:
            classes["drain"] += drain
        self._last_retire = retire

    # ------------------------------------------------------------------

    @property
    def total(self) -> int:
        return sum(self.classes.values())

    def finish(self, cycles: int) -> dict:
        """The final attribution; raises if it does not partition
        *cycles* exactly (an accounting bug, never data-dependent)."""
        if self.total != cycles:
            raise ConfigError(
                f"cycle attribution lost cycles: classes sum to "
                f"{self.total}, run took {cycles}")
        return dict(self.classes)


def render_attribution(attribution: dict, cycles: int = None,
                       title: str = "cycle attribution") -> str:
    """A readable table of one attribution (classes in report order)."""
    if cycles is None:
        cycles = sum(attribution.values())
    lines = [f"{title} ({cycles} cycles)"]
    for name in CYCLE_CLASSES:
        count = attribution.get(name, 0)
        pct = 100.0 * count / cycles if cycles else 0.0
        bar = "#" * int(round(pct / 2))
        lines.append(f"  {name:20s} {count:10d}  {pct:5.1f}%  {bar}")
    extras = sorted(set(attribution) - set(CYCLE_CLASSES))
    for name in extras:
        count = attribution[name]
        pct = 100.0 * count / cycles if cycles else 0.0
        lines.append(f"  {name:20s} {count:10d}  {pct:5.1f}%")
    return "\n".join(lines)


def diff_attribution(label_a: str, a: dict, label_b: str, b: dict) -> str:
    """A side-by-side attribution comparison of two runs."""
    total_a = sum(a.values()) or 1
    total_b = sum(b.values()) or 1
    width = max(len(label_a), len(label_b), 10)
    lines = [f"  {'class':20s} {label_a:>{width}s} "
             f"{label_b:>{width}s} {'delta':>10s}"]
    names = [n for n in CYCLE_CLASSES if n in a or n in b]
    names += sorted((set(a) | set(b)) - set(CYCLE_CLASSES))
    for name in names:
        va, vb = a.get(name, 0), b.get(name, 0)
        pa = 100.0 * va / total_a
        pb = 100.0 * vb / total_b
        lines.append(f"  {name:20s} "
                     f"{f'{va} ({pa:.1f}%)':>{width}s} "
                     f"{f'{vb} ({pb:.1f}%)':>{width}s} "
                     f"{vb - va:+10d}")
    lines.append(f"  {'total':20s} {total_a:>{width}d} "
                 f"{total_b:>{width}d} {total_b - total_a:+10d}")
    return "\n".join(lines)


__all__ = ["CYCLE_CLASSES", "CycleAccountant", "render_attribution",
           "diff_attribution"]
