"""Span tracing: timed intervals over the segment lifecycle.

Counters say *how often*; spans say *when and for how long*. A
:class:`SpanRecorder` collects named, nestable intervals on named
tracks, each tagged with one of two timebases:

* :data:`CYCLES` — simulated time. The segment lifecycle lives here:
  fill-unit collection windows, the fill-pipeline optimize/verify
  window (subdivided per pass), trace-cache residency spans, and
  insert/reuse/evict instants.
* :data:`WALL` — host time in microseconds since the recorder was
  created. The execution layer's job lifecycle lives here: submit,
  cache probe, worker execution, result handling.

Spans are export-format-agnostic records; the Chrome-trace/Perfetto
serialization lives in :mod:`repro.telemetry.exporters.chrometrace`.

Cost model: recording is allocation-light (one dict per finished
span), and a *detached* recorder — :data:`NULL_SPANS`, what every
instrumented component holds by default — is a shared null object
whose methods are no-ops, exactly like the null event stream. The
instrumented components additionally guard their span emission behind
``spans is not None`` so the simulated machine's hot paths pay nothing
when tracing is off; simulated cycle counts are bit-for-bit identical
with spans on or off (spans only observe, never sequence).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

#: timebase tag: timestamps are simulated cycles.
CYCLES = "cycles"
#: timebase tag: timestamps are host microseconds (recorder-relative).
WALL = "wall"

TIMEBASES = (CYCLES, WALL)


class SpanHandle:
    """One open span; ``end()`` closes it, ``annotate()`` adds args."""

    __slots__ = ("recorder", "track", "timebase", "name", "start",
                 "args", "closed")

    def __init__(self, recorder: "SpanRecorder", track: str,
                 timebase: str, name: str, start: float,
                 args: Dict[str, Any]) -> None:
        self.recorder = recorder
        self.track = track
        self.timebase = timebase
        self.name = name
        self.start = start
        self.args = args
        self.closed = False

    def annotate(self, **args: Any) -> "SpanHandle":
        """Attach key/value arguments to the span (chainable)."""
        self.args.update(args)
        return self

    def end(self, ts: float, **args: Any) -> None:
        """Close the span at timestamp *ts* (same timebase as begin)."""
        if args:
            self.args.update(args)
        self.recorder._close(self, ts)


class _NullSpanHandle:
    """Handle issued by the null recorder: everything is a no-op."""

    __slots__ = ()

    def annotate(self, **args: Any) -> "_NullSpanHandle":
        return self

    def end(self, ts: float, **args: Any) -> None:
        pass


NULL_SPAN_HANDLE = _NullSpanHandle()


class SpanRecorder:
    """Collects finished spans and instants across tracks.

    A finished record is a plain dict::

        {"track": str, "timebase": CYCLES|WALL, "kind": "span"|"instant",
         "name": str, "ts": float, "dur": float, "args": dict}

    ``dur`` is 0.0 for instants. Records are kept in completion order;
    exporters sort per track as their format requires.
    """

    enabled = True

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._open: List[SpanHandle] = []
        self._wall_origin = time.perf_counter()

    # -- clocks ---------------------------------------------------------

    def now_wall(self) -> float:
        """Host microseconds since this recorder was created."""
        return (time.perf_counter() - self._wall_origin) * 1e6

    # -- recording ------------------------------------------------------

    def begin(self, track: str, name: str, ts: float,
              timebase: str = CYCLES, **args: Any) -> SpanHandle:
        """Open a span; close it with ``handle.end(ts)``."""
        handle = SpanHandle(self, track, timebase, name, float(ts), args)
        self._open.append(handle)
        return handle

    def span(self, track: str, name: str, ts: float, duration: float,
             timebase: str = CYCLES, **args: Any) -> None:
        """Record one already-complete span."""
        self.records.append({
            "track": track, "timebase": timebase, "kind": "span",
            "name": name, "ts": float(ts),
            "dur": max(float(duration), 0.0), "args": args})

    def instant(self, track: str, name: str, ts: float,
                timebase: str = CYCLES, **args: Any) -> None:
        """Record a point event (zero duration)."""
        self.records.append({
            "track": track, "timebase": timebase, "kind": "instant",
            "name": name, "ts": float(ts), "dur": 0.0, "args": args})

    def _close(self, handle: SpanHandle, ts: float) -> None:
        if handle.closed:
            return
        handle.closed = True
        try:
            self._open.remove(handle)
        except ValueError:
            pass
        self.span(handle.track, handle.name, handle.start,
                  float(ts) - handle.start, handle.timebase,
                  **handle.args)

    def end_open(self, ts: float, timebase: str = CYCLES) -> int:
        """Close every still-open span on *timebase* at *ts* (e.g.
        trace-cache residency spans at the end of a run); returns how
        many were closed."""
        victims = [h for h in self._open if h.timebase == timebase]
        for handle in victims:
            handle.end(ts)
        return len(victims)

    # -- inspection -----------------------------------------------------

    def by_name(self, name: str) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["name"] == name]

    def tracks(self) -> List[str]:
        """Track names in first-recorded order (deterministic)."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record["track"], None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.records)


class _NullSpanRecorder:
    """The detached fast path: every operation is a no-op."""

    enabled = False
    records: List[Dict[str, Any]] = []

    def now_wall(self) -> float:
        return 0.0

    def begin(self, track: str, name: str, ts: float,
              timebase: str = CYCLES, **args: Any) -> _NullSpanHandle:
        return NULL_SPAN_HANDLE

    def span(self, track: str, name: str, ts: float, duration: float,
             timebase: str = CYCLES, **args: Any) -> None:
        pass

    def instant(self, track: str, name: str, ts: float,
                timebase: str = CYCLES, **args: Any) -> None:
        pass

    def end_open(self, ts: float, timebase: str = CYCLES) -> int:
        return 0

    def by_name(self, name: str) -> List[Dict[str, Any]]:
        return []

    def tracks(self) -> List[str]:
        return []

    def __len__(self) -> int:
        return 0


NULL_SPANS = _NullSpanRecorder()


def active_or_none(recorder: Optional[Any]) -> Optional[SpanRecorder]:
    """*recorder* if it is a live :class:`SpanRecorder`, else ``None``
    — the form hot-path components store so their guard is a single
    ``is not None`` check."""
    if recorder is None or not getattr(recorder, "enabled", False):
        return None
    out: SpanRecorder = recorder
    return out


__all__ = ["CYCLES", "WALL", "TIMEBASES", "SpanHandle", "SpanRecorder",
           "NULL_SPANS", "NULL_SPAN_HANDLE", "active_or_none"]
