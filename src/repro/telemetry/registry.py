"""Hierarchical metric registry: counters, gauges, histograms.

Every instrumented component records against dot-separated scopes
(``fetch.tc.hits``, ``fillunit.opts.reassoc.applied``,
``backend.bypass.cross_cluster``). The registry is the single source
of truth for run statistics: :class:`~repro.core.results.SimResult`'s
counter fields are *derived from* it at the end of a run, and the full
per-scope snapshot is folded into ``SimResult.telemetry``.

Two properties the timing model depends on:

* **Determinism.** ``flat()`` and ``snapshot()`` iterate scopes in
  sorted order, so two identical runs produce identical snapshots.
* **Near-zero overhead when disabled.** A registry constructed with
  ``enabled=False`` hands out shared null metrics whose mutators are
  no-ops; callers cache the handle once and pay only an empty method
  call on the hot path.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError

_SCOPE_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("scope", "value")

    kind = "counter"

    def __init__(self, scope: str) -> None:
        self.scope = scope
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def snapshot_value(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("scope", "value")

    kind = "gauge"

    def __init__(self, scope: str) -> None:
        self.scope = scope
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot_value(self) -> float:
        return self.value


class Histogram:
    """A distribution summary over non-negative integer observations.

    Keeps count/total/min/max plus power-of-two bucket counts: bucket
    ``k`` holds observations with ``bit_length() == k`` (i.e. values in
    ``[2^(k-1), 2^k)``; zero lands in bucket 0).
    """

    __slots__ = ("scope", "count", "total", "min", "max", "buckets")

    kind = "histogram"

    def __init__(self, scope: str) -> None:
        self.scope = scope
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot_value(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): self.buckets[k]
                        for k in sorted(self.buckets)},
        }


class _NullMetric:
    """Shared do-nothing metric for disabled registries."""

    __slots__ = ()

    scope = ""
    value = 0
    count = 0
    total = 0
    mean = 0.0

    def add(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: int) -> None:
        pass

    def snapshot_value(self) -> int:
        return 0


NULL_METRIC = _NullMetric()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class TelemetryRegistry:
    """Named-scope metric storage with get-or-create semantics."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, Any] = {}
        #: memoized ``counters()`` result, keyed by registry size
        self._counter_cache: Tuple[int, List[Counter]] = (-1, [])

    # ------------------------------------------------------------------

    def _get(self, scope: str, kind: str) -> Any:
        if not self.enabled:
            return NULL_METRIC
        metric = self._metrics.get(scope)
        if metric is None:
            if not _SCOPE_RE.match(scope):
                raise ConfigError(
                    f"invalid telemetry scope {scope!r}: expected "
                    "dot-separated [a-z0-9_] segments")
            metric = _KINDS[kind](scope)
            self._metrics[scope] = metric
        elif metric.kind != kind:
            raise ConfigError(
                f"telemetry scope {scope!r} already registered as a "
                f"{metric.kind}, not a {kind}")
        return metric

    def counter(self, scope: str) -> Counter:
        return self._get(scope, "counter")

    def gauge(self, scope: str) -> Gauge:
        return self._get(scope, "gauge")

    def histogram(self, scope: str) -> Histogram:
        return self._get(scope, "histogram")

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, scope: str) -> bool:
        return scope in self._metrics

    def value(self, scope: str, default: Any = 0) -> Any:
        """The current value of one scope (0 when never registered)."""
        metric = self._metrics.get(scope)
        return default if metric is None else metric.snapshot_value()

    def counters(self) -> List[Counter]:
        """Live :class:`Counter` handles, in registration order.

        Registration order is deterministic for a fixed code path (the
        engine constructs and first-touches metrics in a fixed
        sequence), which is all the replay layer needs: it records
        *(handle, delta)* pairs against the live objects themselves,
        so ordering only affects record layout, not meaning.

        The replay layer calls this on every armed fetch group, so the
        result is memoized until a new metric registers (metrics are
        never removed); treat the returned list as read-only.
        """
        size, cached = self._counter_cache
        if size == len(self._metrics):
            return cached
        out = [m for m in self._metrics.values() if m.kind == "counter"]
        self._counter_cache = (len(self._metrics), out)
        return out

    def flat(self) -> Dict[str, Any]:
        """``{scope: value}`` over every registered metric, sorted by
        scope — the JSON-safe form folded into ``SimResult.telemetry``."""
        return {scope: self._metrics[scope].snapshot_value()
                for scope in sorted(self._metrics)}

    def snapshot(self) -> Dict[str, Any]:
        """The same data as :meth:`flat`, nested by scope segment:
        ``fetch.tc.hits`` becomes ``{"fetch": {"tc": {"hits": N}}}``."""
        tree: Dict[str, Any] = {}
        for scope, value in self.flat().items():
            node = tree
            parts = scope.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = value
        return tree


#: a process-wide disabled registry: every handle is :data:`NULL_METRIC`.
NULL_REGISTRY = TelemetryRegistry(enabled=False)

__all__ = ["Counter", "Gauge", "Histogram", "TelemetryRegistry",
           "NULL_METRIC", "NULL_REGISTRY"]
