"""Shared loading of JSONL telemetry event archives.

One loader for every consumer of ``--telemetry-out`` files —
``tools/attribution_report.py``, ``tools/compare_runs.py`` and the
exporters — with uniform malformed-line reporting: a bad line raises
:class:`MalformedLineError` naming the file, the 1-based line number
and a snippet, or (``on_error="skip"``/``"warn"``) is counted and
skipped so one truncated line does not discard a whole archive.
"""

from __future__ import annotations

import json
import sys
from typing import Any, List, Tuple

from repro.telemetry.events import RUN_FINISHED, Event


class MalformedLineError(ValueError):
    """A JSONL archive line that could not be decoded."""

    def __init__(self, path: str, line_no: int, snippet: str,
                 reason: str) -> None:
        self.path = path
        self.line_no = line_no
        self.snippet = snippet
        self.reason = reason
        super().__init__(
            f"{path}:{line_no}: malformed event line ({reason}): "
            f"{snippet!r}")


def read_events(path: Any, on_error: str = "raise") -> List[Event]:
    """Load a JSONL event archive back into :class:`Event` objects.

    *on_error* is one of ``"raise"`` (default), ``"warn"`` (report the
    bad line on stderr and continue) or ``"skip"`` (silently drop it).
    A line is malformed when it is not a JSON object or lacks the
    ``kind`` field.
    """
    if on_error not in ("raise", "warn", "skip"):
        raise ValueError(f"unknown on_error mode {on_error!r}")
    events: List[Event] = []
    name = str(path)
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            reason = None
            payload: Any = None
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                reason = f"invalid JSON: {exc.msg}"
            if reason is None and not isinstance(payload, dict):
                reason = "not a JSON object"
            if reason is None and "kind" not in payload:
                reason = "missing 'kind' field"
            if reason is not None:
                snippet = line if len(line) <= 60 else line[:57] + "..."
                error = MalformedLineError(name, line_no, snippet, reason)
                if on_error == "raise":
                    raise error
                if on_error == "warn":
                    print(f"warning: {error}", file=sys.stderr)
                continue
            kind = payload.pop("kind")
            cycle = payload.pop("cycle", 0)
            events.append(Event(kind, cycle, payload))
    return events


def load_attribution_runs(path: Any, on_error: str = "raise"
                          ) -> List[Tuple[str, int, dict]]:
    """``(label, cycles, attribution)`` per finished run in *path* —
    the shared form behind the attribution report and run comparison
    tools."""
    runs: List[Tuple[str, int, dict]] = []
    for event in read_events(path, on_error=on_error):
        if event.kind != RUN_FINISHED:
            continue
        data = event.data
        label = f"{data.get('benchmark', '?')}/{data.get('label', '?')}"
        runs.append((label, data.get("cycles", 0),
                     data.get("attribution") or {}))
    return runs


__all__ = ["MalformedLineError", "read_events", "load_attribution_runs"]
