"""Host-time profiler: where the simulator's own wall-time goes.

The cycle accountant explains *simulated* time; this module explains
*host* time — the prerequisite ROADMAP names for segment-level timing
replay ("find where time actually goes") and for sizing a simulation
service. A :class:`HostProfiler` accumulates wall-clock seconds into
named scopes via lightweight ``perf_counter`` pairs, and knows how to
instrument a replay engine without touching its code: it wraps each
:class:`~repro.core.stages.base.PipelineStage` (per-stage attribution
of the stage loop) and each fill-unit optimization pass (per-pass
attribution of fill work) in delegating proxies.

The wrappers forward every hook faithfully, so simulated cycle counts
are bit-for-bit identical with or without the profiler attached; only
wall time changes (instrumented replays run slower — that is the cost
of asking). An unattached engine pays nothing.

Reported by the ``trace`` CLI verb and rendered offline by
``tools/hostprof_report.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
import time
from typing import Any, Dict, Iterator, List, Optional

#: schema tag for serialized profiles (tools/hostprof_report.py).
HOSTPROF_SCHEMA_VERSION = 1


class HostProfiler:
    """Scoped wall-time accumulation."""

    def __init__(self) -> None:
        #: scope -> [calls, seconds]
        self.totals: Dict[str, List[float]] = {}

    # -- recording ------------------------------------------------------

    def add(self, scope: str, seconds: float, calls: int = 1) -> None:
        entry = self.totals.get(scope)
        if entry is None:
            self.totals[scope] = [float(calls), seconds]
        else:
            entry[0] += calls
            entry[1] += seconds

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    # -- engine instrumentation -----------------------------------------

    def attach(self, engine: Any) -> None:
        """Instrument *engine* in place: every pipeline stage is timed
        under ``stage.<name>`` and every fill-unit pass under
        ``fillpass.<name>``. Attach before ``run()``."""
        engine.stages = [_ProfiledStage(stage, self)
                         for stage in engine.stages]
        fill_unit = getattr(engine, "fill_unit", None)
        if fill_unit is not None:
            manager = fill_unit.passes
            manager.passes = [_TimedPass(opt_pass, self)
                              for opt_pass in manager.passes]

    # -- reporting ------------------------------------------------------

    def total_seconds(self, prefix: str = "") -> float:
        return sum(seconds for scope, (_, seconds) in self.totals.items()
                   if scope.startswith(prefix))

    def shares(self, prefix: str = "") -> Dict[str, float]:
        """``{scope: fraction}`` over the scopes matching *prefix*,
        normalized to sum to 1.0 (empty when nothing matched)."""
        matched = {scope: seconds
                   for scope, (_, seconds) in self.totals.items()
                   if scope.startswith(prefix)}
        total = sum(matched.values())
        if total <= 0.0:
            return {scope: 0.0 for scope in sorted(matched)}
        return {scope: seconds / total
                for scope, seconds in sorted(matched.items())}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (see ``tools/hostprof_report.py``)."""
        return {
            "schema": HOSTPROF_SCHEMA_VERSION,
            "scopes": {
                scope: {"calls": int(calls), "seconds": seconds}
                for scope, (calls, seconds)
                in sorted(self.totals.items())
            },
        }

    def render(self, title: str = "host-time profile") -> str:
        """An aligned table, scopes sorted by time descending."""
        rows = sorted(self.totals.items(), key=lambda kv: -kv[1][1])
        total = sum(seconds for _, (_, seconds) in rows) or 1.0
        lines = [title,
                 f"  {'scope':28s} {'calls':>10s} {'seconds':>9s} "
                 f"{'share':>6s}"]
        for scope, (calls, seconds) in rows:
            lines.append(f"  {scope:28s} {int(calls):10d} "
                         f"{seconds:9.4f} {100.0 * seconds / total:5.1f}%")
        return "\n".join(lines)


class _ProfiledStage:
    """Delegating proxy timing one pipeline stage's hooks.

    ``process`` dominates (once per instruction); the group hooks are
    folded into the same scope so a stage's scope is its whole cost.
    """

    def __init__(self, stage: Any, profiler: HostProfiler) -> None:
        self._stage = stage
        self._profiler = profiler
        self.name = stage.name
        self._scope = f"stage.{stage.name}"

    def begin_run(self, state: Any) -> None:
        start = time.perf_counter()
        self._stage.begin_run(state)
        self._profiler.add(self._scope, time.perf_counter() - start)

    def begin_group(self, state: Any) -> None:
        start = time.perf_counter()
        self._stage.begin_group(state)
        self._profiler.add(self._scope, time.perf_counter() - start)

    def process(self, state: Any, slot: Any) -> None:
        start = time.perf_counter()
        self._stage.process(state, slot)
        self._profiler.add(self._scope, time.perf_counter() - start)

    def end_group(self, state: Any) -> None:
        start = time.perf_counter()
        self._stage.end_group(state)
        self._profiler.add(self._scope, time.perf_counter() - start)

    def finish_run(self, state: Optional[Any], result: Any) -> None:
        start = time.perf_counter()
        self._stage.finish_run(state, result)
        self._profiler.add(self._scope, time.perf_counter() - start)

    def __getattr__(self, attr: str) -> Any:
        # Component attributes some stages expose (e.g. the fetch
        # stage's trace cache) stay reachable through the proxy.
        return getattr(self._stage, attr)


class _TimedPass:
    """Delegating proxy timing one optimization pass's ``apply``."""

    def __init__(self, opt_pass: Any, profiler: HostProfiler) -> None:
        self._pass = opt_pass
        self._profiler = profiler
        self.name = opt_pass.name
        self.surface = opt_pass.surface
        self._scope = f"fillpass.{opt_pass.name}"

    def apply(self, segment: Any, ctx: Any) -> Dict[str, int]:
        start = time.perf_counter()
        stats: Dict[str, int] = self._pass.apply(segment, ctx)
        self._profiler.add(self._scope, time.perf_counter() - start)
        return stats


__all__ = ["HostProfiler", "HOSTPROF_SCHEMA_VERSION"]
