"""Structured event stream.

Instrumented components emit typed events — a segment finalized by the
fill unit, an optimization applied or rejected (with its reason), a
branch promotion, a trace cache misfetch, a checkpoint-repair stall —
into one :class:`EventStream` per run. The stream keeps a bounded
ring buffer (the most recent ``capacity`` events are always available
for post-mortem inspection) and forwards every event to pluggable
sinks: a JSONL file, an in-memory list, or an arbitrary callback.

Event kinds and payload schemas are documented in
``docs/observability.md``. High-frequency per-instruction timing
events (:data:`INSTR_RETIRED`) are opt-in: the pipeline only emits
them when an attached sink declares ``wants_instr_timing`` (see
:class:`~repro.core.debug.TimingTrace`), so ordinary profiled runs pay
nothing per instruction.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

# -- event kinds --------------------------------------------------------

RUN_STARTED = "run.started"
RUN_FINISHED = "run.finished"
SEGMENT_BUILT = "segment.built"
SEGMENT_DEDUPED = "segment.deduped"
OPT_APPLIED = "opt.applied"
OPT_REJECTED = "opt.rejected"
BRANCH_PROMOTED = "branch.promoted"
BRANCH_MISPREDICT = "branch.mispredict"
FETCH_MISFETCH = "fetch.misfetch"
CHECKPOINT_REPAIR = "rename.checkpoint_repair"
TC_EVICT = "tc.evict"
INSTR_RETIRED = "instr.retired"
VERIFY_VIOLATION = "verify.violation"
# Execution-service progress (see repro.exec.service): job lifecycle
# on the sweep runner's telemetry stream. `cycle` is always 0 — these
# are wall-clock events, not simulated-time events.
EXEC_JOB_STARTED = "exec.job.started"
EXEC_JOB_FINISHED = "exec.job.finished"
EXEC_JOB_CACHED = "exec.job.cached"
EXEC_WORKER_RETRY = "exec.worker.retry"

EVENT_KINDS = (
    RUN_STARTED, RUN_FINISHED, SEGMENT_BUILT, SEGMENT_DEDUPED,
    OPT_APPLIED, OPT_REJECTED, BRANCH_PROMOTED, BRANCH_MISPREDICT,
    FETCH_MISFETCH, CHECKPOINT_REPAIR, TC_EVICT, INSTR_RETIRED,
    VERIFY_VIOLATION, EXEC_JOB_STARTED, EXEC_JOB_FINISHED,
    EXEC_JOB_CACHED, EXEC_WORKER_RETRY,
)


@dataclass(frozen=True)
class Event:
    """One telemetry event: a kind, the cycle it occurred, and a
    kind-specific payload."""

    kind: str
    cycle: int
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The flat JSON-safe form written by :class:`JsonlSink`."""
        payload = {"kind": self.kind, "cycle": self.cycle}
        payload.update(self.data)
        return payload


# -- sinks --------------------------------------------------------------

class MemorySink:
    """Retains every delivered event in a list (tests, notebooks)."""

    wants_instr_timing = False

    def __init__(self, kinds=None) -> None:
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.events: list = []

    def handle(self, event: Event) -> None:
        if self.kinds is None or event.kind in self.kinds:
            self.events.append(event)

    def by_kind(self, kind: str) -> list:
        return [e for e in self.events if e.kind == kind]


class CallbackSink:
    """Forwards each event to an arbitrary callable."""

    wants_instr_timing = False

    def __init__(self, callback, kinds=None,
                 instr_timing: bool = False) -> None:
        self.callback = callback
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.wants_instr_timing = instr_timing

    def handle(self, event: Event) -> None:
        if self.kinds is None or event.kind in self.kinds:
            self.callback(event)


class JsonlSink:
    """Writes one JSON object per line to *path* (or an open handle)."""

    wants_instr_timing = False

    def __init__(self, path, kinds=None) -> None:
        self.kinds = frozenset(kinds) if kinds is not None else None
        if hasattr(path, "write"):
            self.path = getattr(path, "name", "<stream>")
            self._handle = path
            self._owns = False
        else:
            self.path = path
            self._handle = open(path, "w")
            self._owns = True
        self.written = 0

    def handle(self, event: Event) -> None:
        if self.kinds is not None and event.kind not in self.kinds:
            return
        json.dump(event.to_dict(), self._handle,
                  separators=(",", ":"), sort_keys=True)
        self._handle.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._owns:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl(path) -> list:
    """Load a JSONL event file back into :class:`Event` objects.

    Thin wrapper over :func:`repro.telemetry.io.read_events` (the
    shared archive loader with malformed-line reporting), kept for
    source compatibility.
    """
    from repro.telemetry.io import read_events
    return read_events(path, on_error="raise")


# -- the stream ---------------------------------------------------------

class EventStream:
    """Bounded retention plus fan-out to sinks."""

    enabled = True

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._sinks: list = []
        self.emitted = 0
        #: set when an attached sink asked for per-instruction timing
        #: events; the pipeline checks this once per run.
        self.wants_instr_timing = False

    def attach(self, sink) -> None:
        """Register *sink* (anything with ``handle(event)``)."""
        self._sinks.append(sink)
        if getattr(sink, "wants_instr_timing", False):
            self.wants_instr_timing = True

    def emit(self, kind: str, cycle: int, **data) -> None:
        event = Event(kind, cycle, data)
        self.emitted += 1
        self._ring.append(event)
        for sink in self._sinks:
            sink.handle(event)

    # -- retention ------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events that aged out of the ring buffer (sinks still saw
        them when attached at the time)."""
        return self.emitted - len(self._ring)

    def recent(self, kind=None) -> list:
        """The retained events, oldest first, optionally one kind."""
        if kind is None:
            return list(self._ring)
        return [e for e in self._ring if e.kind == kind]

    def __len__(self) -> int:
        return len(self._ring)


class _NullEventStream:
    """The disabled fast path: every operation is a no-op."""

    enabled = False
    wants_instr_timing = False
    emitted = 0
    dropped = 0

    def attach(self, sink) -> None:
        raise RuntimeError("cannot attach a sink to the null event "
                           "stream; enable telemetry first")

    def emit(self, kind: str, cycle: int, **data) -> None:
        pass

    def recent(self, kind=None) -> list:
        return []

    def __len__(self) -> int:
        return 0


NULL_EVENT_STREAM = _NullEventStream()

__all__ = ["Event", "EventStream", "MemorySink", "CallbackSink",
           "JsonlSink", "read_jsonl", "NULL_EVENT_STREAM", "EVENT_KINDS",
           "RUN_STARTED", "RUN_FINISHED", "SEGMENT_BUILT",
           "SEGMENT_DEDUPED", "OPT_APPLIED", "OPT_REJECTED",
           "BRANCH_PROMOTED", "BRANCH_MISPREDICT", "FETCH_MISFETCH",
           "CHECKPOINT_REPAIR", "TC_EVICT", "INSTR_RETIRED",
           "VERIFY_VIOLATION"]
