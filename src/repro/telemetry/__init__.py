"""Observability for the whole pipeline.

One :class:`Telemetry` session bundles the three layers:

* a hierarchical metric registry (:mod:`repro.telemetry.registry`) —
  named-scope counters, gauges and histograms;
* a structured event stream (:mod:`repro.telemetry.events`) — typed
  events with bounded ring-buffer retention and pluggable sinks;
* cycle attribution (:mod:`repro.telemetry.attribution`) — a top-down
  classification of every pipeline cycle.

Usage::

    from repro import SimConfig, Simulator, workloads
    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    telemetry.attach_jsonl("run.jsonl")
    result = Simulator(SimConfig.paper(),
                       telemetry=telemetry).run(workloads.build("li"))
    print(result.attribution)           # cycle classes, sum == cycles
    print(result.telemetry)             # flat {scope: value} snapshot
    telemetry.close()

Passing no session costs (almost) nothing: the pipeline still keeps
its own registry (the single source of truth behind ``SimResult``'s
counters) but emits no events and skips cycle accounting entirely.
"""

from __future__ import annotations

from repro.telemetry.attribution import (
    CYCLE_CLASSES,
    CycleAccountant,
    diff_attribution,
    render_attribution,
)
from repro.telemetry.events import (
    EventStream,
    JsonlSink,
    MemorySink,
    CallbackSink,
    NULL_EVENT_STREAM,
    read_jsonl,
)
from repro.telemetry.registry import (
    NULL_REGISTRY,
    TelemetryRegistry,
)
from repro.telemetry.spans import (
    NULL_SPANS,
    SpanRecorder,
)


class Telemetry:
    """One observability session.

    A session may span several runs (e.g. every leg of a ``compare``);
    registry counters then accumulate across them, while each
    :class:`~repro.core.results.SimResult` still reports per-run
    deltas. *attribution* turns the per-instruction cycle-accounting
    feed on (a few percent of replay time); *event_capacity* bounds
    the ring buffer; *spans* attaches a
    :class:`~repro.telemetry.spans.SpanRecorder` capturing the segment
    lifecycle and execution-service jobs as exportable timelines (off
    by default — span capture retains every record).
    """

    def __init__(self, enabled: bool = True, event_capacity: int = 4096,
                 attribution: bool = True, spans: bool = False) -> None:
        self.enabled = enabled
        self.registry = (TelemetryRegistry() if enabled
                         else NULL_REGISTRY)
        self.events = (EventStream(event_capacity) if enabled
                       else NULL_EVENT_STREAM)
        self.attribution = bool(attribution and enabled)
        self.spans = (SpanRecorder() if spans and enabled
                      else NULL_SPANS)
        self._sinks: list = []

    # ------------------------------------------------------------------

    def enable_spans(self) -> SpanRecorder:
        """Attach (or return the existing) span recorder. Must happen
        before the instrumented components are constructed — they
        capture the recorder at construction time."""
        if not self.enabled:
            raise RuntimeError("cannot record spans on a disabled "
                               "telemetry session")
        if not self.spans.enabled:
            self.spans = SpanRecorder()
        recorder: SpanRecorder = self.spans
        return recorder

    # ------------------------------------------------------------------

    def attach(self, sink) -> None:
        """Attach any event sink (``handle(event)``) to the stream."""
        self.events.attach(sink)
        self._sinks.append(sink)

    def attach_jsonl(self, path, kinds=None) -> JsonlSink:
        """Attach a JSONL file sink; returns it (for ``close()``)."""
        sink = JsonlSink(path, kinds=kinds)
        self.attach(sink)
        return sink

    def attach_memory(self, kinds=None) -> MemorySink:
        """Attach and return an in-memory sink."""
        sink = MemorySink(kinds=kinds)
        self.attach(sink)
        return sink

    def close(self) -> None:
        """Close every sink that supports it (flushes JSONL files)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


__all__ = ["Telemetry", "TelemetryRegistry", "EventStream", "JsonlSink",
           "MemorySink", "CallbackSink", "CycleAccountant",
           "CYCLE_CLASSES", "render_attribution", "diff_attribution",
           "read_jsonl", "NULL_REGISTRY", "NULL_EVENT_STREAM",
           "SpanRecorder", "NULL_SPANS"]
