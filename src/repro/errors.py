"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AssemblerError(ReproError):
    """Raised when assembly source cannot be assembled.

    Carries the source line number (1-based) when known.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded into, or decoded
    from, its 32-bit binary form."""


class ExecutionError(ReproError):
    """Raised when the functional machine cannot execute an instruction
    (unmapped memory, misaligned access, bad opcode, runaway program)."""


class ConfigError(ReproError):
    """Raised for inconsistent simulator configuration values."""


class SegmentError(ReproError):
    """Raised when a trace segment violates a structural invariant."""


class ReplayMismatchError(ReproError):
    """Raised by the timing-replay shadow checker when a re-simulated
    segment visit does not reproduce its memoized timing delta
    bit-for-bit (see :mod:`repro.core.replay`)."""
