"""repro — reproduction of "Putting the Fill Unit to Work: Dynamic
Optimizations for Trace Cache Microprocessors" (Friendly, Patel, Patt;
MICRO-31, 1998).

The package implements, from scratch, everything the paper's
evaluation rests on:

* a SimpleScalar-style ISA with assembler and functional machine
  (:mod:`repro.isa`, :mod:`repro.asm`, :mod:`repro.machine`);
* the memory hierarchy and branch prediction complex
  (:mod:`repro.cache`, :mod:`repro.branch`);
* the trace cache and fill unit with the paper's four dynamic trace
  optimizations (:mod:`repro.tracecache`, :mod:`repro.fillunit`);
* a 16-wide clustered trace-cache processor timing model
  (:mod:`repro.core`);
* run observability — hierarchical counters, structured events, exact
  cycle attribution (:mod:`repro.telemetry`);
* fifteen synthetic benchmarks standing in for SPECint95 + UNIX apps
  (:mod:`repro.workloads`), and the experiment harness regenerating
  every table and figure (:mod:`repro.harness`).

Quickstart::

    from repro import SimConfig, Simulator, workloads
    from repro.fillunit.opts import OptimizationConfig

    program = workloads.build("m88ksim")
    simulator = Simulator(SimConfig.paper())
    trace = simulator.trace_program(program)

    baseline = simulator.run(trace, "m88ksim", "baseline")
    optimized = Simulator(
        SimConfig.paper(OptimizationConfig.all())
    ).run(trace, "m88ksim", "optimized")

    print(f"IPC {baseline.ipc:.2f} -> {optimized.ipc:.2f} "
          f"(+{optimized.improvement_over(baseline):.1f}%)")
"""

from repro import workloads
from repro.asm import assemble
from repro.core import SimConfig, SimResult, Simulator, simulate
from repro.fillunit.opts.base import OptimizationConfig
from repro.machine import Executor, run_program
from repro.program import Program
from repro.telemetry import Telemetry

__version__ = "1.0.0"

__all__ = [
    "assemble",
    "Program",
    "Executor",
    "run_program",
    "SimConfig",
    "SimResult",
    "Simulator",
    "simulate",
    "OptimizationConfig",
    "Telemetry",
    "workloads",
    "__version__",
]
