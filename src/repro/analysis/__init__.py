"""Result aggregation and summary statistics."""

from repro.analysis.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    improvement_percent,
    summarize_improvements,
)

__all__ = [
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "improvement_percent",
    "summarize_improvements",
]
