"""Result aggregation, summary statistics, and static analysis.

``repro.analysis.stats`` aggregates benchmark results;
``repro.analysis.static`` analyses program images before any
simulation (CFG, dataflow, fill-unit opportunity bounds, lint);
``repro.analysis.selfcheck`` turns the same discipline on the
simulator's own source (replay-soundness self-audit) — see
``docs/static-analysis.md``.
"""

from repro.analysis.selfcheck import SelfAuditReport, run_self_audit
from repro.analysis.static import AnalysisReport, analyze_program
from repro.analysis.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    improvement_percent,
    summarize_improvements,
)

__all__ = [
    "AnalysisReport",
    "SelfAuditReport",
    "analyze_program",
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "improvement_percent",
    "run_self_audit",
    "summarize_improvements",
]
