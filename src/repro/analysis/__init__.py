"""Result aggregation, summary statistics, and static analysis.

``repro.analysis.stats`` aggregates benchmark results;
``repro.analysis.static`` analyses program images before any
simulation (CFG, dataflow, fill-unit opportunity bounds, lint) — see
``docs/static-analysis.md``.
"""

from repro.analysis.static import AnalysisReport, analyze_program
from repro.analysis.stats import (
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    improvement_percent,
    summarize_improvements,
)

__all__ = [
    "AnalysisReport",
    "analyze_program",
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "improvement_percent",
    "summarize_improvements",
]
