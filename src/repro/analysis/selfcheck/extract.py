"""AST-based state-model extraction over the simulator's own source.

Given a :class:`~repro.analysis.selfcheck.model.ComponentSpec`, this
module parses the component's module (via ``importlib`` spec lookup —
no import is executed), walks the class definition, and produces a
:class:`ComponentModel`: every instance attribute assigned in
``__init__``, every attribute mutated on the simulate path (transitively
through ``self`` helper calls, augmented assignment, container-mutation
method calls, ``heapq`` calls, and locals aliasing ``self`` state —
including aliases returned by helpers, e.g. ``entries, tag =
self._locate(addr)``), and every attribute the digest surface reads.

The extractor is deliberately syntactic: it never executes simulator
code, so it can run in CI against any revision, and its few semantic
assumptions (attribute docstring hints, the alias patterns above) are
validated dynamically by :mod:`repro.analysis.selfcheck.fuzz`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
import importlib.util
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.selfcheck.model import (
    ATTR_CELLS_FIELD,
    CLASS_CONFIG,
    CLASS_COUNTER,
    CLASS_LIVE,
    CLASS_PRESENTATIONAL,
    CLASS_TIMING,
    REPLAY_CLASS,
    REPLAY_MODULE,
    ROLE_LIVE,
    ComponentSpec,
    StateSpec,
)

#: method names that mutate their receiver in place
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "move_to_end", "pop", "popitem", "popleft", "push",
    "remove", "reverse", "setdefault", "sort", "update",
})

#: ``heapq`` functions that mutate their first argument
HEAP_MUTATORS = frozenset({
    "heapify", "heappop", "heappush", "heappushpop", "heapreplace",
})

_HINT_RE = re.compile(r"\[replay:\s*([a-z]+)\]")


class ExtractionError(Exception):
    """The source tree no longer matches the declared state model."""


def module_source(module: str) -> Tuple[str, str]:
    """``(path, source)`` for *module*, without importing it."""
    spec = importlib.util.find_spec(module)
    if spec is None or spec.origin is None:
        raise ExtractionError(f"cannot locate module {module!r}")
    with open(spec.origin) as handle:
        return spec.origin, handle.read()


def parse_module(module: str) -> Tuple[str, ast.Module, List[str]]:
    """``(path, tree, source lines)`` for *module*."""
    path, source = module_source(module)
    return path, ast.parse(source, filename=path), source.splitlines()


def find_class(tree: ast.Module, name: str,
               module: str) -> ast.ClassDef:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    raise ExtractionError(f"class {name!r} not found in {module}")


def _is_staticmethod(node: ast.FunctionDef) -> bool:
    return any(isinstance(dec, ast.Name) and dec.id == "staticmethod"
               for dec in node.decorator_list)


def field_hint(lines: List[str], lineno: int) -> Optional[str]:
    """The ``[replay: <class>]`` marker for an attribute assigned on
    1-based *lineno*: a trailing comment on the line itself, or the
    contiguous ``#:`` doc-comment block immediately above it."""
    if 0 < lineno <= len(lines):
        match = _HINT_RE.search(lines[lineno - 1])
        if match:
            return match.group(1)
    row = lineno - 2
    while row >= 0 and lines[row].lstrip().startswith("#"):
        match = _HINT_RE.search(lines[row])
        if match:
            return match.group(1)
        row -= 1
    return None


@dataclass
class MethodFacts:
    """What one method does to ``self`` state."""

    name: str
    #: dotted self-attribute paths the method mutates
    mutated: Set[str] = field(default_factory=set)
    #: dotted self-attribute paths the method reads (all prefixes)
    reads: Set[str] = field(default_factory=set)
    #: names of ``self`` methods the method calls
    calls: Set[str] = field(default_factory=set)
    #: return aliasing: tuple position (or None for the whole value)
    #: -> self-attribute the returned object aliases
    return_aliases: Dict[Optional[int], str] = field(
        default_factory=dict)


class _MethodVisitor(ast.NodeVisitor):
    """Single-method walker collecting :class:`MethodFacts`.

    ``aliases`` maps local names to the ``self`` attribute whose
    container (or element) they alias; mutations through an alias are
    charged to the attribute. ``helper_aliases`` carries the previous
    extraction pass's per-method return aliasing so helper-returned
    aliases resolve on the second pass.
    """

    def __init__(self, func: ast.FunctionDef, self_name: str,
                 helper_aliases: Dict[str, Dict[Optional[int], str]]
                 ) -> None:
        self.facts = MethodFacts(func.name)
        self._self = self_name
        self._aliases: Dict[str, str] = {}
        self._helper_aliases = helper_aliases
        self._func = func

    # -- path resolution -----------------------------------------------

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted self-attribute path *node* denotes, or ``None``.

        Subscripts resolve to their container: an element of
        ``self._sets`` *is* ``self._sets`` for mutation purposes.
        """
        if isinstance(node, ast.Name):
            if node.id == self._self:
                return ""
            return self._aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            root = self.resolve(node.value)
            if root is None:
                return None
            return f"{root}.{node.attr}" if root else node.attr
        if isinstance(node, ast.Subscript):
            return self.resolve(node.value)
        return None

    def _read(self, path: Optional[str]) -> None:
        if path:
            self.facts.reads.add(path)

    def _mutate(self, path: Optional[str]) -> None:
        if path:
            self.facts.mutated.add(path)

    # -- assignment / mutation collection ------------------------------

    def _call_return_alias(self, call: ast.Call
                           ) -> Optional[Dict[Optional[int], str]]:
        """Return-alias spec when *call* invokes a ``self`` helper."""
        func = call.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id == self._self:
            return self._helper_aliases.get(func.attr)
        return None

    def _bind_alias(self, target: ast.AST, value: ast.AST) -> None:
        """Track locals that alias ``self`` state."""
        if isinstance(target, ast.Tuple) and \
                isinstance(value, ast.Call):
            spec = self._call_return_alias(value)
            for i, elt in enumerate(target.elts):
                if isinstance(elt, ast.Name):
                    path = spec.get(i) if spec else None
                    self._set_alias(elt.id, path)
            return
        if not isinstance(target, ast.Name):
            return
        path = self.resolve(value) if isinstance(
            value, (ast.Attribute, ast.Subscript)) else None
        if path is None and isinstance(value, ast.Call):
            spec = self._call_return_alias(value)
            if spec is not None:
                path = spec.get(None)
        self._set_alias(target.id, path)

    def _set_alias(self, name: str, path: Optional[str]) -> None:
        if path:
            self._aliases[name] = path
        else:
            self._aliases.pop(name, None)

    def _mutate_target(self, target: ast.AST) -> None:
        """Record the mutation a store into *target* causes."""
        if isinstance(target, ast.Attribute):
            base = self.resolve(target.value)
            if base is None:
                return
            if base == "":
                self._mutate(target.attr)
            elif "." not in base and base in self._aliases.values() \
                    and not self._attr_of_self(target.value):
                # field write through an element alias: the container
                # element changed, charge the container
                self._mutate(base)
            else:
                self._mutate(f"{base}.{target.attr}")
        elif isinstance(target, ast.Subscript):
            self._mutate(self.resolve(target.value))
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                self._mutate_target(elt)

    def _attr_of_self(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) or (
            isinstance(node, ast.Name) and node.id == self._self)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._mutate_target(target)
        self.visit(node.value)
        for target in node.targets:
            self._bind_alias(target, node.value)
            self._visit_store_subscripts(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._mutate_target(node.target)
        if node.value is not None:
            self.visit(node.value)
            self._bind_alias(node.target, node.value)
        self._visit_store_subscripts(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._mutate_target(node.target)
        self.visit(node.value)
        self._visit_store_subscripts(node.target)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._mutate_target(target)
            self._visit_store_subscripts(target)

    def _visit_store_subscripts(self, target: ast.AST) -> None:
        """Index expressions inside a store target are still reads."""
        for sub in ast.walk(target):
            if isinstance(sub, ast.Subscript):
                self.visit(sub.slice)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._bind_loop_target(node.target, node.iter)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def _bind_loop_target(self, target: ast.AST,
                          iter_expr: ast.AST) -> None:
        """Loop variables alias elements of the iterated container
        (``for busy in self._busy``, ``for i, x in enumerate(...)``,
        ``for a, b in zip(...)``)."""
        sources: List[ast.AST] = []
        if isinstance(iter_expr, ast.Call) and \
                isinstance(iter_expr.func, ast.Name) and \
                iter_expr.func.id in ("enumerate", "zip"):
            if iter_expr.func.id == "enumerate":
                sources = [ast.Constant(value=None)] + \
                    list(iter_expr.args[:1])
            else:
                sources = list(iter_expr.args)
        elif isinstance(iter_expr, (ast.Attribute, ast.Subscript)):
            if isinstance(target, ast.Name):
                self._set_alias(target.id, self.resolve(iter_expr))
            return
        if isinstance(target, ast.Tuple):
            for elt, src in zip(target.elts, sources):
                if isinstance(elt, ast.Name):
                    self._set_alias(elt.id, self.resolve(src))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in MUTATOR_METHODS:
                self._mutate(self.resolve(func.value))
            base = self.resolve(func.value)
            if base == "":
                self.facts.calls.add(func.attr)
            self._read(base)
            self.visit(func.value)
        elif isinstance(func, ast.Name):
            name = func.id
            if name in HEAP_MUTATORS and node.args:
                self._mutate(self.resolve(node.args[0]))
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id == "heapq" and \
                func.attr in HEAP_MUTATORS and node.args:
            self._mutate(self.resolve(node.args[0]))
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            path = self.resolve(node)
            if path:
                self._read(path)
            base = self.resolve(node.value)
            self._read(base)
        self.visit(node.value)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is None:
            return
        self.visit(node.value)
        if isinstance(node.value, ast.Tuple):
            for i, elt in enumerate(node.value.elts):
                path = self.resolve(elt)
                if path:
                    self.facts.return_aliases[i] = path.split(".")[0]
        else:
            path = self.resolve(node.value)
            if path:
                self.facts.return_aliases[None] = path.split(".")[0]

    def run(self) -> MethodFacts:
        for stmt in self._func.body:
            self.visit(stmt)
        return self.facts


def analyze_methods(cls_node: ast.ClassDef
                    ) -> Dict[str, MethodFacts]:
    """Per-method facts for every method of *cls_node*.

    Two passes: the first discovers return aliasing (helpers returning
    views of ``self`` containers), the second charges mutations made
    through those aliases.
    """
    methods = [node for node in cls_node.body
               if isinstance(node, ast.FunctionDef)]
    helper_aliases: Dict[str, Dict[Optional[int], str]] = {}
    facts: Dict[str, MethodFacts] = {}
    for _ in range(2):
        facts = {}
        for func in methods:
            if _is_staticmethod(func) or not func.args.args:
                facts[func.name] = MethodFacts(func.name)
                continue
            self_name = func.args.args[0].arg
            visitor = _MethodVisitor(func, self_name, helper_aliases)
            facts[func.name] = visitor.run()
        helper_aliases = {name: f.return_aliases
                          for name, f in facts.items()}
    return facts


def transitive_closure(facts: Dict[str, MethodFacts],
                       roots: Iterable[str]) -> Set[str]:
    """Methods reachable from *roots* via ``self`` calls."""
    seen: Set[str] = set()
    stack = [name for name in roots if name in facts]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        stack.extend(call for call in facts[name].calls
                     if call in facts and call not in seen)
    return seen


@dataclass
class FieldModel:
    """One instance attribute of a modeled component."""

    name: str
    line: int
    classification: str
    hint: Optional[str]
    #: simulate-path methods that mutate it
    step_mutators: Tuple[str, ...]
    #: key-side digest methods that read it
    digest_readers: Tuple[str, ...]


@dataclass
class ComponentModel:
    """The extracted state model of one component class."""

    spec: ComponentSpec
    path: str
    fields: Dict[str, FieldModel]
    method_names: Tuple[str, ...]
    #: closure of the spec's step entry points over self calls
    step_closure: Tuple[str, ...]
    #: every path read by key-side digest methods
    key_reads: Tuple[str, ...]
    #: every path read by restore-side digest methods
    restore_reads: Tuple[str, ...]

    def timing_fields(self) -> List[str]:
        return [name for name, f in self.fields.items()
                if f.classification == CLASS_TIMING]

    def covered_timing_fields(self) -> List[str]:
        return [name for name in self.timing_fields()
                if self.fields[name].digest_readers]


def _classify(spec: ComponentSpec, name: str, hint: Optional[str],
              mutated: bool) -> str:
    if hint in (CLASS_TIMING, CLASS_COUNTER, CLASS_PRESENTATIONAL,
                CLASS_CONFIG, CLASS_LIVE):
        assert hint is not None
        return hint
    root = name.split(".")[0]
    if name in spec.counters or root in spec.counters:
        return CLASS_COUNTER
    if name in spec.presentational or root in spec.presentational:
        return CLASS_PRESENTATIONAL
    if not mutated:
        return CLASS_CONFIG
    return CLASS_LIVE if spec.role == ROLE_LIVE else CLASS_TIMING


def extract_component(spec: ComponentSpec) -> ComponentModel:
    """Extract the state model :class:`ComponentSpec` declares."""
    path, tree, lines = parse_module(spec.module)
    cls_node = find_class(tree, spec.cls, spec.module)
    facts = analyze_methods(cls_node)
    missing = [m for m in spec.step_methods + spec.digest_methods
               if m not in facts]
    if missing:
        raise ExtractionError(
            f"{spec.label}: declared methods not found: {missing}")

    declared: Dict[str, int] = {}
    init = facts.get("__init__")
    if init is not None:
        for func in cls_node.body:
            if isinstance(func, ast.FunctionDef) and \
                    func.name == "__init__":
                for node in ast.walk(func):
                    target: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign):
                        target = node.targets[0]
                    elif isinstance(node, ast.AnnAssign):
                        target = node.target
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        declared.setdefault(target.attr, node.lineno)

    step = transitive_closure(facts, spec.step_methods)
    step_mutations: Dict[str, List[str]] = {}
    for name in sorted(step):
        for attr in facts[name].mutated:
            step_mutations.setdefault(attr, []).append(name)

    key_closure = transitive_closure(facts, spec.key_methods)
    restore_closure = transitive_closure(facts, spec.restore_methods)
    key_reads: Set[str] = set()
    for name in key_closure:
        key_reads |= facts[name].reads
    restore_reads: Set[str] = set()
    for name in restore_closure:
        restore_reads |= facts[name].reads

    fields: Dict[str, FieldModel] = {}
    universe = dict(declared)
    for attr in step_mutations:
        universe.setdefault(attr, declared.get(attr.split(".")[0], 0))
    for name, line in sorted(universe.items()):
        hint = field_hint(lines, line) if line else None
        mutators = tuple(step_mutations.get(name, ()))
        readers = tuple(sorted(
            m for m in spec.key_methods
            if name in facts[m].reads or any(
                name in facts[h].reads
                for h in transitive_closure(facts, (m,)))))
        fields[name] = FieldModel(
            name=name, line=line,
            classification=_classify(spec, name, hint, bool(mutators)),
            hint=hint, step_mutators=mutators,
            digest_readers=readers)

    return ComponentModel(
        spec=spec, path=path, fields=fields,
        method_names=tuple(sorted(facts)),
        step_closure=tuple(sorted(step)),
        key_reads=tuple(sorted(key_reads)),
        restore_reads=tuple(sorted(restore_reads)))


def extract_attr_cells(module: str = REPLAY_MODULE,
                       cls: str = REPLAY_CLASS) -> Tuple[str, ...]:
    """The controller's attribute-delta cells as engine-rooted dotted
    paths (``memsched.loads``, ``hierarchy.l1d.stats.accesses``, ...),
    statically recovered from the ``_attr_cells`` tuple."""
    _, tree, _ = parse_module(module)
    cls_node = find_class(tree, cls, module)
    for func in cls_node.body:
        if not (isinstance(func, ast.FunctionDef)
                and func.name == "__init__"):
            continue
        if len(func.args.args) < 2:
            break
        engine_param = func.args.args[1].arg
        aliases: Dict[str, str] = {engine_param: ""}

        def _resolve(node: ast.AST) -> Optional[str]:
            if isinstance(node, ast.Name):
                return aliases.get(node.id)
            if isinstance(node, ast.Attribute):
                root = _resolve(node.value)
                if root is None:
                    return None
                return f"{root}.{node.attr}" if root else node.attr
            return None

        cells: List[str] = []
        for node in ast.walk(func):
            target: Optional[ast.expr]
            value: Optional[ast.expr]
            if isinstance(node, ast.Assign):
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            else:
                continue
            if value is None:
                continue
            if isinstance(target, ast.Name):
                path = _resolve(value)
                if path is not None:
                    aliases[target.id] = path
                continue
            if isinstance(target, ast.Attribute) and \
                    target.attr == ATTR_CELLS_FIELD:
                if not isinstance(value, ast.Tuple):
                    raise ExtractionError(
                        f"{cls}.{ATTR_CELLS_FIELD} is not a tuple "
                        f"literal")
                for elt in value.elts:
                    if not (isinstance(elt, ast.Tuple)
                            and len(elt.elts) == 2
                            and isinstance(elt.elts[1], ast.Constant)):
                        raise ExtractionError(
                            f"unrecognized {ATTR_CELLS_FIELD} entry")
                    obj = _resolve(elt.elts[0])
                    if obj is None:
                        raise ExtractionError(
                            f"cannot resolve {ATTR_CELLS_FIELD} cell "
                            f"object to an engine path")
                    cells.append(f"{obj}.{elt.elts[1].value}")
                return tuple(cells)
    raise ExtractionError(
        f"{cls}.{ATTR_CELLS_FIELD} assignment not found in {module}")


@dataclass
class StateModel:
    """Mutations of the cross-stage handoff object, per field."""

    spec: StateSpec
    #: declared dataclass fields, in declaration order
    declared: Tuple[str, ...]
    #: field -> ``module.function`` sites that mutate it
    mutations: Dict[str, Tuple[str, ...]]


def extract_state_model(spec: StateSpec) -> StateModel:
    """Scan every stage module for mutations of the handoff object."""
    _, tree, _ = parse_module(spec.module)
    cls_node = find_class(tree, spec.cls, spec.module)
    declared = tuple(
        node.target.id for node in cls_node.body
        if isinstance(node, ast.AnnAssign)
        and isinstance(node.target, ast.Name))

    mutations: Dict[str, List[str]] = {}
    for module in spec.scan_modules:
        _, mod_tree, _ = parse_module(module)
        for func in ast.walk(mod_tree):
            if not isinstance(func, ast.FunctionDef):
                continue
            if not any(arg.arg == spec.param
                       for arg in func.args.args):
                continue
            visitor = _MethodVisitor(func, spec.param, {})
            facts = visitor.run()
            for path in facts.mutated:
                root = path.split(".")[0]
                site = f"{module}.{func.name}"
                sites = mutations.setdefault(root, [])
                if site not in sites:
                    sites.append(site)
    return StateModel(
        spec=spec, declared=declared,
        mutations={k: tuple(v) for k, v in sorted(mutations.items())})


__all__ = [
    "ComponentModel",
    "ExtractionError",
    "FieldModel",
    "MethodFacts",
    "StateModel",
    "analyze_methods",
    "extract_attr_cells",
    "extract_component",
    "extract_state_model",
    "field_hint",
    "find_class",
    "module_source",
    "parse_module",
    "transitive_closure",
]
