"""Replay-soundness self-audit: static analysis over the simulator.

The package turns the repo's static-analysis discipline (PR 2
translation validation, PR 4/7 opportunity oracles) on its own
source: the segment-level timing replay's bit-for-bit guarantee rests
on hand-enumerated digest surfaces, and this auditor checks — by
construction, not convention — that every field mutated on the
simulate path is either digested, delta-captured, or explicitly
presentational, that key construction is deterministic, and (via a
live mutation-fuzz oracle with seeded hole mutants) that the digests
really observe what the model says they observe.

Entry point: :func:`~repro.analysis.selfcheck.report.run_self_audit`,
surfaced on the CLI as ``repro audit`` / ``repro analyze --self``.
"""

from repro.analysis.selfcheck.coverage import (
    check_component,
    check_state,
    coverage_map,
    run_coverage,
)
from repro.analysis.selfcheck.determinism import (
    run_determinism,
    scan_class_iteration,
    scan_module_hazards,
)
from repro.analysis.selfcheck.extract import (
    ComponentModel,
    ExtractionError,
    FieldModel,
    StateModel,
    extract_attr_cells,
    extract_component,
    extract_state_model,
)
from repro.analysis.selfcheck.findings import (
    SEV_ERROR,
    SEV_WARNING,
    AuditFinding,
)
from repro.analysis.selfcheck.fuzz import (
    FuzzReport,
    build_plans,
    run_fuzz,
)
from repro.analysis.selfcheck.model import (
    DIGEST_SURFACES,
    LIVE_SURFACES,
    MACHINE_STATE,
    ComponentSpec,
    StateSpec,
    all_surfaces,
)
from repro.analysis.selfcheck.report import (
    BASELINE_SCHEMA,
    ComponentSummary,
    SelfAuditReport,
    StaticHoleResult,
    run_self_audit,
    seed_static_holes,
)

__all__ = [
    "AuditFinding",
    "BASELINE_SCHEMA",
    "ComponentModel",
    "ComponentSpec",
    "ComponentSummary",
    "DIGEST_SURFACES",
    "ExtractionError",
    "FieldModel",
    "FuzzReport",
    "LIVE_SURFACES",
    "MACHINE_STATE",
    "SEV_ERROR",
    "SEV_WARNING",
    "SelfAuditReport",
    "StateModel",
    "StateSpec",
    "StaticHoleResult",
    "all_surfaces",
    "build_plans",
    "check_component",
    "check_state",
    "coverage_map",
    "extract_attr_cells",
    "extract_component",
    "extract_state_model",
    "run_coverage",
    "run_determinism",
    "run_fuzz",
    "run_self_audit",
    "scan_class_iteration",
    "scan_module_hazards",
    "seed_static_holes",
]
