"""The replay-soundness state model: who participates, and how.

PR 8's segment-level timing replay is an exact-state-equivalence
argument: every machine resource a memoized visit can *observe* must be
pinned by the context key, and everything it *writes* must be captured
in the visit record. The surfaces that implement the argument
(``context_digest`` / ``shift_digest`` / ``restore`` /
``capture_delta`` / ``apply_delta``) are hand-enumerated, so the
argument holds only as long as every new mutable field joins them.

This module declares that obligation explicitly. Each
:class:`ComponentSpec` names one replay-participating class, its role,
the methods that constitute its simulate path, and its digest surface;
:mod:`repro.analysis.selfcheck.extract` walks the class's AST against
the spec, and :mod:`repro.analysis.selfcheck.coverage` turns the
result into lint findings.

Roles:

* ``digest`` — state is keyed and restored through the component's own
  digest surface. Every field mutated on the step path must be
  ``timing`` (read by a key-side digest method), ``counter`` (captured
  by the replay controller's attribute cells), or explicitly
  allowlisted as ``presentational``.
* ``live`` — the component runs live even during a replayed visit
  (pillar 3 of the replay argument: trace cache, predictor, bias
  table). Its state is exempt from digest coverage; it is still walked
  (the model documents the live split) and determinism-linted.
* ``state`` — the :class:`~repro.core.stages.base.MachineState`
  handoff object. Its fields are classified against the spec's
  ``captured`` / ``live`` / ``driver`` lists by scanning every stage
  module for mutations.

Field classification precedence: an in-source hint comment
(``[replay: counter]`` on or above the ``__init__`` assignment), then
the spec's explicit ``counters`` / ``presentational`` allowlists, then
derivation — mutated on the step path means ``timing``, untouched
means ``config``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

ROLE_DIGEST = "digest"
ROLE_LIVE = "live"
ROLE_STATE = "state"

CLASS_TIMING = "timing"
CLASS_COUNTER = "counter"
CLASS_PRESENTATIONAL = "presentational"
CLASS_CONFIG = "config"
CLASS_LIVE = "live"


@dataclass(frozen=True)
class ComponentSpec:
    """One replay-participating class and its declared obligations."""

    module: str
    cls: str
    role: str
    #: simulate-path entry points; helper closure is computed from here
    step_methods: Tuple[str, ...] = ()
    #: key-side digest surface: what the context key / capture reads
    key_methods: Tuple[str, ...] = ()
    #: restore-side digest surface: what a replayed visit writes back
    restore_methods: Tuple[str, ...] = ()
    #: where instances hang off the engine (dotted attribute paths)
    engine_paths: Tuple[str, ...] = ()
    #: fields captured as plain attribute deltas by the controller
    counters: Tuple[str, ...] = ()
    #: telemetry/debug fields exempt from coverage (the allowlist)
    presentational: Tuple[str, ...] = ()
    #: engine paths whose counters must appear in the controller's
    #: attribute cells; defaults to ``engine_paths``. Instances that
    #: run live during replayed visits (the L1I: fetch executes before
    #: the replay decision on both paths) are correctly absent.
    delta_paths: Tuple[str, ...] = ()

    @property
    def digest_methods(self) -> Tuple[str, ...]:
        return self.key_methods + self.restore_methods

    @property
    def effective_delta_paths(self) -> Tuple[str, ...]:
        return self.delta_paths or self.engine_paths

    @property
    def label(self) -> str:
        return f"{self.module}.{self.cls}"


@dataclass(frozen=True)
class StateSpec:
    """The cross-stage handoff object and its replay contract."""

    module: str
    cls: str
    #: modules whose functions mutate the handoff object
    scan_modules: Tuple[str, ...]
    #: parameter name the stages receive the object under
    param: str
    #: fields the replay controller captures and writes back
    captured: Tuple[str, ...]
    #: fields rebuilt by the live split on every visit
    live: Tuple[str, ...]
    #: fields the engine driver advances identically on both paths
    driver: Tuple[str, ...]

    @property
    def label(self) -> str:
        return f"{self.module}.{self.cls}"


#: the components whose digest surfaces carry the replay argument
DIGEST_SURFACES: Tuple[ComponentSpec, ...] = (
    ComponentSpec(
        module="repro.core.clusters", cls="FunctionalUnits",
        role=ROLE_DIGEST,
        step_methods=("reserve", "prune_below"),
        key_methods=("context_digest", "shift_digest"),
        restore_methods=("restore",),
        engine_paths=("fus",)),
    ComponentSpec(
        module="repro.core.clusters", cls="ReservationStations",
        role=ROLE_DIGEST,
        step_methods=("admit", "occupy"),
        key_methods=("context_digest", "shift_digest"),
        restore_methods=("restore",),
        engine_paths=("rs",)),
    ComponentSpec(
        module="repro.core.clusters", cls="BypassNetwork",
        role=ROLE_DIGEST,
        step_methods=("effective_ready", "cluster_of_slot"),
        engine_paths=("bypass",),
        counters=("crossings",)),
    ComponentSpec(
        module="repro.core.clusters", cls="CheckpointStore",
        role=ROLE_DIGEST,
        step_methods=("acquire", "commit"),
        key_methods=("context_digest", "shift_digest"),
        restore_methods=("restore",),
        engine_paths=("checkpoints",),
        counters=("stalls",)),
    ComponentSpec(
        module="repro.core.rename", cls="RenameUnit",
        role=ROLE_DIGEST,
        step_methods=("rename",),
        key_methods=("context_digest", "shift_digest"),
        restore_methods=("restore",),
        engine_paths=("rename_unit",),
        counters=("window_stalls", "block_limit_stalls",
                  "width_stalls")),
    ComponentSpec(
        module="repro.core.rename", cls="RetireUnit",
        role=ROLE_DIGEST,
        step_methods=("retire",),
        key_methods=("context_digest", "shift_digest"),
        restore_methods=("restore",),
        engine_paths=("retire_unit",)),
    ComponentSpec(
        module="repro.core.memsched", cls="MemoryScheduler",
        role=ROLE_DIGEST,
        step_methods=("load_timing", "store_timing", "prune_stale"),
        key_methods=("forward_entries", "context_digest",
                     "capture_delta"),
        restore_methods=("apply_delta",),
        engine_paths=("memsched",),
        counters=("loads", "stores", "forwarded_loads",
                  "blocked_loads")),
    ComponentSpec(
        module="repro.cache.setassoc", cls="SetAssocCache",
        role=ROLE_DIGEST,
        step_methods=("access", "fill"),
        key_methods=("set_index", "set_digest"),
        restore_methods=("restore_set",),
        engine_paths=("hierarchy.l1i", "hierarchy.l1d",
                      "hierarchy.l2"),
        counters=("stats.accesses", "stats.hits",
                  "stats.evictions"),
        delta_paths=("hierarchy.l1d", "hierarchy.l2")),
    # Replacement-policy metadata is timing state: it decides future
    # victims, so it rides inside the owning cache's set_digest /
    # restore_set (the containers splice state_digest/restore in).
    # TrueLRU is stateless — the container's tag order *is* its state
    # — and needs no spec of its own.
    ComponentSpec(
        module="repro.cache.policy", cls="SRRIPPolicy",
        role=ROLE_DIGEST,
        step_methods=("on_insert", "on_hit", "victim", "on_evict"),
        key_methods=("state_digest",),
        restore_methods=("restore",),
        engine_paths=("hierarchy.l1i.policy", "hierarchy.l1d.policy",
                      "hierarchy.l2.policy"),
        delta_paths=("hierarchy.l1d", "hierarchy.l2")),
    ComponentSpec(
        module="repro.cache.policy", cls="TRRIPPolicy",
        role=ROLE_DIGEST,
        step_methods=("on_insert", "on_hit", "victim", "on_evict"),
        key_methods=("state_digest",),
        restore_methods=("restore",),
        engine_paths=("hierarchy.l1i.policy", "hierarchy.l1d.policy",
                      "hierarchy.l2.policy", "trace_cache.policy"),
        delta_paths=("hierarchy.l1d", "hierarchy.l2")),
)

#: pillar-3 components: run live during replayed visits, digest-exempt
LIVE_SURFACES: Tuple[ComponentSpec, ...] = (
    ComponentSpec(
        module="repro.tracecache.cache", cls="TraceCache",
        role=ROLE_LIVE,
        step_methods=("lookup", "insert", "touch"),
        engine_paths=("trace_cache",),
        presentational=("events", "spans", "_residency")),
    ComponentSpec(
        module="repro.branch.predictor", cls="MultiBranchPredictor",
        role=ROLE_LIVE,
        step_methods=("predict_cond", "update_cond", "record_outcome",
                      "predict_indirect", "train_indirect",
                      "note_call"),
        engine_paths=("predictor",)),
    ComponentSpec(
        module="repro.branch.bias", cls="BiasTable",
        role=ROLE_LIVE,
        step_methods=("record",),
        engine_paths=("predictor.bias",)),
    ComponentSpec(
        module="repro.branch.pht", cls="PatternHistoryTable",
        role=ROLE_LIVE,
        step_methods=("predict", "update")),
    ComponentSpec(
        module="repro.branch.pht", cls="GlobalHistory",
        role=ROLE_LIVE,
        step_methods=("push",),
        engine_paths=("predictor.history",)),
    ComponentSpec(
        module="repro.branch.counters", cls="SaturatingCounterArray",
        role=ROLE_LIVE,
        step_methods=("predict", "update", "value")),
    ComponentSpec(
        module="repro.branch.ras", cls="ReturnAddressStack",
        role=ROLE_LIVE,
        step_methods=("push", "pop"),
        engine_paths=("predictor.ras",)),
    ComponentSpec(
        module="repro.branch.btb", cls="BranchTargetBuffer",
        role=ROLE_LIVE,
        step_methods=("predict", "update"),
        engine_paths=("predictor.btb",)),
)

#: the cross-stage handoff object: what replay must put back
MACHINE_STATE = StateSpec(
    module="repro.core.stages.base", cls="MachineState",
    scan_modules=("repro.core.stages.fetch", "repro.core.stages.rename",
                  "repro.core.stages.issue",
                  "repro.core.stages.execute",
                  "repro.core.stages.retire", "repro.core.stages.fill",
                  "repro.core.stages.ineff", "repro.core.engine"),
    param="state",
    captured=("reg_ready", "retire_cycles", "fetch_ready",
              "pending_recovery", "pending_serialize"),
    live=("group",),
    driver=("index",))

#: where the controller's attribute-delta cells are declared
REPLAY_MODULE = "repro.core.replay"
REPLAY_CLASS = "ReplayController"
ATTR_CELLS_FIELD = "_attr_cells"
#: the controller's key/digest builders, determinism-linted like the
#: components' own key methods
REPLAY_KEY_FUNCTIONS: Tuple[str, ...] = (
    "_build_key", "_segment_static", "_touched_sets", "_reg_digest",
    "_window_digest")

#: the simulate path proper: importing ``random``/``time`` or calling
#: ``id()`` anywhere here is a determinism hazard (wall-clock and
#: address-space dependence have no place in a bit-for-bit model)
DETERMINISM_MODULES: Tuple[str, ...] = (
    "repro.core.replay", "repro.core.clusters", "repro.core.rename",
    "repro.core.memsched", "repro.cache.setassoc",
    "repro.cache.policy", "repro.cache.hints",
    "repro.cache.hierarchy", "repro.core.engine",
    "repro.core.stages.base", "repro.core.stages.fetch",
    "repro.core.stages.rename", "repro.core.stages.issue",
    "repro.core.stages.execute", "repro.core.stages.retire",
    "repro.core.stages.fill", "repro.core.stages.ineff",
    "repro.tracecache.cache", "repro.tracecache.segment",
    "repro.branch.predictor", "repro.branch.bias", "repro.branch.pht",
    "repro.branch.btb", "repro.branch.ras", "repro.branch.counters",
)

#: digest/key methods allowed to iterate a dict: insertion order *is*
#: the modelled state there, not an accident of construction
ORDERED_DICT_ALLOWED: Dict[Tuple[str, str], str] = {
    ("SetAssocCache", "set_digest"):
        "insertion order is the LRU order — exact state, "
        "reference-sequence-determined",
    ("TimingMemo", "approx_bytes"):
        "sampling walk; result feeds a gauge, never a key",
    ("TimingMemo", "store"):
        "FIFO eviction reads the insertion-ordered head — "
        "deterministic, and never feeds a key",
}

#: non-component classes in the replay module whose methods feed (or
#: sit next to) memo-key construction, determinism-linted too:
#: ``class -> method roots`` (empty tuple means every method)
REPLAY_SCAN_CLASSES: Dict[str, Tuple[str, ...]] = {
    REPLAY_CLASS: REPLAY_KEY_FUNCTIONS,
    "TimingMemo": (),
}

#: reducers whose result does not depend on iteration order
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "frozenset"})


def all_surfaces() -> Tuple[ComponentSpec, ...]:
    """Every component spec, digest surfaces first."""
    return DIGEST_SURFACES + LIVE_SURFACES


__all__ = [
    "ATTR_CELLS_FIELD",
    "CLASS_CONFIG",
    "CLASS_COUNTER",
    "CLASS_LIVE",
    "CLASS_PRESENTATIONAL",
    "CLASS_TIMING",
    "ComponentSpec",
    "DETERMINISM_MODULES",
    "DIGEST_SURFACES",
    "LIVE_SURFACES",
    "MACHINE_STATE",
    "ORDERED_DICT_ALLOWED",
    "ORDER_INSENSITIVE_CALLS",
    "REPLAY_CLASS",
    "REPLAY_KEY_FUNCTIONS",
    "REPLAY_MODULE",
    "REPLAY_SCAN_CLASSES",
    "ROLE_DIGEST",
    "ROLE_LIVE",
    "ROLE_STATE",
    "StateSpec",
    "all_surfaces",
]
