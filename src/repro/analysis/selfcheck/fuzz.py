"""Mutation-fuzz oracle: the static coverage claim, validated live.

The static lint proves "every timing field is *read* by a digest
method" — a syntactic property. This module closes the semantic gap:
for every modeled timing field it perturbs a warmed component (a
deep copy, above the observability cut ``base``) and asserts the
component's digest actually changes. A field the digest reads but
normalizes away would pass the static check and fail here.

Counters are validated the other way around: the live controller's
``_attr_cells`` tuple is walked by object identity, proving each
declared counter really is delta-captured on its engine path.

Seeded holes make the oracle falsifiable (mirroring PR 4's
static-vs-dynamic cross-check): for each digest class a *projection*
drops one field's contribution from the digest — exactly the mutant a
forgotten ``context_digest`` term would produce — and the oracle must
report that holed digest blind. An ``unmodeled-field`` hole perturbs a
brand-new attribute no digest knows about; the full digest must stay
unchanged, which is the signal the static layer flags as a
``digest-hole``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.selfcheck.extract import ComponentModel
from repro.analysis.selfcheck.model import (
    CLASS_COUNTER,
    CLASS_TIMING,
    DIGEST_SURFACES,
)

#: word address used to probe the store-forwarding digest
PROBE_WORD = 0x1000
#: workload the oracle warms its engine on (small but representative:
#: real cache residency, forwarding entries, checkpoint traffic)
WARM_WORKLOAD = "li"
WARM_SCALE = 0.1

Digest = Callable[[Any, int], Any]
Mutate = Callable[[Any, int], None]


@dataclass(frozen=True)
class FieldProbe:
    """Perturb one modeled field above the observability cut."""

    field: str
    perturb: Mutate
    #: moves hidden state into the observable band first (e.g. the
    #: rename unit digests to a shared idle token at or below base)
    prepare: Optional[Mutate] = None


@dataclass(frozen=True)
class HoleSpec:
    """One seeded digest hole the oracle must catch."""

    name: str
    field: str
    #: digest projection dropping the field's contribution; ``None``
    #: marks an unmodeled-field hole (full digest must stay blind)
    project: Optional[Callable[[Any], Any]] = None
    prepare: Optional[Mutate] = None


@dataclass(frozen=True)
class ClassPlan:
    """Fuzz plan for one digest-surface class."""

    cls: str
    engine_path: str
    digest: Digest
    probes: Tuple[FieldProbe, ...]
    holes: Tuple[HoleSpec, ...] = ()


@dataclass
class FieldResult:
    cls: str
    field: str
    kind: str
    #: digest (or cell capture) responded to the perturbation
    observed: bool
    detail: str = ""


@dataclass
class HoleResult:
    cls: str
    name: str
    field: str
    #: the oracle flagged the seeded hole (holed digest went blind)
    caught: bool
    detail: str = ""


@dataclass
class FuzzReport:
    results: List[FieldResult] = field(default_factory=list)
    holes: List[HoleResult] = field(default_factory=list)
    #: static-model fields with no probe, and probes with no field
    gaps: List[str] = field(default_factory=list)
    warm_cycles: int = 0

    def blind_fields(self) -> List[FieldResult]:
        return [r for r in self.results if not r.observed]

    def uncaught_holes(self) -> List[HoleResult]:
        return [h for h in self.holes if not h.caught]

    def ok(self) -> bool:
        return not (self.blind_fields() or self.uncaught_holes()
                    or self.gaps)


def _rename_prepare(c: Any, base: int) -> None:
    c._cycle = base + 5
    c._count = 2
    c._blocks = 1


def _retire_prepare(c: Any, base: int) -> None:
    c._cycle = base + 5
    c._count = 1


def _cache_digest(c: Any, base: int) -> Any:
    return tuple(c.set_digest(i) for i in range(c.num_sets))


def _policy_digest(c: Any, base: int) -> Any:
    return tuple(c.state_digest(i) for i in range(c.num_sets))


def _memsched_digest(c: Any, base: int) -> Any:
    return c.context_digest(base, (PROBE_WORD,))


def build_plans() -> Tuple[ClassPlan, ...]:
    """The per-class fuzz plans for every digest surface."""
    return (
        ClassPlan(
            cls="FunctionalUnits", engine_path="fus",
            digest=lambda c, b: c.context_digest(b),
            probes=(
                FieldProbe("_busy",
                           lambda c, b: c._busy[0].add(b + 9)),
                FieldProbe("_floor",
                           lambda c, b: _set_item(
                               c._floor, 0, b + 9)),
            ),
            holes=(
                HoleSpec("drop compaction floors from the FU digest",
                         "_floor", project=lambda d: d[0]),
            )),
        ClassPlan(
            cls="ReservationStations", engine_path="rs",
            digest=lambda c, b: c.context_digest(b),
            probes=(
                FieldProbe("_release",
                           lambda c, b: heapq.heappush(
                               c._release[0], b + 9)),
            ),
            holes=(
                HoleSpec("collapse the RS digest to a constant",
                         "_release", project=lambda d: ()),
            )),
        ClassPlan(
            cls="CheckpointStore", engine_path="checkpoints",
            digest=lambda c, b: c.context_digest(b),
            probes=(
                FieldProbe("_outstanding",
                           lambda c, b: c._outstanding.append(b + 9)),
                FieldProbe("_last_free",
                           lambda c, b: setattr(
                               c, "_last_free", b + 9)),
            ),
            holes=(
                HoleSpec("drop the last-free high-water mark",
                         "_last_free", project=lambda d: d[0]),
            )),
        ClassPlan(
            cls="RenameUnit", engine_path="rename_unit",
            digest=lambda c, b: c.context_digest(b),
            probes=(
                FieldProbe("_cycle",
                           lambda c, b: setattr(c, "_cycle", b + 5)),
                FieldProbe("_count",
                           lambda c, b: setattr(
                               c, "_count", c._count + 1),
                           prepare=_rename_prepare),
                FieldProbe("_blocks",
                           lambda c, b: setattr(
                               c, "_blocks", c._blocks + 1),
                           prepare=_rename_prepare),
            ),
            holes=(
                HoleSpec("drop the within-cycle rename count",
                         "_count",
                         project=lambda d: d if len(d) < 3
                         else (d[0], d[2]),
                         prepare=_rename_prepare),
            )),
        ClassPlan(
            cls="RetireUnit", engine_path="retire_unit",
            digest=lambda c, b: c.context_digest(b),
            probes=(
                FieldProbe("_cycle",
                           lambda c, b: setattr(c, "_cycle", b + 5)),
                FieldProbe("_count",
                           lambda c, b: setattr(
                               c, "_count", c._count + 1),
                           prepare=_retire_prepare),
            ),
            holes=(
                HoleSpec("drop the within-cycle retire count",
                         "_count",
                         project=lambda d: d if len(d) < 2 else d[0],
                         prepare=_retire_prepare),
            )),
        ClassPlan(
            cls="MemoryScheduler", engine_path="memsched",
            digest=_memsched_digest,
            probes=(
                FieldProbe("_forward",
                           lambda c, b: _set_key(
                               c._forward, PROBE_WORD, b + 9)),
                FieldProbe("_all_store_addrs_known",
                           lambda c, b: setattr(
                               c, "_all_store_addrs_known", b + 7)),
            ),
            holes=(
                HoleSpec("drop forwarding entries from the digest",
                         "_forward", project=lambda d: d[0]),
                HoleSpec("drop the address-known horizon",
                         "_all_store_addrs_known",
                         project=lambda d: d[1]),
            )),
        ClassPlan(
            cls="SetAssocCache", engine_path="hierarchy.l1d",
            digest=_cache_digest,
            probes=(
                FieldProbe("_sets",
                           lambda c, b: _set_key(
                               c._sets[0], 0xDEADBEEF, None)),
            ),
            holes=(
                HoleSpec("drop set 0 from the cache digest",
                         "_sets", project=lambda d: d[1:]),
                HoleSpec("perturb a field no digest models",
                         "_selfcheck_phantom", project=None),
            )),
        ClassPlan(
            cls="SRRIPPolicy", engine_path="hierarchy.l1d.policy",
            digest=_policy_digest,
            probes=(
                FieldProbe("_meta",
                           lambda c, b: _set_key(
                               c._meta[0], 0xDEADBEEF, 1)),
            ),
            holes=(
                HoleSpec("drop set 0 from the SRRIP metadata digest",
                         "_meta", project=lambda d: d[1:]),
            )),
        ClassPlan(
            cls="TRRIPPolicy", engine_path="trace_cache.policy",
            digest=_policy_digest,
            probes=(
                FieldProbe("_meta",
                           lambda c, b: _set_key(
                               c._meta[0], (0xDEAD, ()), 1)),
                FieldProbe("_reuse",
                           lambda c, b: _set_key(
                               c._reuse[0], (0xDEAD, ()), 2)),
                FieldProbe("_history",
                           lambda c, b: _set_key(
                               c._history[0], (0xDEAD, ()), 2)),
            ),
            holes=(
                HoleSpec("drop the reuse history from the TRRIP "
                         "digest",
                         "_history",
                         project=lambda d: tuple(s[:2] for s in d)),
            )),
        ClassPlan(
            cls="BypassNetwork", engine_path="bypass",
            digest=lambda c, b: (), probes=()),
    )


def _set_item(seq: Any, idx: int, value: Any) -> None:
    seq[idx] = value


def _set_key(mapping: Any, key: Any, value: Any) -> None:
    mapping[key] = value


def _resolve(obj: Any, path: str) -> Any:
    for part in path.split("."):
        obj = getattr(obj, part)
    return obj


def warm_engine() -> Tuple[Any, int]:
    """A small engine warmed on the reference workload; returns the
    engine and the observability base (past every live cycle)."""
    import dataclasses

    from repro import workloads
    from repro.core.config import SimConfig
    from repro.core.engine import Engine
    from repro.fillunit.opts.base import OptimizationConfig
    from repro.machine import run_program

    program = workloads.build(WARM_WORKLOAD, scale=WARM_SCALE)
    trace = run_program(program)
    config = SimConfig.tiny(OptimizationConfig.all())
    # Warm the stateful replacement policies, not the default LRU:
    # SRRIP in the hierarchy, TRRIP on the trace cache, so the fuzz
    # probes exercise real policy metadata on their engine paths.
    config = dataclasses.replace(
        config,
        hierarchy=dataclasses.replace(config.hierarchy,
                                      policy="srrip"),
        trace_cache=dataclasses.replace(config.trace_cache,
                                        policy="trrip"))
    engine = Engine(config)
    result = engine.run(trace, benchmark=WARM_WORKLOAD,
                        label="selfcheck-fuzz", program=program)
    return engine, int(result.cycles) + 4


def _probe_one(component: Any, base: int, plan: ClassPlan,
               probe: FieldProbe) -> FieldResult:
    c = copy.deepcopy(component)
    if probe.prepare is not None:
        probe.prepare(c, base)
    before = plan.digest(c, base)
    probe.perturb(c, base)
    after = plan.digest(c, base)
    return FieldResult(
        cls=plan.cls, field=probe.field, kind="digest",
        observed=before != after,
        detail="digest changed" if before != after
        else f"digest blind: {before!r} before and after")


def _hole_one(component: Any, base: int, plan: ClassPlan,
              hole: HoleSpec) -> HoleResult:
    c = copy.deepcopy(component)
    if hole.prepare is not None:
        hole.prepare(c, base)
    if hole.project is None:
        before = plan.digest(c, base)
        setattr(c, hole.field, base + 9)
        after = plan.digest(c, base)
        caught = before == after
        detail = ("full digest blind to the unmodeled field, as the "
                  "static digest-hole rule predicts" if caught else
                  "digest unexpectedly observed an unmodeled field")
        return HoleResult(plan.cls, hole.name, hole.field, caught,
                          detail)
    probe = next((p for p in plan.probes if p.field == hole.field),
                 None)
    if probe is None:
        return HoleResult(plan.cls, hole.name, hole.field, False,
                          "no probe covers the holed field")
    if probe.prepare is not None:
        probe.prepare(c, base)
    full_before = plan.digest(c, base)
    holed_before = hole.project(full_before)
    probe.perturb(c, base)
    full_after = plan.digest(c, base)
    holed_after = hole.project(full_after)
    caught = full_before != full_after and holed_before == holed_after
    if caught:
        detail = "holed digest went blind; full digest observed"
    elif full_before == full_after:
        detail = "full digest itself was blind (probe ineffective)"
    else:
        detail = "projection failed to remove the field contribution"
    return HoleResult(plan.cls, hole.name, hole.field, caught, detail)


def _check_counters(engine: Any, plans: Dict[str, ClassPlan]
                    ) -> List[FieldResult]:
    """Every declared counter must sit in the controller's attribute
    cells, by object identity, on each delta path."""
    results: List[FieldResult] = []
    replay = engine.replay
    cells = [] if replay is None else list(replay._attr_cells)
    for spec in DIGEST_SURFACES:
        for counter in spec.counters:
            for path in spec.effective_delta_paths:
                parts = counter.rsplit(".", 1)
                holder = _resolve(engine, path if len(parts) == 1
                                  else f"{path}.{parts[0]}")
                name = parts[-1]
                observed = any(obj is holder and cell_name == name
                               for obj, cell_name in cells)
                results.append(FieldResult(
                    cls=spec.cls, field=counter, kind="counter",
                    observed=observed,
                    detail=f"attribute cell on {path}" if observed
                    else f"no attribute cell covers {path}.{counter}"
                ))
    return results


def run_fuzz(models: Optional[List[ComponentModel]] = None
             ) -> FuzzReport:
    """Run the full oracle on a freshly warmed engine."""
    report = FuzzReport()
    engine, base = warm_engine()
    report.warm_cycles = base - 4
    plans = {plan.cls: plan for plan in build_plans()}
    for plan in plans.values():
        component = _resolve(engine, plan.engine_path)
        for probe in plan.probes:
            report.results.append(
                _probe_one(component, base, plan, probe))
        for hole in plan.holes:
            report.holes.append(
                _hole_one(component, base, plan, hole))
    report.results.extend(_check_counters(engine, plans))

    if models is not None:
        probed: Dict[str, set] = {}
        for plan in plans.values():
            probed.setdefault(plan.cls, set()).update(
                p.field for p in plan.probes)
        for cm in models:
            if cm.spec.cls not in plans:
                continue
            have = probed.get(cm.spec.cls, set())
            for name, fld in sorted(cm.fields.items()):
                if fld.classification == CLASS_TIMING and \
                        name not in have:
                    report.gaps.append(
                        f"fuzz-gap: {cm.spec.cls}.{name} is a "
                        f"modeled timing field with no fuzz probe")
            modeled = {
                name for name, fld in cm.fields.items()
                if fld.classification in (CLASS_TIMING,
                                          CLASS_COUNTER)}
            for name in sorted(have - set(cm.fields)):
                report.gaps.append(
                    f"fuzz-stale: {cm.spec.cls}.{name} is probed "
                    f"but no longer in the extracted model")
            del modeled
    return report


__all__ = [
    "ClassPlan",
    "FieldProbe",
    "FieldResult",
    "FuzzReport",
    "HoleResult",
    "HoleSpec",
    "PROBE_WORD",
    "build_plans",
    "run_fuzz",
    "warm_engine",
]
