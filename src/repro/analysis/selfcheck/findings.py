"""Finding records shared by the self-audit lint passes."""

from __future__ import annotations

from dataclasses import dataclass

SEV_ERROR = "error"
SEV_WARNING = "warning"


@dataclass(frozen=True)
class AuditFinding:
    """One self-audit lint finding.

    ``rule`` is a stable identifier (``digest-hole``,
    ``counter-uncaptured``, ``state-hole``, ``unmodeled-read``,
    ``unordered-iteration``, ``dict-iteration``, ``id-call``,
    ``nondeterministic-import``); baselines and CI gates count
    findings per rule, so identifiers must not be renamed casually.
    """

    rule: str
    severity: str
    component: str
    attr: str
    location: str
    message: str

    def render(self) -> str:
        return (f"{self.severity.upper():7s} {self.rule:22s} "
                f"{self.component}.{self.attr}  [{self.location}]\n"
                f"        {self.message}")


__all__ = ["AuditFinding", "SEV_ERROR", "SEV_WARNING"]
