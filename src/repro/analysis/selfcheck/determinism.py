"""Determinism-hazard lint over the simulate path.

Three hazard families, all fatal to a bit-for-bit model:

* ``id-call`` / ``nondeterministic-import`` — ``id()`` values change
  per process; ``random`` / ``time`` smuggle wall-clock or RNG state
  into timing. Flagged anywhere in
  :data:`~repro.analysis.selfcheck.model.DETERMINISM_MODULES`.
* ``unordered-iteration`` — a ``for`` loop, comprehension, or bare
  ``iter()`` over a *set* inside digest/key construction, unless the
  iteration feeds an order-insensitive reducer (``sorted``, ``sum``,
  ``min``...). Set order varies with hash seeding and insertion
  history; a key built from it is not a function of machine state.
* ``dict-iteration`` — same sites over a *dict*: insertion-ordered,
  hence deterministic, but order is construction history, not state;
  warned unless the ``(class, method)`` pair is allowlisted in
  :data:`~repro.analysis.selfcheck.model.ORDERED_DICT_ALLOWED` with a
  reason (e.g. LRU order in ``set_digest`` *is* the modeled state).

Container kinds are inferred syntactically: ``__init__`` annotations
(``List[Set[int]]`` peels to ``set`` through a loop target), literal
and constructor forms (``set()``, ``{}``, comprehensions), and local
propagation through assignment, subscripts, and loop bindings.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.selfcheck.extract import (
    analyze_methods,
    find_class,
    parse_module,
    transitive_closure,
)
from repro.analysis.selfcheck.findings import (
    SEV_ERROR,
    SEV_WARNING,
    AuditFinding,
)
from repro.analysis.selfcheck.model import (
    DETERMINISM_MODULES,
    DIGEST_SURFACES,
    ORDER_INSENSITIVE_CALLS,
    ORDERED_DICT_ALLOWED,
    REPLAY_MODULE,
    REPLAY_SCAN_CLASSES,
)

_BANNED_IMPORTS = frozenset({"random", "time"})
_SET_HEADS = frozenset({"set", "Set", "frozenset", "FrozenSet"})
_DICT_HEADS = frozenset({"dict", "Dict", "OrderedDict", "defaultdict",
                         "DefaultDict", "Counter", "Mapping"})
_LIST_HEADS = frozenset({"list", "List", "Sequence", "deque", "Deque",
                         "tuple", "Tuple"})


def _head_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _head_name(node.value)
    return None


def kind_of(ann: Optional[ast.AST]) -> Optional[str]:
    """``"set"`` / ``"dict"`` / ``"list"`` / ``None`` for a type
    annotation (or annotation-shaped inference result)."""
    head = _head_name(ann) if ann is not None else None
    if head in _SET_HEADS:
        return "set"
    if head in _DICT_HEADS:
        return "dict"
    if head in _LIST_HEADS:
        return "list"
    return None


def _slice_elts(node: ast.Subscript) -> List[ast.expr]:
    sl = node.slice
    if isinstance(sl, ast.Tuple):
        return list(sl.elts)
    return [sl]


def subscript_peel(ann: Optional[ast.AST]) -> Optional[ast.AST]:
    """Element annotation after one ``container[i]`` access."""
    if not isinstance(ann, ast.Subscript):
        return None
    kind = kind_of(ann)
    elts = _slice_elts(ann)
    if kind == "dict":
        return elts[1] if len(elts) >= 2 else None
    if kind in ("list", "set") and elts:
        return elts[0]
    return None


def iter_elem(ann: Optional[ast.AST]) -> Optional[ast.AST]:
    """Element annotation produced by iterating the container."""
    if not isinstance(ann, ast.Subscript):
        return None
    elts = _slice_elts(ann)
    return elts[0] if elts else None


class _TypeEnv:
    """Best-effort local type tracking inside one method."""

    def __init__(self, self_name: str,
                 attr_types: Dict[str, ast.AST]) -> None:
        self.self_name = self_name
        self.attr_types = attr_types
        self.locals: Dict[str, Optional[ast.AST]] = {}

    def infer(self, node: ast.AST) -> Optional[ast.AST]:
        if isinstance(node, ast.Name):
            return self.locals.get(node.id)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and \
                    node.value.id == self.self_name:
                return self.attr_types.get(node.attr)
            if node.attr in ("keys", "values", "items"):
                return self.infer(node.value)
            return None
        if isinstance(node, ast.Subscript):
            return subscript_peel(self.infer(node.value))
        if isinstance(node, (ast.Set, ast.SetComp)):
            return ast.Name(id="set", ctx=ast.Load())
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return ast.Name(id="dict", ctx=ast.Load())
        if isinstance(node, (ast.List, ast.ListComp, ast.Tuple,
                             ast.GeneratorExp)):
            return ast.Name(id="list", ctx=ast.Load())
        if isinstance(node, ast.Call):
            func = node.func
            name = _head_name(func)
            if name in _SET_HEADS | _DICT_HEADS | _LIST_HEADS or \
                    name == "sorted":
                head = "list" if name == "sorted" else name
                return ast.Name(id=str(head), ctx=ast.Load())
            if isinstance(func, ast.Attribute):
                if func.attr == "copy":
                    return self.infer(func.value)
                if func.attr in ("keys", "values", "items"):
                    base = self.infer(func.value)
                    if kind_of(base) == "dict":
                        return ast.Name(id="dict", ctx=ast.Load())
        return None

    def bind(self, target: ast.AST, ann: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Name):
            self.locals[target.id] = ann


def init_attr_types(cls_node: ast.ClassDef,
                    env_hint: Optional[_TypeEnv] = None
                    ) -> Dict[str, ast.AST]:
    """``attr -> annotation`` from ``__init__`` (explicit annotations
    first, constructor-shape inference second)."""
    types: Dict[str, ast.AST] = {}
    for func in cls_node.body:
        if not (isinstance(func, ast.FunctionDef)
                and func.name == "__init__" and func.args.args):
            continue
        self_name = func.args.args[0].arg
        env = env_hint or _TypeEnv(self_name, types)
        for node in ast.walk(func):
            target: Optional[ast.expr] = None
            ann: Optional[ast.AST] = None
            if isinstance(node, ast.AnnAssign):
                target, ann = node.target, node.annotation
                if ann is None and node.value is not None:
                    ann = env.infer(node.value)
            elif isinstance(node, ast.Assign):
                target = node.targets[0]
                ann = env.infer(node.value)
            if ann is not None and \
                    isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == self_name:
                types.setdefault(target.attr, ann)
    return types


def _safe_iter_nodes(func: ast.FunctionDef) -> Set[int]:
    """``id()`` of iteration expressions consumed by an
    order-insensitive reducer."""
    safe: Set[int] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = _head_name(node.func)
        if name not in ORDER_INSENSITIVE_CALLS:
            continue
        for arg in node.args:
            safe.add(id(arg))
            if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                ast.SetComp)):
                for gen in arg.generators:
                    safe.add(id(gen.iter))
    return safe


class _IterScanner(ast.NodeVisitor):
    """Flag unordered iteration inside one digest/key method."""

    def __init__(self, cls: str, method: str, path: str,
                 env: _TypeEnv, safe: Set[int]) -> None:
        self.cls = cls
        self.method = method
        self.path = path
        self.env = env
        self.safe = safe
        self.findings: List[AuditFinding] = []

    def _check_iter(self, iter_expr: ast.expr) -> None:
        if id(iter_expr) in self.safe:
            return
        kind = kind_of(self.env.infer(iter_expr))
        if kind == "set":
            self.findings.append(AuditFinding(
                rule="unordered-iteration", severity=SEV_ERROR,
                component=self.cls, attr=self.method,
                location=f"{self.path}:{iter_expr.lineno}",
                message=(
                    "set iteration order reaches digest/key "
                    "construction without an order-insensitive "
                    "reducer (sorted/sum/min/...)")))
        elif kind == "dict" and \
                (self.cls, self.method) not in ORDERED_DICT_ALLOWED:
            self.findings.append(AuditFinding(
                rule="dict-iteration", severity=SEV_WARNING,
                component=self.cls, attr=self.method,
                location=f"{self.path}:{iter_expr.lineno}",
                message=(
                    "dict iteration order (construction history) "
                    "reaches digest/key construction; allowlist in "
                    "ORDERED_DICT_ALLOWED with a reason if the "
                    "order is itself modeled state")))

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._check_iter(node.iter)
        self.env.bind(node.target,
                      iter_elem(self.env.infer(node.iter)))
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def _visit_comp(self, node: ast.AST,
                    generators: Sequence[ast.comprehension]) -> None:
        for gen in generators:
            self.visit(gen.iter)
            self._check_iter(gen.iter)
            self.env.bind(gen.target,
                          iter_elem(self.env.infer(gen.iter)))
            for cond in gen.ifs:
                self.visit(cond)
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.comprehension):
                self.visit(child)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node, node.generators)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comp(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, node.generators)

    def visit_Call(self, node: ast.Call) -> None:
        name = _head_name(node.func)
        if name == "iter" and len(node.args) == 1:
            self._check_iter(node.args[0])
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self.env.bind(target, self.env.infer(node.value))

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self.env.bind(node.target, node.annotation)


def scan_class_iteration(module: str, cls: str,
                         roots: Tuple[str, ...]
                         ) -> List[AuditFinding]:
    """Unordered-iteration findings for *cls*'s digest/key methods
    (*roots* plus their ``self``-call closure; all methods if empty).
    """
    path, tree, _ = parse_module(module)
    cls_node = find_class(tree, cls, module)
    attr_types = init_attr_types(cls_node)
    facts = analyze_methods(cls_node)
    if roots:
        selected = transitive_closure(facts, roots)
    else:
        selected = set(facts)
    findings: List[AuditFinding] = []
    for func in cls_node.body:
        if not isinstance(func, ast.FunctionDef) or \
                func.name not in selected or not func.args.args:
            continue
        env = _TypeEnv(func.args.args[0].arg, attr_types)
        for arg in func.args.args:
            if arg.annotation is not None:
                env.locals[arg.arg] = arg.annotation
        scanner = _IterScanner(cls, func.name, path, env,
                               _safe_iter_nodes(func))
        for stmt in func.body:
            scanner.visit(stmt)
        findings.extend(scanner.findings)
    return findings


def scan_module_hazards(module: str) -> List[AuditFinding]:
    """``id()`` calls and ``random``/``time`` imports in *module*."""
    path, tree, _ = parse_module(module)
    findings: List[AuditFinding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            names = [a.name for a in node.names]
            if isinstance(node, ast.ImportFrom) and node.module:
                names.append(node.module)
            hits = sorted(
                {n.split(".")[0] for n in names} & _BANNED_IMPORTS)
            for hit in hits:
                findings.append(AuditFinding(
                    rule="nondeterministic-import",
                    severity=SEV_ERROR, component=module, attr=hit,
                    location=f"{path}:{node.lineno}",
                    message=(
                        f"import of {hit!r} on the simulate path: "
                        f"wall-clock/RNG state cannot feed a "
                        f"bit-for-bit timing model")))
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id == "id":
            findings.append(AuditFinding(
                rule="id-call", severity=SEV_ERROR,
                component=module, attr="id",
                location=f"{path}:{node.lineno}",
                message=(
                    "id() is an address, unstable across processes; "
                    "any key or digest touching it breaks replay "
                    "reproducibility")))
    return findings


def run_determinism() -> List[AuditFinding]:
    """The full determinism-hazard pass over the simulate path."""
    findings: List[AuditFinding] = []
    for module in DETERMINISM_MODULES:
        findings.extend(scan_module_hazards(module))
    for spec in DIGEST_SURFACES:
        if spec.digest_methods:
            findings.extend(scan_class_iteration(
                spec.module, spec.cls, spec.digest_methods))
    for cls, roots in REPLAY_SCAN_CLASSES.items():
        findings.extend(
            scan_class_iteration(REPLAY_MODULE, cls, roots))
    return findings


__all__ = [
    "init_attr_types",
    "iter_elem",
    "kind_of",
    "run_determinism",
    "scan_class_iteration",
    "scan_module_hazards",
    "subscript_peel",
]
