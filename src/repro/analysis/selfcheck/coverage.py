"""Digest-coverage lint: the extracted model vs the digest surfaces.

The replay argument requires three containments, checked here field by
field against the extracted :class:`ComponentModel`:

* every ``timing`` field (mutated on the step path, not allowlisted)
  must be read by a key-side digest method — otherwise two machine
  states that differ in it would share a memo key (``digest-hole``);
* every ``counter`` field must be captured as an attribute-delta cell
  by the replay controller on each of the spec's delta paths
  (``counter-uncaptured``);
* every mutated field of the cross-stage handoff object must be
  declared captured, live-rebuilt, or driver-advanced
  (``state-hole``).

A digest method reading an attribute the model does not declare is a
``unmodeled-read`` warning: usually a spec rot signal, occasionally a
new field added digest-first.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.analysis.selfcheck.extract import (
    ComponentModel,
    StateModel,
)
from repro.analysis.selfcheck.findings import (
    SEV_ERROR,
    SEV_WARNING,
    AuditFinding,
)
from repro.analysis.selfcheck.model import (
    CLASS_COUNTER,
    CLASS_TIMING,
    ROLE_DIGEST,
)


def check_component(cm: ComponentModel,
                    cells: Sequence[str]) -> List[AuditFinding]:
    """Coverage findings for one extracted component model."""
    findings: List[AuditFinding] = []
    spec = cm.spec
    if spec.role != ROLE_DIGEST:
        return findings
    for name, fld in sorted(cm.fields.items()):
        where = f"{cm.path}:{fld.line}" if fld.line else cm.path
        if fld.classification == CLASS_TIMING:
            if spec.key_methods and not fld.digest_readers:
                findings.append(AuditFinding(
                    rule="digest-hole", severity=SEV_ERROR,
                    component=spec.cls, attr=name, location=where,
                    message=(
                        f"mutated on the step path by "
                        f"{', '.join(fld.step_mutators)} but read by "
                        f"no key-side digest method "
                        f"({', '.join(spec.key_methods)}): states "
                        f"differing in it would share a memo key")))
        elif fld.classification == CLASS_COUNTER:
            missing = [
                path for path in spec.effective_delta_paths
                if f"{path}.{name}" not in cells]
            if missing:
                findings.append(AuditFinding(
                    rule="counter-uncaptured", severity=SEV_ERROR,
                    component=spec.cls, attr=name, location=where,
                    message=(
                        f"declared a replay-captured counter but no "
                        f"controller attribute cell covers it on "
                        f"engine path(s) {', '.join(missing)}")))
    known = set(cm.fields)
    methods = set(cm.method_names)
    seen: set = set()
    for path in cm.key_reads + cm.restore_reads:
        root = path.split(".")[0]
        if root in known or root in methods or root in seen:
            continue
        seen.add(root)
        findings.append(AuditFinding(
            rule="unmodeled-read", severity=SEV_WARNING,
            component=spec.cls, attr=root, location=cm.path,
            message=(
                "digest surface reads an attribute the extracted "
                "state model does not declare (not assigned in "
                "__init__, not a method)")))
    return findings


def check_state(sm: StateModel) -> List[AuditFinding]:
    """Coverage findings for the cross-stage handoff object."""
    findings: List[AuditFinding] = []
    spec = sm.spec
    declared = set(sm.declared)
    covered = set(spec.captured) | set(spec.live) | set(spec.driver)
    for name, sites in sorted(sm.mutations.items()):
        if name in covered:
            continue
        findings.append(AuditFinding(
            rule="state-hole", severity=SEV_ERROR,
            component=spec.cls, attr=name,
            location=", ".join(sites),
            message=(
                "mutated by a stage but neither captured by the "
                "replay controller, rebuilt by the live split, nor "
                "advanced by the engine driver")))
    for name in sorted(covered - declared):
        findings.append(AuditFinding(
            rule="unmodeled-read", severity=SEV_WARNING,
            component=spec.cls, attr=name, location=spec.module,
            message=(
                "replay contract names a field the handoff "
                "dataclass no longer declares")))
    for name in sorted(set(spec.captured) - set(sm.mutations)):
        findings.append(AuditFinding(
            rule="unmodeled-read", severity=SEV_WARNING,
            component=spec.cls, attr=name, location=spec.module,
            message=(
                "declared replay-captured but no stage mutates it; "
                "the capture is dead weight or the extractor missed "
                "a mutation idiom")))
    return findings


def run_coverage(models: Iterable[ComponentModel],
                 state_model: StateModel,
                 cells: Sequence[str]) -> List[AuditFinding]:
    """All coverage findings across components and the state object."""
    findings: List[AuditFinding] = []
    for cm in models:
        findings.extend(check_component(cm, cells))
    findings.extend(check_state(state_model))
    return findings


def coverage_map(models: Iterable[ComponentModel]
                 ) -> Dict[str, List[str]]:
    """``class -> digest-covered timing fields``, the baseline's
    ratchet surface: a field leaving this map is a loosened model."""
    return {cm.spec.cls: cm.covered_timing_fields()
            for cm in models if cm.spec.role == ROLE_DIGEST}


__all__ = [
    "check_component",
    "check_state",
    "coverage_map",
    "run_coverage",
]
