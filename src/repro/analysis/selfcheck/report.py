"""Self-audit orchestration: extract, lint, fuzz, gate.

:func:`run_self_audit` runs the whole replay-soundness audit —
state-model extraction, digest-coverage and determinism lints, the
seeded static hole mutants, and (optionally) the live mutation-fuzz
oracle — and returns one :class:`SelfAuditReport`.

The report gates CI through :meth:`SelfAuditReport.failures`: new
error findings (or any, without a baseline), warning-count
regressions, any blind fuzz field, any uncaught seeded hole, and any
baseline coverage field that dropped out of the digest-covered set
(``loosened coverage``) all fail the audit. The baseline is a pure
ratchet — regenerating it with ``audit --write-baseline`` is the only
sanctioned way to accept new findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.selfcheck.coverage import (
    check_component,
    coverage_map,
    run_coverage,
)
from repro.analysis.selfcheck.determinism import run_determinism
from repro.analysis.selfcheck.extract import (
    ComponentModel,
    FieldModel,
    StateModel,
    extract_attr_cells,
    extract_component,
    extract_state_model,
)
from repro.analysis.selfcheck.findings import (
    SEV_ERROR,
    SEV_WARNING,
    AuditFinding,
)
from repro.analysis.selfcheck.fuzz import FuzzReport, run_fuzz
from repro.analysis.selfcheck.model import (
    CLASS_TIMING,
    MACHINE_STATE,
    ROLE_DIGEST,
    all_surfaces,
)

#: schema tag for the checked-in baseline file
BASELINE_SCHEMA = 1

#: synthetic field name used by both seeded-hole layers
PHANTOM_FIELD = "_selfcheck_phantom"


@dataclass
class ComponentSummary:
    """Export-friendly digest of one extracted component model."""

    cls: str
    module: str
    role: str
    #: field -> {classification, mutators, readers}
    fields: Dict[str, Dict[str, Any]]
    covered: List[str]


@dataclass
class StaticHoleResult:
    """One seeded mutant of the *static* model: a field dropped from
    its digest-reader set, or a new mutated field left unmodeled."""

    cls: str
    name: str
    field: str
    caught: bool


@dataclass
class SelfAuditReport:
    """Everything one audit run produced."""

    components: List[ComponentSummary]
    findings: List[AuditFinding]
    attr_cells: List[str]
    state_mutations: Dict[str, List[str]]
    static_holes: List[StaticHoleResult]
    fuzz: Optional[FuzzReport] = None
    coverage: Dict[str, List[str]] = field(default_factory=dict)

    def errors(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.severity == SEV_ERROR]

    def warnings(self) -> List[AuditFinding]:
        return [f for f in self.findings
                if f.severity == SEV_WARNING]

    def rule_counts(self, severity: str) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            if f.severity == severity:
                counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    def uncaught_static_holes(self) -> List[StaticHoleResult]:
        return [h for h in self.static_holes if not h.caught]

    def failures(self, baseline: Optional[dict] = None) -> List[str]:
        """Human-readable gate failures; empty means the audit passed.
        """
        out: List[str] = []
        base_rules: Dict[str, Dict[str, int]] = (
            baseline or {}).get("rules", {})
        for severity in (SEV_ERROR, SEV_WARNING):
            allowed = base_rules.get(severity, {})
            for rule, count in sorted(
                    self.rule_counts(severity).items()):
                cap = allowed.get(rule, 0)
                if count > cap:
                    out.append(
                        f"{severity} rule {rule}: {count} finding(s)"
                        f" vs {cap} allowed by baseline")
        for hole in self.uncaught_static_holes():
            out.append(
                f"static hole NOT caught: {hole.cls}.{hole.field} "
                f"({hole.name})")
        if self.fuzz is not None:
            for r in self.fuzz.blind_fields():
                out.append(
                    f"fuzz-blind: {r.cls}.{r.field} — {r.detail}")
            for h in self.fuzz.uncaught_holes():
                out.append(
                    f"fuzz hole NOT caught: {h.cls}.{h.field} "
                    f"({h.name}): {h.detail}")
            out.extend(self.fuzz.gaps)
        base_cov = (baseline or {}).get("coverage", {})
        for cls, fields_ in sorted(base_cov.items()):
            now = set(self.coverage.get(cls, []))
            for name in sorted(set(fields_) - now):
                out.append(
                    f"loosened coverage: {cls}.{name} was digest-"
                    f"covered in the baseline but is not anymore")
        return out

    def baseline_payload(self) -> dict:
        return {
            "schema": BASELINE_SCHEMA,
            "rules": {
                SEV_ERROR: self.rule_counts(SEV_ERROR),
                SEV_WARNING: self.rule_counts(SEV_WARNING),
            },
            "coverage": {cls: sorted(fields_) for cls, fields_
                         in sorted(self.coverage.items())},
        }

    def summary(self) -> str:
        lines = ["replay-soundness self-audit"]
        lines.append(
            f"  components: {len(self.components)} "
            f"({sum(1 for c in self.components if c.role == 'digest')}"
            f" digest surfaces), attribute cells: "
            f"{len(self.attr_cells)}")
        total_fields = sum(len(c.fields) for c in self.components)
        covered = sum(len(c.covered) for c in self.components)
        lines.append(
            f"  modeled fields: {total_fields}, digest-covered "
            f"timing fields: {covered}")
        lines.append(
            f"  findings: {len(self.errors())} error(s), "
            f"{len(self.warnings())} warning(s)")
        caught = sum(1 for h in self.static_holes if h.caught)
        lines.append(
            f"  seeded static holes: {caught}/"
            f"{len(self.static_holes)} caught")
        if self.fuzz is not None:
            probes = [r for r in self.fuzz.results
                      if r.kind == "digest"]
            cells = [r for r in self.fuzz.results
                     if r.kind == "counter"]
            fcaught = sum(1 for h in self.fuzz.holes if h.caught)
            lines.append(
                f"  fuzz oracle: {sum(r.observed for r in probes)}/"
                f"{len(probes)} digest probes observed, "
                f"{sum(r.observed for r in cells)}/{len(cells)} "
                f"counter cells verified, seeded holes "
                f"{fcaught}/{len(self.fuzz.holes)} caught "
                f"(warmed {self.fuzz.warm_cycles} cycles)")
        return "\n".join(lines)


def _summarize(cm: ComponentModel) -> ComponentSummary:
    return ComponentSummary(
        cls=cm.spec.cls, module=cm.spec.module, role=cm.spec.role,
        fields={
            name: {
                "classification": f.classification,
                "mutators": list(f.step_mutators),
                "readers": list(f.digest_readers),
            } for name, f in sorted(cm.fields.items())},
        covered=cm.covered_timing_fields())


def _holed(cm: ComponentModel, drop: str) -> ComponentModel:
    """A copy of *cm* whose field *drop* lost its digest readers —
    the mutant a forgotten ``context_digest`` term produces."""
    fields = dict(cm.fields)
    fields[drop] = replace(fields[drop], digest_readers=())
    return replace(cm, fields=fields)


def _with_phantom(cm: ComponentModel) -> ComponentModel:
    """A copy of *cm* with a new mutated-but-unmodeled timing field."""
    fields = dict(cm.fields)
    fields[PHANTOM_FIELD] = FieldModel(
        name=PHANTOM_FIELD, line=0, classification=CLASS_TIMING,
        hint=None, step_mutators=("step",), digest_readers=())
    return replace(cm, fields=fields)


def seed_static_holes(models: Sequence[ComponentModel],
                      cells: Sequence[str]
                      ) -> List[StaticHoleResult]:
    """Run the coverage lint against seeded mutants of each model:
    every digest-covered timing field dropped from its readers, plus
    one phantom unmodeled field per component. Each mutant must
    produce a ``digest-hole`` error naming the field."""
    results: List[StaticHoleResult] = []
    for cm in models:
        if cm.spec.role != ROLE_DIGEST or not cm.spec.key_methods:
            continue
        for name in cm.covered_timing_fields():
            found = check_component(_holed(cm, name), cells)
            caught = any(f.rule == "digest-hole" and f.attr == name
                         for f in found)
            results.append(StaticHoleResult(
                cls=cm.spec.cls, field=name, caught=caught,
                name=f"drop {name} from the digest-reader set"))
        found = check_component(_with_phantom(cm), cells)
        caught = any(f.rule == "digest-hole"
                     and f.attr == PHANTOM_FIELD for f in found)
        results.append(StaticHoleResult(
            cls=cm.spec.cls, field=PHANTOM_FIELD, caught=caught,
            name="new mutated field left out of the model"))
    return results


def run_self_audit(with_fuzz: bool = True) -> SelfAuditReport:
    """The full audit: extract, lint, seed holes, optionally fuzz."""
    models = [extract_component(s) for s in all_surfaces()]
    cells = extract_attr_cells()
    state: StateModel = extract_state_model(MACHINE_STATE)
    findings = run_coverage(models, state, cells)
    findings.extend(run_determinism())
    report = SelfAuditReport(
        components=[_summarize(cm) for cm in models],
        findings=findings,
        attr_cells=list(cells),
        state_mutations={k: list(v)
                         for k, v in state.mutations.items()},
        static_holes=seed_static_holes(models, cells),
        coverage=coverage_map(models))
    if with_fuzz:
        report.fuzz = run_fuzz(models)
    return report


__all__ = [
    "BASELINE_SCHEMA",
    "ComponentSummary",
    "PHANTOM_FIELD",
    "SelfAuditReport",
    "StaticHoleResult",
    "run_self_audit",
    "seed_static_holes",
]
