"""Summary statistics for benchmark results.

The paper reports arithmetic means of per-benchmark percentage
improvements ("improve performance ... by slightly more than 18%"), so
that is the headline aggregator here; geometric and harmonic means are
provided for completeness and for the ablation studies.
"""

from __future__ import annotations

import math
from typing import Iterable


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average.

    Raises:
        ValueError: on an empty input.
    """
    data = list(values)
    if not data:
        raise ValueError("mean of empty sequence")
    return sum(data) / len(data)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Computed as the mean of logs: a running product overflows to
    ``inf`` on long inputs of large values (and underflows to 0.0 on
    small ones) long before the true mean leaves float range. The log
    sum uses :func:`math.fsum` so thousands of terms accumulate
    without drift.

    Raises:
        ValueError: on an empty input or non-positive values.
    """
    data = list(values)
    if not data:
        raise ValueError("mean of empty sequence")
    if any(value <= 0 for value in data):
        raise ValueError("geometric mean requires positive values")
    return math.exp(math.fsum(math.log(value) for value in data)
                    / len(data))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values (the right mean for rates).

    Raises:
        ValueError: on an empty input or non-positive values.
    """
    data = list(values)
    if not data:
        raise ValueError("mean of empty sequence")
    if any(value <= 0 for value in data):
        raise ValueError("harmonic mean requires positive values")
    return len(data) / sum(1.0 / value for value in data)


def improvement_percent(baseline: float, improved: float) -> float:
    """Percent change of *improved* relative to *baseline*."""
    if baseline == 0:
        return 0.0
    return 100.0 * (improved - baseline) / baseline


def summarize_improvements(rows: dict) -> dict:
    """Aggregate a {benchmark: percent} mapping.

    Returns arithmetic mean, min/max with their benchmarks, and the
    sorted rows — the shape every figure summary needs.
    """
    if not rows:
        raise ValueError("no rows to summarize")
    ordered = sorted(rows.items(), key=lambda kv: kv[1])
    return {
        "mean": arithmetic_mean(rows.values()),
        "min": ordered[0],
        "max": ordered[-1],
        "rows": ordered,
    }


__all__ = [
    "arithmetic_mean",
    "geometric_mean",
    "harmonic_mean",
    "improvement_percent",
    "summarize_improvements",
]
