"""The one-call analysis entry point and its result container.

:func:`analyze_program` runs CFG construction, loop detection, the
opportunity detectors, the placement profile and the lint pass over an
assembled :class:`~repro.program.image.Program`, and folds everything
into an :class:`AnalysisReport` — the object the CLI ``analyze`` verb
prints, ``core/export`` serialises, and the harness cross-checker
treats as the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.analysis.static.cfg import build_cfg
from repro.analysis.static.lint import (
    ERROR,
    WARNING,
    LintFinding,
    lint_counts,
    lint_program,
)
from repro.analysis.static.opportunities import (
    BlockPressure,
    find_opportunities,
    placement_pressure,
)
from repro.program.image import Program


@dataclass
class AnalysisReport:
    """Everything the static analyzer derived from one program."""

    benchmark: str
    instructions: int                # static text length
    blocks: int
    edges: int
    loops: int
    unreachable_blocks: int

    #: per-opt site PCs: a sound superset of what the fill unit's
    #: dynamic passes can ever transform (the opportunity oracle).
    move_sites: List[int] = field(default_factory=list)
    reassoc_sites: List[int] = field(default_factory=list)
    scaled_sites: List[int] = field(default_factory=list)

    #: placement pressure, summed over blocks.
    dep_edges: int = 0
    cross_cluster_edges: int = 0
    dep_height_max: int = 0

    lint: List[LintFinding] = field(default_factory=list)

    # ------------------------------------------------------------------

    def site_sets(self) -> Dict[str, FrozenSet[int]]:
        """Per-class static site sets, ``any_opt`` included."""
        moves = frozenset(self.move_sites)
        reassoc = frozenset(self.reassoc_sites)
        scaled = frozenset(self.scaled_sites)
        return {"moves": moves, "reassoc": reassoc, "scaled": scaled,
                "any_opt": moves | reassoc | scaled}

    def static_bounds(self) -> Dict[str, int]:
        """Distinct-PC upper bounds per opt class."""
        return {name: len(pcs) for name, pcs in self.site_sets().items()}

    def lint_errors(self) -> List[LintFinding]:
        return [f for f in self.lint if f.severity == ERROR]

    def lint_warnings(self) -> List[LintFinding]:
        return [f for f in self.lint if f.severity == WARNING]

    def lint_rule_counts(self) -> Dict[str, int]:
        return lint_counts(self.lint)

    def summary(self) -> str:
        bounds = self.static_bounds()
        return (f"{self.benchmark:12s} instrs={self.instructions:5d} "
                f"blocks={self.blocks:4d} edges={self.edges:4d} "
                f"loops={self.loops:3d} | sites: "
                f"mv={bounds['moves']:4d} ra={bounds['reassoc']:4d} "
                f"sc={bounds['scaled']:4d} any={bounds['any_opt']:4d} | "
                f"lint: {len(self.lint_errors())} errors, "
                f"{len(self.lint_warnings())} warnings")


def analyze_program(program: Program, benchmark: str = "",
                    max_shift: int = 3, num_clusters: int = 4,
                    cluster_size: int = 4) -> AnalysisReport:
    """Run the full static analysis over *program*."""
    cfg = build_cfg(program)
    sites = find_opportunities(cfg, max_shift=max_shift)
    pressure: List[BlockPressure] = placement_pressure(
        cfg, num_clusters, cluster_size)
    findings = lint_program(cfg)
    reachable = cfg.reachable()
    return AnalysisReport(
        benchmark=benchmark or program.name,
        instructions=len(program.instructions),
        blocks=len(cfg.blocks),
        edges=len(cfg.edges()),
        loops=len(cfg.natural_loops()),
        unreachable_blocks=len(cfg.blocks) - len(reachable),
        move_sites=sorted(sites.moves),
        reassoc_sites=sorted(sites.reassoc),
        scaled_sites=sorted(sites.scaled),
        dep_edges=sum(p.dep_edges for p in pressure),
        cross_cluster_edges=sum(p.cross_cluster_edges for p in pressure),
        dep_height_max=max((p.dep_height for p in pressure), default=0),
        lint=findings,
    )


__all__ = ["AnalysisReport", "analyze_program"]
