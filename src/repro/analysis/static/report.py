"""The one-call analysis entry point and its result container.

:func:`analyze_program` runs CFG construction, loop detection, the
opportunity detectors, the placement profile and the lint pass over an
assembled :class:`~repro.program.image.Program`, and folds everything
into an :class:`AnalysisReport` — the object the CLI ``analyze`` verb
prints, ``core/export`` serialises, and the harness cross-checker
treats as the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.analysis.static.callgraph import build_call_graph
from repro.analysis.static.cfg import build_cfg
from repro.analysis.static.lint import (
    ERROR,
    WARNING,
    LintFinding,
    lint_counts,
    lint_program,
)
from repro.analysis.static.opportunities import (
    BlockPressure,
    find_opportunities,
    placement_pressure,
)
from repro.program.image import Program


@dataclass
class InterprocReport:
    """The interprocedural layer's contribution to one report.

    ``*_sites`` are the value-flow-tightened opportunity bounds —
    guaranteed subsets of the intraprocedural site lists in the parent
    :class:`AnalysisReport`. The ``dead_write``/``silent_store``/
    ``predictable`` lists are the ineffectuality oracle's candidate
    PCs (``constant_sites`` ⊆ ``predictable_sites`` are the PCs whose
    result is a single known constant).
    """

    functions: int = 0
    call_edges: int = 0
    recursive_functions: int = 0
    indirect_jumps: int = 0          # JR/JALR instructions in text
    resolved_jumps: int = 0          # ... with value-flow-exact targets
    decided_branches: int = 0        # provably one-way conditionals
    refine_rounds: int = 0

    move_sites: List[int] = field(default_factory=list)
    reassoc_sites: List[int] = field(default_factory=list)
    scaled_sites: List[int] = field(default_factory=list)

    dead_write_sites: List[int] = field(default_factory=list)
    silent_store_sites: List[int] = field(default_factory=list)
    predictable_sites: List[int] = field(default_factory=list)
    constant_sites: List[int] = field(default_factory=list)

    def site_sets(self) -> Dict[str, FrozenSet[int]]:
        moves = frozenset(self.move_sites)
        reassoc = frozenset(self.reassoc_sites)
        scaled = frozenset(self.scaled_sites)
        return {"moves": moves, "reassoc": reassoc, "scaled": scaled,
                "any_opt": moves | reassoc | scaled}

    def static_bounds(self) -> Dict[str, int]:
        return {name: len(pcs) for name, pcs in self.site_sets().items()}

    def ineff_sets(self) -> Dict[str, FrozenSet[int]]:
        return {"dead_write": frozenset(self.dead_write_sites),
                "silent_store": frozenset(self.silent_store_sites),
                "predictable": frozenset(self.predictable_sites)}

    def ineff_counts(self) -> Dict[str, int]:
        return {name: len(pcs) for name, pcs in self.ineff_sets().items()}


@dataclass
class AnalysisReport:
    """Everything the static analyzer derived from one program."""

    benchmark: str
    instructions: int                # static text length
    blocks: int
    edges: int
    loops: int
    unreachable_blocks: int

    #: per-opt site PCs: a sound superset of what the fill unit's
    #: dynamic passes can ever transform (the opportunity oracle).
    move_sites: List[int] = field(default_factory=list)
    reassoc_sites: List[int] = field(default_factory=list)
    scaled_sites: List[int] = field(default_factory=list)

    #: placement pressure, summed over blocks.
    dep_edges: int = 0
    cross_cluster_edges: int = 0
    dep_height_max: int = 0

    lint: List[LintFinding] = field(default_factory=list)

    #: present when the analysis ran with ``interprocedural=True``.
    interproc: Optional[InterprocReport] = None

    # ------------------------------------------------------------------

    def site_sets(self) -> Dict[str, FrozenSet[int]]:
        """Per-class static site sets, ``any_opt`` included."""
        moves = frozenset(self.move_sites)
        reassoc = frozenset(self.reassoc_sites)
        scaled = frozenset(self.scaled_sites)
        return {"moves": moves, "reassoc": reassoc, "scaled": scaled,
                "any_opt": moves | reassoc | scaled}

    def static_bounds(self) -> Dict[str, int]:
        """Distinct-PC upper bounds per opt class."""
        return {name: len(pcs) for name, pcs in self.site_sets().items()}

    def lint_errors(self) -> List[LintFinding]:
        return [f for f in self.lint if f.severity == ERROR]

    def lint_warnings(self) -> List[LintFinding]:
        return [f for f in self.lint if f.severity == WARNING]

    def lint_rule_counts(self,
                         severity: Optional[str] = None
                         ) -> Dict[str, int]:
        return lint_counts(self.lint, severity)

    def summary(self) -> str:
        bounds = self.static_bounds()
        line = (f"{self.benchmark:12s} instrs={self.instructions:5d} "
                f"blocks={self.blocks:4d} edges={self.edges:4d} "
                f"loops={self.loops:3d} | sites: "
                f"mv={bounds['moves']:4d} ra={bounds['reassoc']:4d} "
                f"sc={bounds['scaled']:4d} any={bounds['any_opt']:4d} | "
                f"lint: {len(self.lint_errors())} errors, "
                f"{len(self.lint_warnings())} warnings")
        ip = self.interproc
        if ip is not None:
            tight = ip.static_bounds()
            ineff = ip.ineff_counts()
            line += (f"\n{'':12s} interproc: funcs={ip.functions} "
                     f"edges={ip.call_edges} rec={ip.recursive_functions} "
                     f"jr-resolved={ip.resolved_jumps}/"
                     f"{ip.indirect_jumps} | tight any="
                     f"{tight['any_opt']:4d} | ineff: "
                     f"dw={ineff['dead_write']} "
                     f"ss={ineff['silent_store']} "
                     f"pv={ineff['predictable']}")
        return line


def analyze_program(program: Program, benchmark: str = "",
                    max_shift: int = 3, num_clusters: int = 4,
                    cluster_size: int = 4,
                    interprocedural: bool = False) -> AnalysisReport:
    """Run the full static analysis over *program*.

    With ``interprocedural=True`` the value-flow layer runs as well and
    the report gains an :class:`InterprocReport`. The interprocedural
    lint rules always run — over the *unresolved* call graph, so lint
    output is identical in both modes.
    """
    cfg = build_cfg(program)
    sites = find_opportunities(cfg, max_shift=max_shift)
    pressure: List[BlockPressure] = placement_pressure(
        cfg, num_clusters, cluster_size)
    findings = lint_program(cfg, build_call_graph(cfg))
    reachable = cfg.reachable()
    interproc: Optional[InterprocReport] = None
    if interprocedural:
        from repro.analysis.static.interproc import (
            interprocedural_analysis,
        )
        ia = interprocedural_analysis(program, max_shift=max_shift)
        graph = ia.call_graph
        interproc = InterprocReport(
            functions=len(graph.functions),
            call_edges=len(graph.edges),
            recursive_functions=len(graph.recursive_functions()),
            indirect_jumps=ia.indirect_jumps,
            resolved_jumps=len(ia.resolved_jumps),
            decided_branches=len(ia.decided_branches),
            refine_rounds=ia.rounds,
            move_sites=sorted(ia.sites.moves & sites.moves),
            reassoc_sites=sorted(ia.sites.reassoc & sites.reassoc),
            scaled_sites=sorted(ia.sites.scaled & sites.scaled),
            dead_write_sites=sorted(ia.ineff.dead_writes),
            silent_store_sites=sorted(ia.ineff.silent_stores),
            predictable_sites=sorted(ia.ineff.predictable),
            constant_sites=sorted(ia.ineff.constants),
        )
    return AnalysisReport(
        benchmark=benchmark or program.name,
        instructions=len(program.instructions),
        blocks=len(cfg.blocks),
        edges=len(cfg.edges()),
        loops=len(cfg.natural_loops()),
        unreachable_blocks=len(cfg.blocks) - len(reachable),
        move_sites=sorted(sites.moves),
        reassoc_sites=sorted(sites.reassoc),
        scaled_sites=sorted(sites.scaled),
        dep_edges=sum(p.dep_edges for p in pressure),
        cross_cluster_edges=sum(p.cross_cluster_edges for p in pressure),
        dep_height_max=max((p.dep_height for p in pressure), default=0),
        lint=findings,
        interproc=interproc,
    )


__all__ = ["AnalysisReport", "InterprocReport", "analyze_program"]
