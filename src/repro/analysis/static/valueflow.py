"""Interprocedural constant / value-range propagation.

One forward dataflow problem over the whole-program supergraph (the
over-approximate CFG of :mod:`~repro.analysis.static.cfg`, where call
and return edges are ordinary edges), reusing the PR 4 worklist solver.
Context-insensitive: every path into a block joins into one abstract
state, so a fact at a PC holds for *every* dynamic occurrence of that
PC — exactly the per-PC soundness the ineffectuality oracle and the
edge-refinement layer need.

The value domain is finite-height by construction, which is what makes
the solver terminate on counting loops without a separate widening
pass:

* ``CONST`` — a set of at most :data:`MAX_CONSTS` known 32-bit values
  (link addresses, table entries, small loop counters);
* ``RANGE`` — a signed interval whose bounds are snapped *outward* to a
  fixed threshold ladder (powers of two), so any chain of range joins
  climbs the ladder at most twice per side;
* ``TOP`` — no information.

Memory is abstracted as a map from concrete word addresses to values —
the store→load channel. A store through a singleton-constant address is
a strong update (the address is exact on every path through that
point); a store through a small constant set is a weak update; a store
through anything wider havocs the whole map. Addresses never stored
keep their loader-image contents, so the map only carries the delta
against the initial image.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.analysis.static.cfg import ControlFlowGraph
from repro.analysis.static.dataflow import DataflowAnalysis, DataflowResult, solve
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.semantics import to_s32, to_u32
from repro.machine.memory import Memory
from repro.program.image import Program
from repro.program.loader import STACK_TOP, load_program

INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1

#: largest CONST set before collapsing to a RANGE.
MAX_CONSTS = 8

#: widening ladder: RANGE bounds snap outward onto these values, so
#: every chain of joins reaches a fixpoint in a bounded number of steps.
THRESHOLDS: Tuple[int, ...] = tuple(sorted(
    {INT_MIN, INT_MAX, 0}
    | {1 << k for k in range(31)}
    | {-(1 << k) for k in range(31)}))

#: abstract-memory size cap; beyond it the map havocs (termination and
#: blow-up guard, never hit by the seed workloads).
MAX_CELLS = 4096

_KIND_CONST = 0
_KIND_RANGE = 1
_KIND_TOP = 2


@dataclass(frozen=True)
class AbstractValue:
    """One point of the CONST-set / RANGE / TOP lattice."""

    kind: int
    values: FrozenSet[int] = frozenset()
    lo: int = INT_MIN
    hi: int = INT_MAX

    # -- queries -------------------------------------------------------

    @property
    def is_top(self) -> bool:
        return self.kind == _KIND_TOP

    @property
    def is_const(self) -> bool:
        return self.kind == _KIND_CONST

    def singleton(self) -> Optional[int]:
        """The one known value, or ``None``."""
        if self.kind == _KIND_CONST and len(self.values) == 1:
            return next(iter(self.values))
        return None

    def min(self) -> Optional[int]:
        if self.kind == _KIND_CONST:
            return min(self.values)
        if self.kind == _KIND_RANGE:
            return self.lo
        return None

    def max(self) -> Optional[int]:
        if self.kind == _KIND_CONST:
            return max(self.values)
        if self.kind == _KIND_RANGE:
            return self.hi
        return None

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        if self.kind == _KIND_CONST:
            return "{%s}" % ", ".join(str(v) for v in sorted(self.values))
        if self.kind == _KIND_RANGE:
            return f"[{self.lo}, {self.hi}]"
        return "TOP"


TOP = AbstractValue(kind=_KIND_TOP)
ZERO: AbstractValue   # defined below via const()


def const(*values: int) -> AbstractValue:
    """A CONST set (collapses to a RANGE past :data:`MAX_CONSTS`)."""
    vals = frozenset(to_s32(v) for v in values)
    if not vals:
        return TOP
    if len(vals) > MAX_CONSTS:
        return value_range(min(vals), max(vals))
    return AbstractValue(kind=_KIND_CONST, values=vals)


ZERO = const(0)


def _snap_lo(value: int) -> int:
    for threshold in reversed(THRESHOLDS):
        if threshold <= value:
            return threshold
    return INT_MIN


def _snap_hi(value: int) -> int:
    for threshold in THRESHOLDS:
        if threshold >= value:
            return threshold
    return INT_MAX


def value_range(lo: int, hi: int) -> AbstractValue:
    """A RANGE with bounds snapped outward onto the threshold ladder."""
    if lo > hi:
        return TOP
    lo, hi = _snap_lo(max(lo, INT_MIN)), _snap_hi(min(hi, INT_MAX))
    if lo <= INT_MIN and hi >= INT_MAX:
        return TOP
    return AbstractValue(kind=_KIND_RANGE, lo=lo, hi=hi)


def join_values(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a.is_top or b.is_top:
        return TOP
    if a.is_const and b.is_const:
        return const(*(a.values | b.values))
    a_min, a_max = a.min(), a.max()
    b_min, b_max = b.min(), b.max()
    assert a_min is not None and b_min is not None
    assert a_max is not None and b_max is not None
    return value_range(min(a_min, b_min), max(a_max, b_max))


def definitely_not_equal(a: AbstractValue, b: AbstractValue) -> bool:
    """Whether no concretisation of *a* can equal one of *b*."""
    if a.is_const and b.is_const:
        return not (a.values & b.values)
    a_min, a_max, b_min, b_max = a.min(), a.max(), b.min(), b.max()
    if None in (a_min, a_max, b_min, b_max):
        return False
    assert a_max is not None and b_min is not None
    assert b_max is not None and a_min is not None
    return a_max < b_min or b_max < a_min


# ----------------------------------------------------------------------
# Abstract arithmetic
# ----------------------------------------------------------------------

def _lift2(a: AbstractValue, b: AbstractValue, op) -> AbstractValue:
    """Pointwise application over two small CONST sets, else TOP."""
    if (a.is_const and b.is_const
            and len(a.values) * len(b.values) <= 2 * MAX_CONSTS):
        return const(*(op(x, y) for x in a.values for y in b.values))
    return TOP


def av_add(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    out = _lift2(a, b, lambda x, y: to_s32(x + y))
    if not out.is_top:
        return out
    a_min, a_max, b_min, b_max = a.min(), a.max(), b.min(), b.max()
    if None in (a_min, a_max, b_min, b_max):
        return TOP
    assert a_min is not None and b_min is not None
    assert a_max is not None and b_max is not None
    lo, hi = a_min + b_min, a_max + b_max
    if lo < INT_MIN or hi > INT_MAX:
        return TOP              # may wrap: no interval is sound
    return value_range(lo, hi)


def av_sub(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    out = _lift2(a, b, lambda x, y: to_s32(x - y))
    if not out.is_top:
        return out
    a_min, a_max, b_min, b_max = a.min(), a.max(), b.min(), b.max()
    if None in (a_min, a_max, b_min, b_max):
        return TOP
    assert a_min is not None and b_min is not None
    assert a_max is not None and b_max is not None
    lo, hi = a_min - b_max, a_max - b_min
    if lo < INT_MIN or hi > INT_MAX:
        return TOP
    return value_range(lo, hi)


def _av_cmp_signed(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Abstract ``slt``: {0}, {1} or [0, 1]."""
    out = _lift2(a, b, lambda x, y: int(x < y))
    if not out.is_top:
        return out
    a_min, a_max, b_min, b_max = a.min(), a.max(), b.min(), b.max()
    if None not in (a_min, a_max, b_min, b_max):
        assert a_max is not None and b_min is not None
        assert a_min is not None and b_max is not None
        if a_max < b_min:
            return const(1)
        if a_min >= b_max:
            return const(0)
    return AbstractValue(kind=_KIND_RANGE, lo=0, hi=1)


_CONST_ONLY_ALU3 = {
    Op.AND: lambda x, y: to_s32(x & y),
    Op.OR: lambda x, y: to_s32(x | y),
    Op.XOR: lambda x, y: to_s32(x ^ y),
    Op.NOR: lambda x, y: to_s32(~(x | y)),
    Op.SLTU: lambda x, y: int(to_u32(x) < to_u32(y)),
    Op.MULT: lambda x, y: to_s32(x * y),
}

_CONST_ONLY_ALUI = {
    Op.ORI: lambda x, i: to_s32(x | i),
    Op.XORI: lambda x, i: to_s32(x ^ i),
    Op.SLTIU: lambda x, i: int(to_u32(x) < to_u32(i)),
}

_SHIFT_OPS = {
    Op.SLL: lambda x, s: to_s32(x << s),
    Op.SRL: lambda x, s: to_s32(to_u32(x) >> s),
    Op.SRA: lambda x, s: to_s32(x >> s),
}


# ----------------------------------------------------------------------
# Abstract machine state
# ----------------------------------------------------------------------

RegVals = Tuple[AbstractValue, ...]


@dataclass(frozen=True)
class AbstractMemory:
    """Word-granular store→load map, keyed on concrete addresses.

    ``cells`` holds only the delta over the loader image: a missing key
    means "never stored on any path here", so its contents are the
    initial image bytes. ``havoc`` means a store went through an
    unknown address — any cell may hold anything.
    """

    havoc: bool = False
    cells: Tuple[Tuple[int, AbstractValue], ...] = ()

    def as_dict(self) -> Dict[int, AbstractValue]:
        return dict(self.cells)


_EMPTY_MEMORY = AbstractMemory()


def _pack(cells: Dict[int, AbstractValue]) -> AbstractMemory:
    if len(cells) > MAX_CELLS:
        return AbstractMemory(havoc=True)
    return AbstractMemory(havoc=False,
                          cells=tuple(sorted(cells.items())))


@dataclass(frozen=True)
class VFState:
    """Register file plus abstract memory at one program point."""

    regs: RegVals
    memory: AbstractMemory

    def reg(self, index: Optional[int]) -> AbstractValue:
        if index is None:
            return TOP
        if index == 0:
            return ZERO
        return self.regs[index]

    def with_reg(self, index: int, value: AbstractValue) -> "VFState":
        if index == 0:
            return self
        regs = list(self.regs)
        regs[index] = value
        return VFState(regs=tuple(regs), memory=self.memory)


#: BOTTOM (unreachable) is modelled as ``None``.
VFValue = Optional[VFState]


class ValueFlowAnalysis(DataflowAnalysis[VFValue]):
    """The interprocedural constant/range propagation problem."""

    forward = True

    def __init__(self, program: Program) -> None:
        self.program = program
        self._image = Memory()
        load_program(program, self._image)

    # -- lattice hooks -------------------------------------------------

    def boundary(self, cfg: ControlFlowGraph) -> VFValue:
        # The loader zero-fills the register file, then sets $sp/$gp.
        regs = [ZERO] * 32
        regs[29] = const(STACK_TOP)
        regs[28] = const(self.program.data_base)
        return VFState(regs=tuple(regs), memory=_EMPTY_MEMORY)

    def initial(self, cfg: ControlFlowGraph) -> VFValue:
        return None

    def join(self, a: VFValue, b: VFValue) -> VFValue:
        if a is None:
            return b
        if b is None:
            return a
        regs = tuple(join_values(x, y) for x, y in zip(a.regs, b.regs))
        return VFState(regs=regs, memory=self._join_memory(a.memory,
                                                           b.memory))

    def _join_memory(self, a: AbstractMemory,
                     b: AbstractMemory) -> AbstractMemory:
        if a.havoc or b.havoc:
            return AbstractMemory(havoc=True)
        if a.cells == b.cells:
            return a
        cells_a, cells_b = a.as_dict(), b.as_dict()
        out: Dict[int, AbstractValue] = {}
        for addr in set(cells_a) | set(cells_b):
            # A key missing on one side means that path never stored
            # there: its contents are still the loader image's.
            va = cells_a.get(addr, self._image_word(addr))
            vb = cells_b.get(addr, self._image_word(addr))
            out[addr] = join_values(va, vb)
        return _pack(out)

    # -- the loader image ----------------------------------------------

    def _image_word(self, addr: int) -> AbstractValue:
        return self._image_load(addr, 4, signed=True)

    def _image_load(self, addr: int, size: int,
                    signed: bool) -> AbstractValue:
        if addr < 0 or addr + size > (1 << 32):
            return TOP
        raw = self._image.read_bytes(addr, size)
        return const(int.from_bytes(raw, "little", signed=signed))

    # -- abstract memory operations ------------------------------------

    def _mem_store(self, memory: AbstractMemory, addr: AbstractValue,
                   size: int, value: AbstractValue) -> AbstractMemory:
        if memory.havoc:
            return memory
        if not addr.is_const:
            return AbstractMemory(havoc=True)
        cells = memory.as_dict()
        strong = addr.singleton() is not None
        for a in addr.values:
            a = to_u32(a)
            if size == 4 and a % 4 == 0:
                stored = value
            else:
                stored = TOP           # sub-word or unaligned: give up
            words = {a - a % 4, (a + size - 1) - (a + size - 1) % 4}
            for word in words:
                if size == 4 and a % 4 == 0 and strong:
                    cells[word] = stored
                else:
                    old = cells.get(word, self._image_word(word))
                    cells[word] = join_values(old, stored)
        return _pack(cells)

    def load_from(self, memory: AbstractMemory, addr: AbstractValue,
                  size: int, signed: bool) -> AbstractValue:
        if memory.havoc or not addr.is_const:
            return TOP
        cells = memory.as_dict()
        out: Optional[AbstractValue] = None
        for a in addr.values:
            a = to_u32(a)
            word = a - a % 4
            if size == 4 and a % 4 == 0:
                value = cells.get(word, self._image_load(a, 4, signed))
            elif word in cells or (a + size - 1) - (a + size - 1) % 4 \
                    in cells:
                value = TOP     # sub-word read of a stored-to word
            else:
                value = self._image_load(a, size, signed)
            out = value if out is None else join_values(out, value)
        return TOP if out is None else out

    # -- transfer ------------------------------------------------------

    def transfer(self, instr: Instruction, value: VFValue) -> VFValue:
        if value is None:
            return None
        state = value
        op = instr.op
        pc = instr.pc or 0

        if op in (Op.JAL, Op.JALR):
            dest = instr.dest()
            if dest is not None:
                return state.with_reg(dest, const(pc + 4))
            return state
        dest = instr.dest()
        if instr.is_store():
            addr, stored = self.store_parts(instr, state)
            size = {Op.SW: 4, Op.SH: 2, Op.SB: 1,
                    Op.SWX: 4, Op.SBX: 1}[op]
            memory = self._mem_store(state.memory, addr, size, stored)
            return VFState(regs=state.regs, memory=memory)
        if dest is None:
            return state            # branches, jumps, syscall, nop
        return state.with_reg(dest, self.eval_dest(instr, state))

    def store_parts(self, instr: Instruction, state: VFState
                     ) -> Tuple[AbstractValue, AbstractValue]:
        if instr.op in (Op.SWX, Op.SBX):
            addr = av_add(state.reg(instr.rs), state.reg(instr.rt))
            return addr, state.reg(instr.rd)
        addr = av_add(state.reg(instr.rs), const(instr.imm or 0))
        return addr, state.reg(instr.rt)

    def eval_dest(self, instr: Instruction,
                  state: VFState) -> AbstractValue:
        """Abstract value *instr* writes to its destination."""
        op = instr.op
        a = state.reg(instr.rs)
        if op is Op.ADD:
            return av_add(a, state.reg(instr.rt))
        if op is Op.SUB:
            return av_sub(a, state.reg(instr.rt))
        if op is Op.ADDI:
            return av_add(a, const(instr.imm or 0))
        if op is Op.SLT:
            return _av_cmp_signed(a, state.reg(instr.rt))
        if op is Op.SLTI:
            return _av_cmp_signed(a, const(instr.imm or 0))
        if op in _CONST_ONLY_ALU3:
            return _lift2(a, state.reg(instr.rt), _CONST_ONLY_ALU3[op])
        if op in _CONST_ONLY_ALUI:
            return _lift2(a, const(instr.imm or 0),
                          _CONST_ONLY_ALUI[op])
        if op is Op.ANDI:
            imm = instr.imm or 0
            out = _lift2(a, const(imm), lambda x, i: to_s32(x & i))
            if out.is_top and imm >= 0:
                return value_range(0, imm)
            return out
        if op is Op.DIV:
            return _lift2(a, state.reg(instr.rt), _abstract_div)
        if op in _SHIFT_OPS:
            shamt = (instr.imm or 0) & 0x1F
            return _lift1(a, lambda x: _SHIFT_OPS[op](x, shamt))
        if op in (Op.SLLV, Op.SRLV, Op.SRAV):
            base = {Op.SLLV: Op.SLL, Op.SRLV: Op.SRL,
                    Op.SRAV: Op.SRA}[op]
            return _lift2(a, state.reg(instr.rt),
                          lambda x, s: _SHIFT_OPS[base](x, s & 0x1F))
        if op is Op.LUI:
            return const(((instr.imm or 0) & 0xFFFF) << 16)
        if op in (Op.LW, Op.LH, Op.LHU, Op.LB, Op.LBU):
            size, signed = {Op.LW: (4, True), Op.LH: (2, True),
                            Op.LHU: (2, False), Op.LB: (1, True),
                            Op.LBU: (1, False)}[op]
            addr = av_add(a, const(instr.imm or 0))
            return self.load_from(state.memory, addr, size, signed)
        if op in (Op.LWX, Op.LBX):
            size, signed = (4, True) if op is Op.LWX else (1, True)
            addr = av_add(a, state.reg(instr.rt))
            return self.load_from(state.memory, addr, size, signed)
        return TOP


def _lift1(a: AbstractValue, op) -> AbstractValue:
    if a.is_const:
        return const(*(op(x) for x in a.values))
    return TOP


def _abstract_div(a: int, b: int) -> int:
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return to_s32(-q if (a < 0) != (b < 0) else q)


# ----------------------------------------------------------------------
# Branch and indirect-jump resolution
# ----------------------------------------------------------------------

def branch_decision(instr: Instruction,
                    state: VFState) -> Optional[bool]:
    """``True``/``False`` when the branch provably always goes one way
    under *state*, else ``None``."""
    a = state.reg(instr.rs)
    op = instr.op
    if op in (Op.BEQ, Op.BNE):
        b = state.reg(instr.rt)
        sa, sb = a.singleton(), b.singleton()
        if sa is not None and sb is not None:
            taken = sa == sb
        elif definitely_not_equal(a, b):
            taken = False
        else:
            return None
        return taken if op is Op.BEQ else not taken
    a_min, a_max = a.min(), a.max()
    if a_min is None or a_max is None:
        return None
    if op is Op.BLEZ:
        return True if a_max <= 0 else (False if a_min > 0 else None)
    if op is Op.BGTZ:
        return True if a_min > 0 else (False if a_max <= 0 else None)
    if op is Op.BLTZ:
        return True if a_max < 0 else (False if a_min >= 0 else None)
    if op is Op.BGEZ:
        return True if a_min >= 0 else (False if a_max < 0 else None)
    return None


@dataclass
class ValueFlow:
    """Solved value-flow facts plus per-instruction replay helpers."""

    analysis: ValueFlowAnalysis
    result: DataflowResult[VFValue]
    #: per-instruction entry state, filled lazily per block.
    _cache: Dict[int, Dict[int, VFValue]] = field(default_factory=dict)

    def state_before(self, pc: int) -> VFValue:
        """Abstract state immediately before the instruction at *pc*."""
        cfg = self.result.cfg
        block = cfg.block_of(pc)
        states = self._cache.get(block.index)
        if states is None:
            values = self.result.instr_values(block.index)
            states = {(instr.pc or 0): value
                      for instr, value in zip(block.instrs, values)}
            self._cache[block.index] = states
        return states[pc]

    def dest_value(self, instr: Instruction) -> Optional[AbstractValue]:
        """Abstract destination value of *instr*, ``None`` when the
        instruction is unreachable or writes no register."""
        if instr.dest() is None:
            return None
        state = self.state_before(instr.pc or 0)
        if state is None:
            return None
        return self.analysis.eval_dest(instr, state)


def solve_valueflow(cfg: ControlFlowGraph,
                    program: Optional[Program] = None) -> ValueFlow:
    """Run the propagation to fixpoint over *cfg*."""
    analysis = ValueFlowAnalysis(program or cfg.program)
    return ValueFlow(analysis=analysis, result=solve(cfg, analysis))


__all__ = [
    "AbstractValue",
    "MAX_CONSTS",
    "TOP",
    "ValueFlow",
    "ValueFlowAnalysis",
    "VFState",
    "av_add",
    "av_sub",
    "branch_decision",
    "const",
    "definitely_not_equal",
    "join_values",
    "solve_valueflow",
    "value_range",
]
