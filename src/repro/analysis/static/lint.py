"""Workload lint: structural sanity checks over the static CFG.

Four rules, each an honest whole-program property of the assembled
image (no execution involved):

* ``bad-branch-target`` (error) — a direct branch or jump whose target
  lies outside the text segment or off instruction alignment.
* ``undefined-read`` (error) — a register read with *no* reaching
  definition on any CFG path from entry (the loader only initialises
  ``$zero``/``$gp``/``$sp``). Because the CFG over-approximates paths,
  extra edges can only *add* definitions: a report here is a
  definition-free read on every real path too.
* ``unreachable-block`` (warning) — a block no over-approximate path
  from entry reaches. Warning severity: dead code is suspicious in a
  tuned synthetic workload but breaks nothing.
* ``dead-write`` (warning) — a register written but never live
  afterwards. Warning severity: the over-approximate CFG *under*\\-
  states deadness never, but ABI-style bookkeeping (saving a register
  that is only conditionally reused) is legitimate.

Two more rules activate when the caller supplies a call graph
(:func:`repro.analysis.static.callgraph.build_call_graph`):

* ``unreachable-function`` (warning) — a discovered function entry no
  chain of call edges from the program entry reaches. The call edges
  over-approximate (unresolved indirect calls edge everywhere), so a
  report means *no* real path can call the function either.
* ``missing-return`` (warning) — a function whose CFG can fall off the
  end of its extent into the following function: control arrives at
  the next function without any call. Usually a forgotten ``jr $ra``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.static.callgraph import CallGraph
from repro.analysis.static.cfg import ControlFlowGraph
from repro.analysis.static.dataflow import (
    Liveness,
    ReachingDefinitions,
    instr_uses,
    solve,
)
from repro.isa.registers import reg_name

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnosis, anchored to an instruction address."""

    rule: str
    severity: str
    pc: Optional[int]
    message: str

    def render(self) -> str:
        where = f"{self.pc:#x}: " if self.pc is not None else ""
        return f"[{self.severity}] {where}{self.rule}: {self.message}"


def lint_program(cfg: ControlFlowGraph,
                 call_graph: Optional[CallGraph] = None
                 ) -> List[LintFinding]:
    """Run every rule over *cfg*; findings sorted by address.

    With a *call_graph* the two interprocedural rules
    (``unreachable-function``, ``missing-return``) run as well.
    """
    findings: List[LintFinding] = []
    findings.extend(_bad_branch_targets(cfg))
    reachable = cfg.reachable()
    findings.extend(_unreachable_blocks(cfg, reachable))
    findings.extend(_undefined_reads(cfg, reachable))
    findings.extend(_dead_writes(cfg, reachable))
    if call_graph is not None:
        findings.extend(_unreachable_functions(call_graph))
        findings.extend(_missing_returns(call_graph))
    findings.sort(key=lambda f: (f.pc if f.pc is not None else -1, f.rule))
    return findings


def lint_counts(findings: List[LintFinding],
                severity: Optional[str] = None) -> Dict[str, int]:
    """Per-rule finding counts (the CI baseline's unit of regression),
    optionally restricted to one severity."""
    counts: Dict[str, int] = {}
    for finding in findings:
        if severity is not None and finding.severity != severity:
            continue
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts


def _bad_branch_targets(cfg: ControlFlowGraph) -> List[LintFinding]:
    out = []
    for pc, target in cfg.bad_targets:
        kind = ("misaligned" if target % 4 else "out-of-text")
        out.append(LintFinding(
            rule="bad-branch-target", severity=ERROR, pc=pc,
            message=f"transfer targets {target:#x} ({kind})"))
    return out


def _unreachable_blocks(cfg: ControlFlowGraph,
                        reachable: set) -> List[LintFinding]:
    out = []
    for block in cfg.blocks:
        if block.index not in reachable:
            out.append(LintFinding(
                rule="unreachable-block", severity=WARNING,
                pc=block.start,
                message=f"{len(block.instrs)}-instruction block is "
                        f"unreachable from entry"))
    return out


def _undefined_reads(cfg: ControlFlowGraph,
                     reachable: set) -> List[LintFinding]:
    reaching = solve(cfg, ReachingDefinitions())
    out = []
    for block in cfg.blocks:
        if block.index not in reachable:
            continue                 # values there are vacuous
        values = reaching.instr_values(block.index)
        for instr, reach in zip(block.instrs, values):
            for reg in instr_uses(instr):
                if reg not in reach:
                    out.append(LintFinding(
                        rule="undefined-read", severity=ERROR,
                        pc=instr.pc,
                        message=f"reads ${reg_name(reg)} which no "
                                f"path defines"))
    return out


def _dead_writes(cfg: ControlFlowGraph,
                 reachable: set) -> List[LintFinding]:
    liveness = solve(cfg, Liveness())
    out = []
    for block in cfg.blocks:
        if block.index not in reachable:
            continue
        values = liveness.instr_values(block.index)
        for instr, live_after in zip(block.instrs, values):
            dest = instr.dest()
            if dest is None or (live_after >> dest) & 1:
                continue
            out.append(LintFinding(
                rule="dead-write", severity=WARNING, pc=instr.pc,
                message=f"writes ${reg_name(dest)} but the value is "
                        f"never read"))
    return out


def _unreachable_functions(call_graph: CallGraph) -> List[LintFinding]:
    reachable = call_graph.reachable()
    out = []
    for entry, info in call_graph.functions.items():
        if entry not in reachable:
            out.append(LintFinding(
                rule="unreachable-function", severity=WARNING,
                pc=entry,
                message=f"function {info.name} is never called from "
                        f"the program entry"))
    return out


def _missing_returns(call_graph: CallGraph) -> List[LintFinding]:
    out = []
    for entry, info in call_graph.functions.items():
        for pc in info.fall_off:
            out.append(LintFinding(
                rule="missing-return", severity=WARNING, pc=pc,
                message=f"function {info.name} can fall off its end "
                        f"into the next function"))
    return out


__all__ = ["ERROR", "WARNING", "LintFinding", "lint_counts",
           "lint_program"]
