"""Static program analysis over assembled images.

CFG + dominators + natural loops (:mod:`~repro.analysis.static.cfg`),
a generic iterative dataflow framework
(:mod:`~repro.analysis.static.dataflow`), the fill-unit opportunity
detectors (:mod:`~repro.analysis.static.opportunities`), the workload
lint pass (:mod:`~repro.analysis.static.lint`) and the
:class:`AnalysisReport` facade (:mod:`~repro.analysis.static.report`).
See ``docs/static-analysis.md``.
"""

from repro.analysis.static.cfg import (
    BasicBlock,
    ControlFlowGraph,
    Loop,
    build_cfg,
)
from repro.analysis.static.dataflow import (
    ENTRY_DEF,
    ENTRY_REGS,
    DataflowAnalysis,
    DataflowResult,
    Liveness,
    ReachingDefinitions,
    def_use_chains,
    solve,
)
from repro.analysis.static.lint import LintFinding, lint_program
from repro.analysis.static.opportunities import (
    BlockPressure,
    OpportunitySites,
    block_pressure,
    find_opportunities,
    placement_pressure,
    possible_move_sources,
)
from repro.analysis.static.report import AnalysisReport, analyze_program

__all__ = [
    "AnalysisReport",
    "BasicBlock",
    "BlockPressure",
    "ControlFlowGraph",
    "DataflowAnalysis",
    "DataflowResult",
    "ENTRY_DEF",
    "ENTRY_REGS",
    "LintFinding",
    "Liveness",
    "Loop",
    "OpportunitySites",
    "ReachingDefinitions",
    "analyze_program",
    "block_pressure",
    "build_cfg",
    "def_use_chains",
    "find_opportunities",
    "lint_program",
    "placement_pressure",
    "possible_move_sources",
    "solve",
]
