"""Static program analysis over assembled images.

CFG + dominators + natural loops (:mod:`~repro.analysis.static.cfg`),
a generic iterative dataflow framework
(:mod:`~repro.analysis.static.dataflow`), the fill-unit opportunity
detectors (:mod:`~repro.analysis.static.opportunities`), the workload
lint pass (:mod:`~repro.analysis.static.lint`) and the
:class:`AnalysisReport` facade (:mod:`~repro.analysis.static.report`).

The interprocedural layer: a call graph with SCC condensation
(:mod:`~repro.analysis.static.callgraph`), constant/value-range
propagation with a store→load channel
(:mod:`~repro.analysis.static.valueflow`), value-flow-driven
supergraph refinement (:mod:`~repro.analysis.static.interproc`) and
the ineffectuality oracle
(:mod:`~repro.analysis.static.ineffectuality`).
See ``docs/static-analysis.md``.
"""

from repro.analysis.static.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    build_call_graph,
)
from repro.analysis.static.cfg import (
    BasicBlock,
    ControlFlowGraph,
    Loop,
    build_cfg,
)
from repro.analysis.static.dataflow import (
    ENTRY_DEF,
    ENTRY_REGS,
    DataflowAnalysis,
    DataflowResult,
    Liveness,
    ReachingDefinitions,
    def_use_chains,
    solve,
)
from repro.analysis.static.ineffectuality import (
    INEFF_CLASSES,
    IneffectualitySites,
    MustUse,
    classify_ineffectuality,
    ineffectuality_sites,
)
from repro.analysis.static.interproc import (
    InterprocAnalysis,
    interprocedural_analysis,
)
from repro.analysis.static.lint import LintFinding, lint_program
from repro.analysis.static.opportunities import (
    BlockPressure,
    OpportunitySites,
    block_pressure,
    find_opportunities,
    placement_pressure,
    possible_move_sources,
)
from repro.analysis.static.report import (
    AnalysisReport,
    InterprocReport,
    analyze_program,
)
from repro.analysis.static.valueflow import (
    AbstractValue,
    ValueFlow,
    ValueFlowAnalysis,
    solve_valueflow,
)

__all__ = [
    "AbstractValue",
    "AnalysisReport",
    "BasicBlock",
    "BlockPressure",
    "CallGraph",
    "CallSite",
    "ControlFlowGraph",
    "DataflowAnalysis",
    "DataflowResult",
    "ENTRY_DEF",
    "ENTRY_REGS",
    "FunctionInfo",
    "INEFF_CLASSES",
    "IneffectualitySites",
    "InterprocAnalysis",
    "InterprocReport",
    "LintFinding",
    "Liveness",
    "Loop",
    "MustUse",
    "OpportunitySites",
    "ReachingDefinitions",
    "ValueFlow",
    "ValueFlowAnalysis",
    "analyze_program",
    "block_pressure",
    "build_call_graph",
    "build_cfg",
    "classify_ineffectuality",
    "def_use_chains",
    "find_opportunities",
    "ineffectuality_sites",
    "interprocedural_analysis",
    "lint_program",
    "placement_pressure",
    "possible_move_sources",
    "solve",
    "solve_valueflow",
]
