"""Control-flow graph construction over assembled program images.

The graph is built from decoded instructions only — no execution — and
deliberately *over-approximates* control flow so that every dynamically
executable transition is covered by a static edge (the soundness
property ``tests/test_static_edges.py`` checks against the committed
stream):

* direct branches get their target edge plus the fallthrough;
* calls (``JAL``/``JALR``) follow the call — the matching return edge
  comes from the callee's ``JR $ra``, which edges to *every* call
  return site in the program;
* non-return indirect jumps (jump tables) edge to every labelled text
  address, since the assembler resolves table entries through symbols;
* serializing instructions fall through (program exit simply takes no
  edge at run time).

Direct targets that land outside the text segment or off instruction
alignment produce no edge and are recorded in
:attr:`ControlFlowGraph.bad_targets` for the lint pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.program.image import Program


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    Control transfers only ever appear as the final instruction: the
    address after any transfer is a leader by construction.
    """

    index: int
    start: int
    instrs: List[Instruction]
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    @property
    def end(self) -> int:
        """One past the last instruction byte."""
        return self.start + 4 * len(self.instrs)

    @property
    def last(self) -> Instruction:
        return self.instrs[-1]


@dataclass(frozen=True)
class Loop:
    """A natural loop: the back edge's target and the body it closes."""

    header: int                 # block index of the loop header
    back_edge_source: int       # block index the back edge leaves from
    body: FrozenSet[int]        # block indices, header included


def direct_target(instr: Instruction) -> Optional[int]:
    """Statically-known transfer target of *instr*, or ``None``.

    Conditional branches are PC-relative byte displacements; direct
    jumps and calls carry absolute byte addresses.
    """
    if instr.is_cond_branch():
        return (instr.pc or 0) + (instr.imm or 0)
    if instr.op in (Op.J, Op.JAL):
        return instr.imm
    return None


class ControlFlowGraph:
    """Basic blocks plus over-approximate edges for one program."""

    def __init__(self, program: Program, blocks: List[BasicBlock],
                 entry_index: int,
                 bad_targets: List[Tuple[int, int]]) -> None:
        self.program = program
        self.blocks = blocks
        self.entry = entry_index
        #: (branch pc, target) pairs whose target is outside the text
        #: segment or not 4-aligned (no edge was created; lint fodder).
        self.bad_targets = bad_targets
        self._block_of_pc: Dict[int, int] = {}
        for block in blocks:
            for instr in block.instrs:
                self._block_of_pc[instr.pc or 0] = block.index
        self._starts: Dict[int, int] = {b.start: b.index for b in blocks}
        self._doms: Optional[List[Set[int]]] = None

    # -- navigation ----------------------------------------------------

    def block_of(self, pc: int) -> BasicBlock:
        """The block containing instruction address *pc*.

        Raises:
            KeyError: if *pc* is not an instruction address.
        """
        return self.blocks[self._block_of_pc[pc]]

    def block_starting(self, pc: int) -> Optional[BasicBlock]:
        index = self._starts.get(pc)
        return None if index is None else self.blocks[index]

    def edges(self) -> Set[Tuple[int, int]]:
        """All edges as (source block index, target block index)."""
        return {(b.index, s) for b in self.blocks for s in b.succs}

    def has_flow(self, pc: int, next_pc: int) -> bool:
        """Whether the transition ``pc -> next_pc`` is covered by the
        graph: an intra-block fallthrough, or a block-terminal edge to
        a successor block's start."""
        index = self._block_of_pc.get(pc)
        if index is None:
            return False
        block = self.blocks[index]
        if pc != (block.last.pc or 0):
            return next_pc == pc + 4
        return any(self.blocks[s].start == next_pc for s in block.succs)

    # -- reachability, dominators, loops -------------------------------

    def reachable(self) -> Set[int]:
        """Block indices reachable from the entry block."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self.blocks[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def _rpo(self) -> List[int]:
        """Reverse postorder over reachable blocks (iterative DFS)."""
        seen: Set[int] = set()
        order: List[int] = []
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            node, child = stack[-1]
            succs = self.blocks[node].succs
            if child < len(succs):
                stack[-1] = (node, child + 1)
                nxt = succs[child]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    def dominators(self) -> List[Set[int]]:
        """Per-block dominator sets (iterative dataflow over RPO).

        Unreachable blocks get an empty set (dominance is undefined
        off the entry's reachable region).
        """
        if self._doms is not None:
            return self._doms
        order = self._rpo()
        reachable = set(order)
        every = set(order)
        doms: List[Set[int]] = [set() for _ in self.blocks]
        for index in order:
            doms[index] = set(every)
        doms[self.entry] = {self.entry}
        changed = True
        while changed:
            changed = False
            for index in order:
                if index == self.entry:
                    continue
                preds = [p for p in self.blocks[index].preds
                         if p in reachable]
                new = set(every)
                for pred in preds:
                    new &= doms[pred]
                if not preds:
                    new = set()
                new.add(index)
                if new != doms[index]:
                    doms[index] = new
                    changed = True
        self._doms = doms
        return doms

    def natural_loops(self) -> List[Loop]:
        """Natural loops from back edges (edges into a dominator)."""
        doms = self.dominators()
        loops: List[Loop] = []
        for block in self.blocks:
            for succ in block.succs:
                if succ not in doms[block.index]:
                    continue
                body = {succ, block.index}
                stack = [block.index]
                while stack:
                    node = stack.pop()
                    if node == succ:
                        continue
                    for pred in self.blocks[node].preds:
                        if pred not in body:
                            body.add(pred)
                            stack.append(pred)
                loops.append(Loop(header=succ,
                                  back_edge_source=block.index,
                                  body=frozenset(body)))
        return loops


def _text_symbols(program: Program) -> List[int]:
    """Symbol addresses that land inside the text segment."""
    return sorted({addr for addr in program.symbols.values()
                   if program.contains_pc(addr)})


def _return_sites(program: Program) -> List[int]:
    """Addresses following every call — where a ``JR $ra`` may land."""
    sites = []
    for instr in program.instructions:
        if instr.op in (Op.JAL, Op.JALR):
            site = (instr.pc or 0) + 4
            if program.contains_pc(site):
                sites.append(site)
    return sites


def build_cfg(program: Program) -> ControlFlowGraph:
    """Construct the over-approximate CFG of *program*.

    Raises:
        ValueError: for an empty program (no instructions to anchor
            an entry block on).
    """
    if not program.instructions:
        raise ValueError("cannot build a CFG for an empty program")
    entry_pc = program.entry if program.entry is not None \
        else program.text_base
    if not program.contains_pc(entry_pc):
        entry_pc = program.text_base

    bad_targets: List[Tuple[int, int]] = []
    # text_base anchors the block partition so every instruction lands
    # in exactly one block even when the entry symbol sits mid-text.
    leaders: Set[int] = {entry_pc, program.text_base}
    for instr in program.instructions:
        pc = instr.pc or 0
        target = direct_target(instr)
        if target is not None:
            if program.contains_pc(target):
                leaders.add(target)
            else:
                bad_targets.append((pc, target))
        if instr.is_ctrl() and program.contains_pc(pc + 4):
            leaders.add(pc + 4)
    symbol_starts = _text_symbols(program)
    leaders.update(symbol_starts)
    return_sites = _return_sites(program)
    leaders.update(return_sites)

    starts = sorted(leaders)
    bounds = starts[1:] + [program.text_end]
    blocks: List[BasicBlock] = []
    start_index: Dict[int, int] = {}
    for index, (start, stop) in enumerate(zip(starts, bounds)):
        instrs = [program.instr_at(pc) for pc in range(start, stop, 4)]
        blocks.append(BasicBlock(index=index, start=start, instrs=instrs))
        start_index[start] = index

    def link(src: BasicBlock, target_pc: int) -> None:
        dst = start_index.get(target_pc)
        if dst is not None and dst not in src.succs:
            src.succs.append(dst)

    for block in blocks:
        last = block.last
        pc = last.pc or 0
        op = last.op
        if last.is_cond_branch():
            target = direct_target(last)
            if target is not None and program.contains_pc(target):
                link(block, target)
            link(block, pc + 4)
        elif op in (Op.J, Op.JAL):
            target = direct_target(last)
            if target is not None and program.contains_pc(target):
                link(block, target)
        elif last.is_return():
            for site in return_sites:
                link(block, site)
        elif op is Op.JR or op is Op.JALR:
            # Indirect transfer through a register: over-approximate
            # with every labelled text address (jump-table entries are
            # label words the assembler resolved through symbols).
            for addr in symbol_starts:
                link(block, addr)
        elif op is Op.HALT:
            pass                       # program exit: no successors
        else:
            # Plain fallthrough (including SYSCALL, which may exit at
            # run time — the untaken edge only over-approximates).
            if program.contains_pc(pc + 4):
                link(block, pc + 4)
    for block in blocks:
        for succ in block.succs:
            blocks[succ].preds.append(block.index)

    return ControlFlowGraph(program, blocks, start_index[entry_pc],
                            bad_targets)


__all__ = ["BasicBlock", "ControlFlowGraph", "Loop", "build_cfg",
           "direct_target"]
