"""Static upper bounds on the fill unit's optimization opportunities.

For each of the paper's rewrites the fill unit's eligibility test is a
*dynamic* property of a trace segment — an alias or provenance fact
established along the segment's path. Every segment path is a subpath
of some CFG path, and every segment-local fact is killed by exactly the
register redefinitions that kill it here, so a forward may-analysis
from program entry over-approximates any state a segment can be in.
The PCs this module marks are therefore a sound superset of the PCs
the dynamic passes can ever transform — the *opportunity oracle* the
harness cross-checker enforces (``repro.harness.crosscheck``).

Three register sets flow together (move rewriting feeds the other two,
because a rewritten operand can expose a chain the original hid):

* ``Z`` — registers that may alias ``$zero`` through marked moves;
  an instruction whose operand is in ``Z`` may *become* a move idiom
  after the move pass rewrites that operand.
* ``A`` — registers that may hold a live immediate-add provenance
  (any ``ADDI`` destination, propagated through possible moves).
* ``H`` — registers that may hold a live short-shift result
  (``SLL`` by 1..max_shift, propagated through possible moves).

The oracle only covers the paper's four passes: the extension passes
(CSE, dead-code, predication) synthesise new moves and rewrite
opcodes, deliberately breaking the static bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.static.cfg import BasicBlock, ControlFlowGraph
from repro.analysis.static.dataflow import DataflowAnalysis, solve
from repro.fillunit.opts.scaledadd import _SWAPPABLE as SWAPPABLE_FORMATS
from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    REASSOCIABLE,
    SCALED_ADD_SHIFTS,
    SCALED_ADD_TARGETS,
    Op,
    op_info,
)
from repro.isa.registers import ZERO_REG

#: (Z, A, H) register bitmask triple.
OppValue = Tuple[int, int, int]


def _zeroish(reg: int, zero_mask: int) -> bool:
    return reg == ZERO_REG or bool((zero_mask >> reg) & 1)


def possible_move_sources(instr: Instruction,
                          zero_mask: int = 0) -> Tuple[int, ...]:
    """Candidate source registers if *instr* may be marked as a move.

    Mirrors :func:`repro.isa.instruction.move_source`, extended with
    *zero_mask*: a register that may alias ``$zero`` makes the
    register-form idioms (``ADD/OR/XOR/SUB`` with a zero operand)
    possible after the move pass rewrites the operand. Empty when the
    instruction can never be marked.
    """
    if instr.rd in (None, ZERO_REG):
        return ()
    op = instr.op
    if op in (Op.ADDI, Op.ORI, Op.XORI) and instr.imm == 0:
        return (instr.rs or 0,)
    if op in (Op.ADD, Op.OR, Op.XOR):
        rs, rt = instr.rs or 0, instr.rt or 0
        out: List[int] = []
        if _zeroish(rt, zero_mask):
            out.append(rs)
        if _zeroish(rs, zero_mask) and rt not in out:
            out.append(rt)
        return tuple(out)
    if op is Op.SUB and _zeroish(instr.rt or 0, zero_mask):
        return (instr.rs or 0,)
    if op in (Op.SLL, Op.SRL, Op.SRA) and instr.imm == 0:
        return (instr.rs or 0,)
    if op is Op.ANDI and instr.imm == 0:
        return (ZERO_REG,)
    return ()


class OpportunityAnalysis(DataflowAnalysis[OppValue]):
    """The joint forward may-analysis behind all three site detectors.

    The three components are computed together because ``A`` and ``H``
    propagate through *possible* moves, whose possibility depends on
    ``Z`` at the same point.
    """

    forward = True

    def __init__(self, max_shift: int = 3) -> None:
        self.max_shift = max_shift

    def boundary(self, cfg: ControlFlowGraph) -> OppValue:
        return (0, 0, 0)

    def initial(self, cfg: ControlFlowGraph) -> OppValue:
        return (0, 0, 0)

    def join(self, a: OppValue, b: OppValue) -> OppValue:
        return (a[0] | b[0], a[1] | b[1], a[2] | b[2])

    def transfer(self, instr: Instruction, value: OppValue) -> OppValue:
        z, a, h = value
        dest = instr.dest()
        if dest is None:
            return value
        sources = possible_move_sources(instr, z)
        gen_z = any(_zeroish(s, z) for s in sources)
        gen_a = (instr.op in REASSOCIABLE
                 or any((a >> s) & 1 for s in sources))
        gen_h = ((instr.op in SCALED_ADD_SHIFTS
                  and 1 <= (instr.imm or 0) <= self.max_shift)
                 or any((h >> s) & 1 for s in sources))
        mask = ~(1 << dest)
        z &= mask
        a &= mask
        h &= mask
        bit = 1 << dest
        if gen_z:
            z |= bit
        if gen_a:
            a |= bit
        if gen_h:
            h |= bit
        return (z, a, h)


@dataclass(frozen=True)
class OpportunitySites:
    """Static site sets: the PCs each pass may ever transform."""

    moves: FrozenSet[int]
    reassoc: FrozenSet[int]
    scaled: FrozenSet[int]

    @property
    def any_opt(self) -> FrozenSet[int]:
        return self.moves | self.reassoc | self.scaled

    def counts(self) -> Dict[str, int]:
        return {"moves": len(self.moves), "reassoc": len(self.reassoc),
                "scaled": len(self.scaled), "any_opt": len(self.any_opt)}

    def as_sets(self) -> Dict[str, FrozenSet[int]]:
        return {"moves": self.moves, "reassoc": self.reassoc,
                "scaled": self.scaled, "any_opt": self.any_opt}


def find_opportunities(cfg: ControlFlowGraph,
                       max_shift: int = 3) -> OpportunitySites:
    """Run the joint analysis and classify every instruction."""
    result = solve(cfg, OpportunityAnalysis(max_shift))
    moves: Set[int] = set()
    reassoc: Set[int] = set()
    scaled: Set[int] = set()
    for block in cfg.blocks:
        for instr, value in zip(block.instrs,
                                result.instr_values(block.index)):
            z, a, h = value
            pc = instr.pc or 0
            if possible_move_sources(instr, z):
                moves.add(pc)
            if (instr.op in REASSOCIABLE and instr.rs is not None
                    and (a >> instr.rs) & 1):
                reassoc.add(pc)
            if instr.op in SCALED_ADD_TARGETS:
                rs_hit = (instr.rs is not None
                          and (h >> instr.rs) & 1)
                rt_hit = (instr.format in SWAPPABLE_FORMATS
                          and instr.rt is not None
                          and (h >> instr.rt) & 1)
                if rs_hit or rt_hit:
                    scaled.add(pc)
    return OpportunitySites(moves=frozenset(moves),
                            reassoc=frozenset(reassoc),
                            scaled=frozenset(scaled))


# ----------------------------------------------------------------------
# Placement pressure (the fourth opt has no per-PC rewrite to bound —
# it permutes issue slots — so its static mirror is a per-block
# dependence profile: how much there *is* to steer).
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BlockPressure:
    """Dependence profile of one basic block."""

    start: int
    length: int
    dep_edges: int            # intra-block producer->consumer pairs
    dep_height: int           # latency-weighted critical path
    cross_cluster_edges: int  # edges crossing clusters if issued in order


def block_pressure(block: BasicBlock, num_clusters: int = 4,
                   cluster_size: int = 4) -> BlockPressure:
    """Profile *block* under naive in-order issue-slot assignment.

    ``cross_cluster_edges`` counts the dependence edges that would pay
    the +1-cycle cross-cluster bypass if instructions were packed into
    slots in program order — an upper bound on what placement can win
    back within the block.
    """
    width = num_clusters * cluster_size
    last_def: Dict[int, int] = {}
    height: List[int] = []
    edges = 0
    crossing = 0
    for index, instr in enumerate(block.instrs):
        producers = {last_def[reg] for reg in instr.sources()
                     if reg in last_def}
        depth = 0
        for producer in producers:
            edges += 1
            p_cluster = (producer % width) // cluster_size
            c_cluster = (index % width) // cluster_size
            if p_cluster != c_cluster:
                crossing += 1
            depth = max(depth, height[producer])
        height.append(depth + op_info(instr.op).latency)
        dest = instr.dest()
        if dest is not None:
            last_def[dest] = index
    return BlockPressure(start=block.start, length=len(block.instrs),
                         dep_edges=edges,
                         dep_height=max(height) if height else 0,
                         cross_cluster_edges=crossing)


def placement_pressure(cfg: ControlFlowGraph, num_clusters: int = 4,
                       cluster_size: int = 4) -> List[BlockPressure]:
    return [block_pressure(block, num_clusters, cluster_size)
            for block in cfg.blocks]


__all__ = [
    "BlockPressure",
    "OpportunityAnalysis",
    "OpportunitySites",
    "block_pressure",
    "find_opportunities",
    "placement_pressure",
    "possible_move_sources",
]
