"""A small iterative dataflow framework over the static CFG.

One generic worklist solver (:func:`solve`) drives any
:class:`DataflowAnalysis` — forward or backward, any join-semilattice
value — to a fixpoint. The concrete analyses the detectors and the
lint pass need are provided here: reaching definitions, liveness and
def-use chains. Register sets are plain 32-bit masks; reaching
definitions map each register to the set of defining PCs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    ClassVar,
    Dict,
    FrozenSet,
    Generic,
    List,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from repro.analysis.static.cfg import BasicBlock, ControlFlowGraph
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op

V = TypeVar("V")

#: pseudo-PC for definitions live at program entry (the loader's
#: ``$sp``/``$gp`` initialisation plus hardwired ``$zero``).
ENTRY_DEF = -1

#: registers the loader initialises before the first instruction.
ENTRY_REGS: Tuple[int, ...] = (0, 28, 29)

#: out-of-band registers a syscall reads (service in ``$v0``,
#: argument in ``$a0``; see ``repro.machine.executor``).
SYSCALL_USES: Tuple[int, ...] = (2, 4)


def instr_defs(instr: Instruction) -> Tuple[int, ...]:
    """Registers *instr* writes (empty for ``$zero`` sinks)."""
    dest = instr.dest()
    return () if dest is None else (dest,)


def instr_uses(instr: Instruction) -> Tuple[int, ...]:
    """Registers *instr* reads, including a syscall's out-of-band
    service/argument registers."""
    if instr.op is Op.SYSCALL:
        return SYSCALL_USES
    return instr.sources()


class DataflowAnalysis(Generic[V]):
    """One dataflow problem: direction, lattice and transfer.

    Subclasses set :attr:`forward` and implement the four hooks; the
    per-instruction :meth:`transfer` is composed over blocks by the
    solver (in reverse instruction order for backward problems).
    """

    forward: ClassVar[bool] = True

    def boundary(self, cfg: ControlFlowGraph) -> V:
        """Value at the entry block (forward) / exit blocks (backward)."""
        raise NotImplementedError

    def initial(self, cfg: ControlFlowGraph) -> V:
        """Optimistic initial value for every block."""
        raise NotImplementedError

    def join(self, a: V, b: V) -> V:
        raise NotImplementedError

    def transfer(self, instr: Instruction, value: V) -> V:
        raise NotImplementedError


@dataclass
class DataflowResult(Generic[V]):
    """Fixpoint values per block, with per-instruction replay.

    ``block_in[i]``/``block_out[i]`` are in *analysis direction*: for a
    backward problem ``block_in`` is the value at the block's end.
    """

    analysis: DataflowAnalysis[V]
    cfg: ControlFlowGraph
    block_in: List[V]
    block_out: List[V]

    def instr_values(self, block_index: int) -> List[V]:
        """Per-instruction values in program order.

        For a forward analysis, entry ``i`` is the value immediately
        *before* instruction ``i``; for a backward analysis it is the
        value immediately *after* it (i.e. the input to its transfer).
        """
        analysis = self.analysis
        block = self.cfg.blocks[block_index]
        value = self.block_in[block_index]
        out: List[V] = []
        instrs: Sequence[Instruction] = block.instrs
        if analysis.forward:
            for instr in instrs:
                out.append(value)
                value = analysis.transfer(instr, value)
        else:
            for instr in reversed(instrs):
                out.append(value)
                value = analysis.transfer(instr, value)
            out.reverse()
        return out


def _block_transfer(analysis: DataflowAnalysis[V], block: BasicBlock,
                    value: V) -> V:
    instrs: Sequence[Instruction] = block.instrs
    if not analysis.forward:
        instrs = list(reversed(instrs))
    for instr in instrs:
        value = analysis.transfer(instr, value)
    return value


def solve(cfg: ControlFlowGraph,
          analysis: DataflowAnalysis[V]) -> DataflowResult[V]:
    """Run *analysis* to a fixpoint over *cfg* (worklist iteration)."""
    blocks = cfg.blocks
    n = len(blocks)
    forward = analysis.forward
    block_in: List[V] = [analysis.initial(cfg) for _ in range(n)]
    block_out: List[V] = [analysis.initial(cfg) for _ in range(n)]
    if forward:
        sources = [blocks[i].preds for i in range(n)]
        targets = [blocks[i].succs for i in range(n)]
        at_boundary = [i == cfg.entry for i in range(n)]
    else:
        sources = [blocks[i].succs for i in range(n)]
        targets = [blocks[i].preds for i in range(n)]
        at_boundary = [not blocks[i].succs for i in range(n)]

    worklist = deque(range(n))
    queued = [True] * n
    while worklist:
        index = worklist.popleft()
        queued[index] = False
        value = (analysis.boundary(cfg) if at_boundary[index]
                 else analysis.initial(cfg))
        for src in sources[index]:
            value = analysis.join(value, block_out[src])
        block_in[index] = value
        new_out = _block_transfer(analysis, blocks[index], value)
        if new_out != block_out[index]:
            block_out[index] = new_out
            for tgt in targets[index]:
                if not queued[tgt]:
                    queued[tgt] = True
                    worklist.append(tgt)
    return DataflowResult(analysis, cfg, block_in, block_out)


# ----------------------------------------------------------------------
# Concrete analyses
# ----------------------------------------------------------------------

ReachingMap = Dict[int, FrozenSet[int]]


class ReachingDefinitions(DataflowAnalysis[ReachingMap]):
    """Which definition sites may reach each point, per register.

    Values map register -> frozenset of defining PCs (:data:`ENTRY_DEF`
    stands for the loader's initialisation). A register absent from the
    map is not defined on *any* path — the lint pass's undefined-read
    signal.
    """

    forward = True

    def __init__(self, entry_regs: Tuple[int, ...] = ENTRY_REGS) -> None:
        self.entry_regs = entry_regs

    def boundary(self, cfg: ControlFlowGraph) -> ReachingMap:
        return {reg: frozenset({ENTRY_DEF}) for reg in self.entry_regs}

    def initial(self, cfg: ControlFlowGraph) -> ReachingMap:
        return {}

    def join(self, a: ReachingMap, b: ReachingMap) -> ReachingMap:
        if not a:
            return b
        if not b:
            return a
        out = dict(a)
        for reg, defs in b.items():
            have = out.get(reg)
            out[reg] = defs if have is None else have | defs
        return out

    def transfer(self, instr: Instruction,
                 value: ReachingMap) -> ReachingMap:
        dest = instr.dest()
        if dest is None:
            return value
        out = dict(value)
        out[dest] = frozenset({instr.pc or 0})
        return out


class Liveness(DataflowAnalysis[int]):
    """Backward liveness over a 32-bit register mask."""

    forward = False

    def boundary(self, cfg: ControlFlowGraph) -> int:
        return 0

    def initial(self, cfg: ControlFlowGraph) -> int:
        return 0

    def join(self, a: int, b: int) -> int:
        return a | b

    def transfer(self, instr: Instruction, value: int) -> int:
        for dest in instr_defs(instr):
            value &= ~(1 << dest)
        for use in instr_uses(instr):
            value |= 1 << use
        return value


def def_use_chains(cfg: ControlFlowGraph,
                   reaching: DataflowResult[ReachingMap]
                   ) -> Dict[int, Set[Tuple[int, int]]]:
    """Map each definition PC (or :data:`ENTRY_DEF`) to its reached
    uses as ``(use_pc, register)`` pairs."""
    chains: Dict[int, Set[Tuple[int, int]]] = {}
    for block in cfg.blocks:
        values = reaching.instr_values(block.index)
        for instr, reach in zip(block.instrs, values):
            pc = instr.pc or 0
            for reg in instr_uses(instr):
                for def_pc in reach.get(reg, frozenset()):
                    chains.setdefault(def_pc, set()).add((pc, reg))
    return chains


__all__ = [
    "DataflowAnalysis",
    "DataflowResult",
    "ENTRY_DEF",
    "ENTRY_REGS",
    "Liveness",
    "ReachingDefinitions",
    "SYSCALL_USES",
    "def_use_chains",
    "instr_defs",
    "instr_uses",
    "solve",
]
