"""The ineffectuality oracle: sound per-PC candidate classification.

Three classes of *ineffectual* execution, following the dynamic-
ineffectuality literature the ROADMAP's steering work builds on:

* **dead write** — an instruction whose register result is overwritten
  (or the program ends) before any read;
* **silent store** — a store that writes exactly the bytes already in
  memory;
* **predictable value** — a value-producing instruction that produces
  the same value twice in a row.

Each is a *dynamic* property of one execution of one PC. This module
computes static candidate sets with the containment guarantee the
harness cross-checker enforces: every PC the dynamic ineffectuality
log (:mod:`repro.core.stages.ineff`) can ever record is inside the
static set. The sets are built by *exclusion* — start from every
eligible PC and remove only those provably never ineffectual:

* dead-write candidates keep any PC whose destination is not
  **must-used** (read on *every* outgoing path before any overwrite) —
  a backward all-paths analysis, the intersection dual of liveness;
* predictable-value candidates drop only strict self-inductions
  (``addi r, r, imm`` with ``imm != 0`` whose sole reaching definition
  of ``r`` is the instruction itself — consecutive results always
  differ by a non-zero constant mod 2^32);
* silent-store candidates drop only word stores through a singleton
  constant address whose abstract stored value is provably disjoint
  from the abstract memory contents at that point.

Statically unreachable PCs (value-flow BOTTOM on the refined
supergraph) are excluded from all three sets: they cannot be observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from repro.analysis.static.cfg import ControlFlowGraph
from repro.analysis.static.dataflow import (
    ENTRY_DEF,
    SYSCALL_USES,
    DataflowAnalysis,
    DataflowResult,
    ReachingDefinitions,
    ReachingMap,
    instr_defs,
    instr_uses,
    solve,
)
from repro.analysis.static.valueflow import (
    ValueFlow,
    definitely_not_equal,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.semantics import to_u32

#: the ineffectuality classes with a dynamic observation to bound.
INEFF_CLASSES: Tuple[str, ...] = ("dead_write", "silent_store",
                                  "predictable")

FULL_MASK = 0xFFFFFFFF

_SYSCALL_MASK = 0
for _reg in SYSCALL_USES:
    _SYSCALL_MASK |= 1 << _reg


class MustUse(DataflowAnalysis[int]):
    """Backward *all-paths* register use: bit ``r`` is set at a point
    iff every path from it reads ``r`` before any redefinition.

    The intersection dual of :class:`~repro.analysis.static.dataflow.
    Liveness`: join is ``&`` and the optimistic initial value is the
    full mask. A write whose destination is *not* must-used afterwards
    may be dynamically dead — the dead-write candidate test.

    A ``SYSCALL`` may terminate the program (exit service), so nothing
    past it is surely read; its transfer keeps only its own
    out-of-band uses.
    """

    forward = False

    def boundary(self, cfg: ControlFlowGraph) -> int:
        return 0

    def initial(self, cfg: ControlFlowGraph) -> int:
        return FULL_MASK

    def join(self, a: int, b: int) -> int:
        return a & b

    def transfer(self, instr: Instruction, value: int) -> int:
        if instr.op is Op.SYSCALL:
            return _SYSCALL_MASK
        for dest in instr_defs(instr):
            value &= ~(1 << dest)
        for use in instr_uses(instr):
            value |= 1 << use
        return value


@dataclass(frozen=True)
class IneffectualitySites:
    """Static candidate sets per ineffectuality class.

    ``constants`` is the definitely-predictable refinement: PCs whose
    abstract result is a single known constant (always-same value, so
    predictable from the second execution on). Always a subset of
    ``predictable``.
    """

    dead_writes: FrozenSet[int]
    silent_stores: FrozenSet[int]
    predictable: FrozenSet[int]
    constants: FrozenSet[int]

    def as_sets(self) -> Dict[str, FrozenSet[int]]:
        return {"dead_write": self.dead_writes,
                "silent_store": self.silent_stores,
                "predictable": self.predictable}

    def counts(self) -> Dict[str, int]:
        return {name: len(pcs) for name, pcs in self.as_sets().items()}


def _is_self_induction(instr: Instruction, reach: ReachingMap) -> bool:
    """``addi r, r, imm`` (imm != 0) reached only by itself (and the
    loader): consecutive executions always differ by ``imm`` mod 2^32,
    so the PC can never produce the same value twice in a row."""
    if instr.op is not Op.ADDI or not instr.imm:
        return False
    if instr.dest() is None or instr.rd != instr.rs:
        return False
    defs = reach.get(instr.rs or 0, frozenset())
    return defs <= {instr.pc or 0, ENTRY_DEF}


def _provably_not_silent(instr: Instruction, vf: ValueFlow) -> bool:
    """Word store whose value provably differs from the bytes present."""
    if instr.op not in (Op.SW, Op.SWX):
        return False
    state = vf.state_before(instr.pc or 0)
    if state is None:
        return True                 # unreachable: never observed
    analysis = vf.analysis
    addr, stored = analysis.store_parts(instr, state)
    target = addr.singleton()
    if target is None or to_u32(target) % 4:
        return False
    content = analysis.load_from(state.memory, addr, 4, signed=True)
    return definitely_not_equal(stored, content)


def classify_ineffectuality(
        cfg: ControlFlowGraph, vf: ValueFlow,
        reaching: DataflowResult[ReachingMap]) -> IneffectualitySites:
    """Build the candidate sets over *cfg* (the refined supergraph)."""
    mustuse = solve(cfg, MustUse())
    dead: Set[int] = set()
    silent: Set[int] = set()
    predictable: Set[int] = set()
    constants: Set[int] = set()
    for block in cfg.blocks:
        mu_values = mustuse.instr_values(block.index)
        rd_values = reaching.instr_values(block.index)
        for instr, mu_after, reach in zip(block.instrs, mu_values,
                                          rd_values):
            pc = instr.pc or 0
            if vf.state_before(pc) is None:
                continue             # statically unreachable
            dest = instr.dest()
            if dest is not None:
                if not (mu_after >> dest) & 1:
                    dead.add(pc)
                if not _is_self_induction(instr, reach):
                    predictable.add(pc)
                    value = vf.dest_value(instr)
                    if value is not None \
                            and value.singleton() is not None:
                        constants.add(pc)
            if instr.is_store() and not _provably_not_silent(instr, vf):
                silent.add(pc)
    return IneffectualitySites(
        dead_writes=frozenset(dead),
        silent_stores=frozenset(silent),
        predictable=frozenset(predictable),
        constants=frozenset(constants))


def ineffectuality_sites(cfg: ControlFlowGraph,
                         vf: ValueFlow) -> IneffectualitySites:
    """Convenience wrapper solving reaching definitions itself."""
    reaching = solve(cfg, ReachingDefinitions())
    return classify_ineffectuality(cfg, vf, reaching)


__all__ = [
    "FULL_MASK",
    "INEFF_CLASSES",
    "IneffectualitySites",
    "MustUse",
    "classify_ineffectuality",
    "ineffectuality_sites",
]
