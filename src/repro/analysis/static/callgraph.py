"""Call graph over the static CFG.

Functions are discovered symbolically, the way a binary analyzer would
see them: every ``JAL`` target is a function entry, the program entry
anchors the root function, and resolved indirect-call targets (from the
value-flow layer, when available) add more. Function *extents* follow
the layout convention the workload generators obey — each function's
code is the contiguous address range from its entry to the next entry
(or the end of text) — which keeps membership deterministic and
independent of how precisely indirect jumps were resolved.

Edges are over-approximate in exactly one direction: an unresolved
indirect call (``JALR`` with no value-flow facts) edges to *every*
known entry, and a non-return ``JR`` (jump table) edges to every
function owning one of its over-approximate CFG successors. Extra
edges can only make more functions reachable, so the
``unreachable-function`` lint built on this graph never reports a
function some real path could still reach.

Recursion is summarised by Tarjan SCC condensation (iterative — the
workloads' recursive walkers would blow the interpreter stack under a
naive recursive DFS).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.static.cfg import ControlFlowGraph, direct_target
from repro.isa.opcodes import Op


@dataclass(frozen=True)
class CallSite:
    """One call instruction and its possible callees (entry PCs)."""

    pc: int
    caller: int                  # entry PC of the calling function
    callees: Tuple[int, ...]     # possible callee entry PCs (sorted)
    direct: bool                 # JAL (True) vs JALR (False)


@dataclass(frozen=True)
class FunctionInfo:
    """One discovered function: its extent and structural summary."""

    entry: int
    name: str
    end: int                     # one past the extent's last byte
    blocks: Tuple[int, ...]      # CFG block indices inside the extent
    call_sites: Tuple[CallSite, ...]
    returns: Tuple[int, ...]     # PCs of `jr $ra` terminators
    #: PCs whose block can fall past the extent end into the next
    #: function (implicit fallthrough, not a transfer) — the
    #: ``missing-return`` lint signal.
    fall_off: Tuple[int, ...]


class CallGraph:
    """Functions plus over-approximate call edges for one program."""

    def __init__(self, cfg: ControlFlowGraph,
                 functions: Dict[int, FunctionInfo], entry: int,
                 edges: Set[Tuple[int, int]]) -> None:
        self.cfg = cfg
        self.functions = functions
        self.entry = entry
        self.edges = edges
        self._entries = sorted(functions)
        self._succs: Dict[int, List[int]] = {f: [] for f in functions}
        for src, dst in sorted(edges):
            self._succs[src].append(dst)
        self._sccs: Optional[List[FrozenSet[int]]] = None

    # -- navigation ----------------------------------------------------

    def containing(self, pc: int) -> Optional[int]:
        """Entry PC of the function whose extent contains *pc*."""
        index = bisect_right(self._entries, pc) - 1
        if index < 0:
            return None
        entry = self._entries[index]
        return entry if pc < self.functions[entry].end else None

    def callees(self, entry: int) -> List[int]:
        return self._succs[entry]

    # -- reachability --------------------------------------------------

    def reachable(self) -> Set[int]:
        """Function entries reachable from the root over call edges."""
        if self.entry not in self.functions:
            return set()
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self._succs[stack.pop()]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    # -- recursion (SCC condensation) ----------------------------------

    def sccs(self) -> List[FrozenSet[int]]:
        """Strongly connected components of the call graph (Tarjan,
        iterative), in reverse topological order of the condensation."""
        if self._sccs is not None:
            return self._sccs
        index_of: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        sccs: List[FrozenSet[int]] = []
        counter = 0
        for root in self._entries:
            if root in index_of:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                node, child = work[-1]
                if child == 0:
                    index_of[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                succs = self._succs[node]
                advanced = False
                while child < len(succs):
                    succ = succs[child]
                    child += 1
                    if succ not in index_of:
                        work[-1] = (node, child)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index_of[succ])
                if advanced:
                    continue
                work[-1] = (node, child)
                if child >= len(succs):
                    if low[node] == index_of[node]:
                        component = []
                        while True:
                            member = stack.pop()
                            on_stack.discard(member)
                            component.append(member)
                            if member == node:
                                break
                        sccs.append(frozenset(component))
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        low[parent] = min(low[parent], low[node])
        self._sccs = sccs
        return sccs

    def recursive_functions(self) -> FrozenSet[int]:
        """Entries inside a recursive SCC (size > 1 or a self edge)."""
        out: Set[int] = set()
        for component in self.sccs():
            if len(component) > 1:
                out |= component
        for entry in self.functions:
            if (entry, entry) in self.edges:
                out.add(entry)
        return frozenset(out)


def _function_name(cfg: ControlFlowGraph, entry: int) -> str:
    for name, addr in cfg.program.symbols.items():
        if addr == entry:
            return name
    return f"fn_{entry:#x}"


def build_call_graph(
        cfg: ControlFlowGraph,
        resolved_calls: Optional[Dict[int, Tuple[int, ...]]] = None
        ) -> CallGraph:
    """Build the call graph of *cfg*.

    *resolved_calls* optionally maps an indirect-call PC (``JALR``) to
    its value-flow-resolved callee entry PCs; without it (or for PCs
    absent from it) an indirect call over-approximates to every known
    entry — and to *no* entry at all when the program defines none
    beyond the root, the zero-candidate case the caller must tolerate.
    """
    program = cfg.program
    resolved = resolved_calls or {}
    root = cfg.blocks[cfg.entry].start

    entries: Set[int] = {root}
    for block in cfg.blocks:
        for instr in block.instrs:
            if instr.op is Op.JAL:
                target = direct_target(instr)
                if target is not None and program.contains_pc(target):
                    entries.add(target)
            elif instr.op is Op.JALR:
                for target in resolved.get(instr.pc or 0, ()):
                    if program.contains_pc(target):
                        entries.add(target)

    ordered = sorted(entries)
    ends = {entry: (ordered[i + 1] if i + 1 < len(ordered)
                    else program.text_end)
            for i, entry in enumerate(ordered)}

    def containing(pc: int) -> Optional[int]:
        index = bisect_right(ordered, pc) - 1
        return ordered[index] if index >= 0 else None

    all_entries = tuple(ordered)
    functions: Dict[int, FunctionInfo] = {}
    edges: Set[Tuple[int, int]] = set()
    for entry in ordered:
        end = ends[entry]
        blocks = tuple(b.index for b in cfg.blocks
                       if entry <= b.start < end)
        call_sites: List[CallSite] = []
        returns: List[int] = []
        fall_off: List[int] = []
        for index in blocks:
            block = cfg.blocks[index]
            for instr in block.instrs:
                pc = instr.pc or 0
                if instr.op is Op.JAL:
                    target = direct_target(instr)
                    callees = ((target,) if target is not None
                               and program.contains_pc(target) else ())
                    call_sites.append(CallSite(pc, entry, callees, True))
                elif instr.op is Op.JALR:
                    callees = tuple(sorted(
                        resolved.get(pc, all_entries)))
                    call_sites.append(CallSite(pc, entry, callees,
                                               False))
            last = block.last
            last_pc = last.pc or 0
            if last.is_return():
                returns.append(last_pc)
            elif last.op is Op.JR:
                # Jump table: CFG successors landing outside the extent
                # are (over-approximate) tail transfers to the owning
                # function.
                for succ in block.succs:
                    target = cfg.blocks[succ].start
                    if not entry <= target < end:
                        owner = containing(target)
                        if owner is not None and owner != entry:
                            edges.add((entry, owner))
            elif (not last.is_ctrl() or last.is_cond_branch()
                  or last.op in (Op.SYSCALL, Op.JAL, Op.JALR)):
                # The block can fall through; past the extent end that
                # is control sliding into the next function.
                if last_pc + 4 == end and end < program.text_end:
                    fall_off.append(last_pc)
                    nxt = containing(end)
                    if nxt is not None:
                        edges.add((entry, nxt))
            if last.op is Op.J or last.is_cond_branch():
                target = direct_target(last)
                if target is not None and program.contains_pc(target) \
                        and not entry <= target < end:
                    owner = containing(target)
                    if owner is not None and owner != entry:
                        edges.add((entry, owner))   # direct tail call
        for site in call_sites:
            for callee in site.callees:
                owner = containing(callee)
                if owner is not None:
                    edges.add((entry, owner))
        functions[entry] = FunctionInfo(
            entry=entry, name=_function_name(cfg, entry), end=end,
            blocks=blocks, call_sites=tuple(call_sites),
            returns=tuple(returns), fall_off=tuple(fall_off))

    return CallGraph(cfg, functions, root, edges)


__all__ = ["CallGraph", "CallSite", "FunctionInfo", "build_call_graph"]
