"""The interprocedural layer: value-flow-refined supergraph + oracle.

The base CFG (:mod:`~repro.analysis.static.cfg`) is deliberately
coarse at indirect transfers: a ``JR $ra`` edges to *every* return
site and a jump table to *every* labelled address. That coarseness is
what makes the PR 4 opportunity bounds loose across calls — facts from
unrelated callers join at every return site.

This module sharpens exactly those edges, using only *provable*
value-flow facts, so the refined graph still covers every dynamic
transition:

* an indirect jump or call whose register carries a small constant set
  (``JAL`` link values are constants, and constants survive the
  store→load channel across save/restore) edges to exactly those
  targets;
* a conditional branch whose outcome is decided by the abstract state
  keeps only the feasible edge;
* a block the value flow proves unreachable keeps no out-edges.

Anything unprovable keeps the base over-approximation. Refinement and
value flow iterate (each tighter graph may prove more) up to
*max_rounds* or until the edge set is stable. The refined graph then
feeds the PR 4 opportunity detectors (bounds can only tighten — the
analysis is monotone in the edge set, and the result is intersected
with the intraprocedural bound as a hard guarantee), the call graph,
and the ineffectuality oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.static.callgraph import CallGraph, build_call_graph
from repro.analysis.static.cfg import (
    BasicBlock,
    ControlFlowGraph,
    build_cfg,
    direct_target,
)
from repro.analysis.static.dataflow import ReachingDefinitions, solve
from repro.analysis.static.ineffectuality import (
    IneffectualitySites,
    classify_ineffectuality,
)
from repro.analysis.static.opportunities import (
    OpportunitySites,
    find_opportunities,
)
from repro.analysis.static.valueflow import (
    ValueFlow,
    branch_decision,
    solve_valueflow,
)
from repro.isa.opcodes import Op
from repro.isa.semantics import to_u32
from repro.program.image import Program


@dataclass
class InterprocAnalysis:
    """Everything the interprocedural layer derived from one program."""

    cfg: ControlFlowGraph          # the refined supergraph
    valueflow: ValueFlow           # solved over the refined graph
    call_graph: CallGraph
    sites: OpportunitySites        # tightened opportunity bounds
    ineff: IneffectualitySites
    rounds: int                    # refinement rounds that changed edges
    #: JR/JALR PC -> provably exact target PCs
    resolved_jumps: Dict[int, Tuple[int, ...]]
    #: branch PC -> provably constant direction
    decided_branches: Dict[int, bool]
    #: total indirect transfers (JR/JALR) in the program
    indirect_jumps: int


def _valid_targets(cfg: ControlFlowGraph,
                   values: Optional[frozenset]) -> Optional[Tuple[int, ...]]:
    """Map a constant set to block-start target PCs, or ``None`` when
    any member is not a linkable block start (fall back to the base
    over-approximation)."""
    if values is None:
        return None
    targets = []
    for value in values:
        target = to_u32(value)
        if not cfg.program.contains_pc(target) \
                or cfg.block_starting(target) is None:
            return None
        targets.append(target)
    return tuple(sorted(targets))


def _refine_once(cfg: ControlFlowGraph, vf: ValueFlow
                 ) -> Tuple[Dict[int, Tuple[int, ...]],
                            Dict[int, Tuple[int, ...]],
                            Dict[int, bool]]:
    """One resolution pass: per-block successor overrides (as target
    PCs), the resolved indirect jumps and the decided branches."""
    overrides: Dict[int, Tuple[int, ...]] = {}
    resolved: Dict[int, Tuple[int, ...]] = {}
    decided: Dict[int, bool] = {}
    for block in cfg.blocks:
        last = block.last
        pc = last.pc or 0
        state = vf.state_before(pc)
        if state is None:
            if block.succs and block.index != cfg.entry:
                overrides[block.index] = ()
            continue
        if last.op in (Op.JR, Op.JALR):
            value = state.reg(last.rs)
            targets = _valid_targets(
                cfg, value.values if value.is_const else None)
            if targets is not None:
                overrides[block.index] = targets
                resolved[pc] = targets
        elif last.is_cond_branch():
            decision = branch_decision(last, state)
            if decision is None:
                continue
            target = direct_target(last) if decision else pc + 4
            if target is not None and cfg.program.contains_pc(target) \
                    and cfg.block_starting(target) is not None:
                overrides[block.index] = (target,)
                decided[pc] = decision
    return overrides, resolved, decided


def _rebuild(cfg: ControlFlowGraph,
             overrides: Dict[int, Tuple[int, ...]]) -> ControlFlowGraph:
    """A structurally identical graph with overridden successor sets."""
    blocks = [BasicBlock(index=b.index, start=b.start, instrs=b.instrs)
              for b in cfg.blocks]
    starts = {b.start: b.index for b in cfg.blocks}
    for old in cfg.blocks:
        new = blocks[old.index]
        if old.index in overrides:
            seen: List[int] = []
            for target_pc in overrides[old.index]:
                index = starts[target_pc]
                if index not in seen:
                    seen.append(index)
            new.succs = seen
        else:
            new.succs = list(old.succs)
    for block in blocks:
        for succ in block.succs:
            blocks[succ].preds.append(block.index)
    return ControlFlowGraph(cfg.program, blocks, cfg.entry,
                            list(cfg.bad_targets))


def _changed(cfg: ControlFlowGraph,
             overrides: Dict[int, Tuple[int, ...]]) -> bool:
    for index, target_pcs in overrides.items():
        current = {cfg.blocks[s].start for s in cfg.blocks[index].succs}
        if current != set(target_pcs):
            return True
    return False


def interprocedural_analysis(program: Program, max_shift: int = 3,
                             max_rounds: int = 3) -> InterprocAnalysis:
    """Run the full interprocedural analysis over *program*."""
    cfg = build_cfg(program)
    intra_sites = find_opportunities(cfg, max_shift=max_shift)
    vf = solve_valueflow(cfg, program)
    resolved: Dict[int, Tuple[int, ...]] = {}
    decided: Dict[int, bool] = {}
    rounds = 0
    for _ in range(max_rounds):
        overrides, new_resolved, new_decided = _refine_once(cfg, vf)
        resolved.update(new_resolved)
        decided.update(new_decided)
        if not _changed(cfg, overrides):
            break
        cfg = _rebuild(cfg, overrides)
        vf = solve_valueflow(cfg, program)
        rounds += 1

    indirect = sum(1 for instr in program.instructions
                   if instr.op in (Op.JR, Op.JALR))
    resolved_calls = {
        pc: targets for pc, targets in resolved.items()
        if program.instr_at(pc).op is Op.JALR}
    call_graph = build_call_graph(cfg, resolved_calls or None)

    tight = find_opportunities(cfg, max_shift=max_shift)
    # The refined graph's edge set is contained in the base graph's on
    # every sound program, which already implies tighter-or-equal
    # bounds; the intersection makes "never looser than PR 4" a
    # structural guarantee rather than a theorem about the input.
    sites = OpportunitySites(
        moves=tight.moves & intra_sites.moves,
        reassoc=tight.reassoc & intra_sites.reassoc,
        scaled=tight.scaled & intra_sites.scaled)

    reaching = solve(cfg, ReachingDefinitions())
    ineff = classify_ineffectuality(cfg, vf, reaching)

    return InterprocAnalysis(
        cfg=cfg, valueflow=vf, call_graph=call_graph, sites=sites,
        ineff=ineff, rounds=rounds, resolved_jumps=resolved,
        decided_branches=decided, indirect_jumps=indirect)


__all__ = ["InterprocAnalysis", "interprocedural_analysis"]
