"""Textual disassembly.

Produces assembly text that the assembler accepts back (round-trip
property-tested), with fill-unit annotations shown as trailing comments
so optimized trace segments can be dumped readably.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, op_info
from repro.isa.registers import reg_name


def _r(num: Optional[int]) -> str:
    """Register operand as text; ``$?`` for an unpopulated slot (which
    the decoder never produces but a hand-built Instruction may)."""
    return "$?" if num is None else f"${reg_name(num)}"


def disassemble(instr: Instruction, show_annotations: bool = True) -> str:
    """Render *instr* as assembly text.

    Branch and jump targets are rendered numerically (absolute for
    jumps, ``pc+offset`` byte displacement for branches), which the
    assembler accepts.
    """
    op = instr.op
    fmt = op_info(op).format
    mnem = op.value
    if fmt is Format.R3:
        body = f"{mnem} {_r(instr.rd)}, {_r(instr.rs)}, {_r(instr.rt)}"
    elif fmt is Format.R2I:
        body = f"{mnem} {_r(instr.rd)}, {_r(instr.rs)}, {instr.imm}"
    elif fmt is Format.SHIFT:
        body = f"{mnem} {_r(instr.rd)}, {_r(instr.rs)}, {instr.imm}"
    elif fmt is Format.LUI:
        body = f"{mnem} {_r(instr.rd)}, {instr.imm}"
    elif fmt is Format.LOAD:
        body = f"{mnem} {_r(instr.rd)}, {instr.imm}({_r(instr.rs)})"
    elif fmt is Format.STORE:
        body = f"{mnem} {_r(instr.rt)}, {instr.imm}({_r(instr.rs)})"
    elif fmt in (Format.LOADX, Format.STOREX):
        body = f"{mnem} {_r(instr.rd)}, {_r(instr.rs)}, {_r(instr.rt)}"
    elif fmt is Format.BR2:
        body = f"{mnem} {_r(instr.rs)}, {_r(instr.rt)}, {instr.imm}"
    elif fmt is Format.BR1:
        body = f"{mnem} {_r(instr.rs)}, {instr.imm}"
    elif fmt is Format.J:
        body = f"{mnem} {instr.imm}"
    elif fmt is Format.JR:
        body = f"{mnem} {_r(instr.rs)}"
    elif fmt is Format.JALR:
        body = f"{mnem} {_r(instr.rd)}, {_r(instr.rs)}"
    else:
        body = mnem
    if not show_annotations:
        return body
    notes = []
    if instr.move_flag:
        notes.append("move")
    if instr.scale is not None:
        notes.append(f"scaled({_r(instr.scale.src)}<<{instr.scale.shamt})")
    if instr.guard is not None:
        sense = "==0" if instr.guard.execute_if_zero else "!=0"
        notes.append(f"guard({_r(instr.guard.reg)}{sense})")
    if instr.reassociated:
        notes.append("reassoc")
    if notes:
        body = f"{body}  ; {', '.join(notes)}"
    return body


def dump_listing(instrs: Iterable[Instruction], base_pc: int = 0) -> str:
    """Render a sequence of instructions as an address-annotated listing."""
    lines = []
    for idx, instr in enumerate(instrs):
        pc = instr.pc if instr.pc is not None else base_pc + 4 * idx
        lines.append(f"{pc:08x}:  {disassemble(instr)}")
    return "\n".join(lines)


__all__ = ["disassemble", "dump_listing"]
