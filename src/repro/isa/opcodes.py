"""Opcode enumeration and static per-opcode metadata.

The opcode set is a compact MIPS-IV-like integer ISA in the spirit of
SimpleScalar 2.0: no branch delay slots, and indexed (register+register)
memory operations (``LWX``/``LBX``/``SWX``/``SBX``), which the paper's
scaled-add optimization targets for address arithmetic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Format(enum.Enum):
    """Operand format of an instruction (assembly syntax shape)."""

    R3 = "rd, rs, rt"          # rd <- rs op rt
    R2I = "rd, rs, imm"        # rd <- rs op imm
    SHIFT = "rd, rs, shamt"    # rd <- rs shift shamt (shamt held in imm)
    LUI = "rd, imm"            # rd <- imm << 16
    LOAD = "rd, imm(rs)"       # rd <- MEM[rs + imm]
    STORE = "rt, imm(rs)"      # MEM[rs + imm] <- rt
    LOADX = "rd, rs, rt (load)"    # rd <- MEM[rs + rt]
    STOREX = "rd, rs, rt (store)"  # MEM[rs + rt] <- rd (value in rd)
    BR2 = "rs, rt, label"      # conditional, compares two registers
    BR1 = "rs, label"          # conditional, compares rs against zero
    J = "label"                # unconditional direct
    JR = "rs"                  # unconditional indirect
    JALR = "rd, rs"            # indirect call, link in rd
    NONE = ""                  # no operands


class OpClass(enum.Enum):
    """Execution class, used for latency and functional-unit policy."""

    IALU = "ialu"
    SHIFT = "shift"
    MULT = "mult"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"        # conditional direct branch
    JUMP = "jump"            # unconditional direct jump
    CALL = "call"            # direct or indirect call (links ra)
    INDIRECT = "indirect"    # unconditional indirect jump (JR)
    SYSCALL = "syscall"      # serializing
    NOP = "nop"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    format: Format
    opclass: OpClass
    latency: int


class Op(enum.Enum):
    """All architected opcodes."""

    # Three-register ALU.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLT = "slt"
    SLTU = "sltu"
    SLLV = "sllv"
    SRLV = "srlv"
    SRAV = "srav"
    MULT = "mult"
    DIV = "div"
    # Register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLTIU = "sltiu"
    # Immediate shifts.
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    LUI = "lui"
    # Loads and stores (displacement and indexed forms).
    LW = "lw"
    LH = "lh"
    LHU = "lhu"
    LB = "lb"
    LBU = "lbu"
    SW = "sw"
    SH = "sh"
    SB = "sb"
    LWX = "lwx"
    LBX = "lbx"
    SWX = "swx"
    SBX = "sbx"
    # Control transfer.
    BEQ = "beq"
    BNE = "bne"
    BLEZ = "blez"
    BGTZ = "bgtz"
    BLTZ = "bltz"
    BGEZ = "bgez"
    J = "j"
    JAL = "jal"
    JR = "jr"
    JALR = "jalr"
    # System.
    SYSCALL = "syscall"
    HALT = "halt"
    NOP = "nop"


_I = OpInfo

_OP_INFO: dict[Op, OpInfo] = {
    Op.ADD: _I(Format.R3, OpClass.IALU, 1),
    Op.SUB: _I(Format.R3, OpClass.IALU, 1),
    Op.AND: _I(Format.R3, OpClass.IALU, 1),
    Op.OR: _I(Format.R3, OpClass.IALU, 1),
    Op.XOR: _I(Format.R3, OpClass.IALU, 1),
    Op.NOR: _I(Format.R3, OpClass.IALU, 1),
    Op.SLT: _I(Format.R3, OpClass.IALU, 1),
    Op.SLTU: _I(Format.R3, OpClass.IALU, 1),
    Op.SLLV: _I(Format.R3, OpClass.SHIFT, 1),
    Op.SRLV: _I(Format.R3, OpClass.SHIFT, 1),
    Op.SRAV: _I(Format.R3, OpClass.SHIFT, 1),
    Op.MULT: _I(Format.R3, OpClass.MULT, 3),
    Op.DIV: _I(Format.R3, OpClass.DIV, 12),
    Op.ADDI: _I(Format.R2I, OpClass.IALU, 1),
    Op.ANDI: _I(Format.R2I, OpClass.IALU, 1),
    Op.ORI: _I(Format.R2I, OpClass.IALU, 1),
    Op.XORI: _I(Format.R2I, OpClass.IALU, 1),
    Op.SLTI: _I(Format.R2I, OpClass.IALU, 1),
    Op.SLTIU: _I(Format.R2I, OpClass.IALU, 1),
    Op.SLL: _I(Format.SHIFT, OpClass.SHIFT, 1),
    Op.SRL: _I(Format.SHIFT, OpClass.SHIFT, 1),
    Op.SRA: _I(Format.SHIFT, OpClass.SHIFT, 1),
    Op.LUI: _I(Format.LUI, OpClass.IALU, 1),
    Op.LW: _I(Format.LOAD, OpClass.LOAD, 1),
    Op.LH: _I(Format.LOAD, OpClass.LOAD, 1),
    Op.LHU: _I(Format.LOAD, OpClass.LOAD, 1),
    Op.LB: _I(Format.LOAD, OpClass.LOAD, 1),
    Op.LBU: _I(Format.LOAD, OpClass.LOAD, 1),
    Op.SW: _I(Format.STORE, OpClass.STORE, 1),
    Op.SH: _I(Format.STORE, OpClass.STORE, 1),
    Op.SB: _I(Format.STORE, OpClass.STORE, 1),
    Op.LWX: _I(Format.LOADX, OpClass.LOAD, 1),
    Op.LBX: _I(Format.LOADX, OpClass.LOAD, 1),
    Op.SWX: _I(Format.STOREX, OpClass.STORE, 1),
    Op.SBX: _I(Format.STOREX, OpClass.STORE, 1),
    Op.BEQ: _I(Format.BR2, OpClass.BRANCH, 1),
    Op.BNE: _I(Format.BR2, OpClass.BRANCH, 1),
    Op.BLEZ: _I(Format.BR1, OpClass.BRANCH, 1),
    Op.BGTZ: _I(Format.BR1, OpClass.BRANCH, 1),
    Op.BLTZ: _I(Format.BR1, OpClass.BRANCH, 1),
    Op.BGEZ: _I(Format.BR1, OpClass.BRANCH, 1),
    Op.J: _I(Format.J, OpClass.JUMP, 1),
    Op.JAL: _I(Format.J, OpClass.CALL, 1),
    Op.JR: _I(Format.JR, OpClass.INDIRECT, 1),
    Op.JALR: _I(Format.JALR, OpClass.CALL, 1),
    Op.SYSCALL: _I(Format.NONE, OpClass.SYSCALL, 1),
    Op.HALT: _I(Format.NONE, OpClass.SYSCALL, 1),
    Op.NOP: _I(Format.NONE, OpClass.NOP, 1),
}

_BY_MNEMONIC = {op.value: op for op in Op}

# The info table is consulted on every structural query of every
# instruction in the simulator's hot loops; a dict lookup hashes the
# enum member each time, so pin each member's info onto the member
# itself and make the lookup a plain attribute load.
for _op in Op:
    _op._info = _OP_INFO[_op]  # type: ignore[attr-defined]


def op_info(op: Op) -> OpInfo:
    """Return the static :class:`OpInfo` for *op*."""
    return op._info  # type: ignore[attr-defined,no-any-return]


def op_by_mnemonic(mnemonic: str) -> Op:
    """Look an opcode up by assembly mnemonic.

    Raises:
        KeyError: if the mnemonic is unknown.
    """
    return _BY_MNEMONIC[mnemonic.lower()]


#: Opcodes whose result may be produced by the scaled-add execution path
#: (an add, or any memory address computation — the paper allows small
#: immediate shifts to combine with dependent adds and with dependent
#: load/store instructions); targets for scaled-add collapsing.
SCALED_ADD_TARGETS = frozenset({
    Op.ADD, Op.LWX, Op.LBX, Op.SWX, Op.SBX,
    Op.LW, Op.LH, Op.LHU, Op.LB, Op.LBU, Op.SW, Op.SH, Op.SB,
})

#: Immediate shift opcodes that can act as the shift half of a
#: scaled-add pair (short left shifts only, per the paper's <=3 bits).
SCALED_ADD_SHIFTS = frozenset({Op.SLL})

#: Immediate-add opcodes eligible for reassociation.
REASSOCIABLE = frozenset({Op.ADDI})
