"""In-pipeline instruction representation.

:class:`Instruction` is the single representation used everywhere: the
assembler produces them, the functional machine executes them, and the
fill unit stores *transformed copies* of them inside trace segments.

Fill-unit annotations (``move_flag``, ``scale``, ``reassociated``,
``block_id``, ``orig_index``) model the extra per-instruction bits the
paper adds to each trace cache line: 1 bit for register moves, 2 bits
for scaled adds, and 4 bits for instruction placement (original-order
information needed by the memory scheduler).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.isa.opcodes import Format, Op, OpClass, OpInfo, op_info
from repro.isa.registers import ZERO_REG

#: an operand tuple before ``None`` (unused-slot) filtering.
_RawRegs = Tuple[Optional[int], ...]


@dataclass(frozen=True)
class GuardAnnotation:
    """Dynamic-predication annotation (paper §1's "dynamic predication
    of hard-to-predict short forward branches").

    A guarded instruction executes conditionally: when the guard fails
    it writes its *old* destination value back (conditional-move
    semantics), converting the control dependence of a short forward
    branch into a data dependence. ``execute_if_zero`` selects the
    sense: True means the instruction is active when the guard register
    is zero.
    """

    reg: int
    execute_if_zero: bool


@dataclass(frozen=True)
class ScaleAnnotation:
    """Scaled-add annotation: the ``rs`` operand slot is to be read as
    ``(src << shamt)`` instead of the architected ``rs`` register.

    ``shamt`` is limited to 3 bits by the fill unit (two extra stored
    bits plus the implicit non-zero constraint), mirroring the paper's
    ALU path-length argument.
    """

    src: int
    shamt: int


@dataclass
class Instruction:
    """One architected instruction, plus fill-unit annotations.

    Fields ``rd``/``rs``/``rt``/``imm`` are interpreted per the opcode's
    :class:`~repro.isa.opcodes.Format`; unused fields are ``None``.
    ``imm`` holds the immediate, shift amount, branch byte-displacement
    or absolute jump target, depending on format.
    """

    op: Op
    rd: Optional[int] = None
    rs: Optional[int] = None
    rt: Optional[int] = None
    imm: Optional[int] = None
    pc: Optional[int] = None

    # --- fill-unit annotations (not architecturally visible) ---
    move_flag: bool = False
    scale: Optional[ScaleAnnotation] = None
    guard: Optional[GuardAnnotation] = None
    reassociated: bool = False
    block_id: int = 0      # checkpoint block (conditional-branch delimited)
    flow_id: int = 0       # control-flow region (any transfer delimited)
    orig_index: int = 0
    #: set when a source operand was rewritten to bypass a marked move
    move_bypassed: bool = False

    def copy(self) -> "Instruction":
        """Return an independent copy (used by the fill unit, which must
        never mutate the architected program image)."""
        return replace(self)

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------

    @property
    def info(self) -> OpInfo:
        return op_info(self.op)

    @property
    def opclass(self) -> OpClass:
        return op_info(self.op).opclass

    @property
    def format(self) -> Format:
        return op_info(self.op).format

    def dest(self) -> Optional[int]:
        """Architected destination register, or ``None``.

        Writes to register zero are architecturally discarded and
        reported as no destination.
        """
        fmt = self.format
        if fmt in (Format.R3, Format.R2I, Format.SHIFT, Format.LUI,
                   Format.LOAD, Format.LOADX, Format.JALR):
            return self.rd if self.rd != ZERO_REG else None
        if self.op is Op.JAL:
            return 31
        return None

    def sources(self) -> tuple[int, ...]:
        """Architected source registers, annotations applied.

        A marked move reads only its move source. A scaled add reads the
        shift's source in place of the architected ``rs``.
        """
        if self.move_flag:
            src = move_source(self)
            return () if src is None else (src,)
        fmt = self.format
        base: _RawRegs
        if fmt in (Format.R3, Format.LOADX, Format.BR2):
            base = (self.rs, self.rt)
        elif fmt in (Format.R2I, Format.SHIFT, Format.LOAD, Format.JR,
                     Format.JALR, Format.BR1):
            base = (self.rs,)
        elif fmt is Format.STORE:
            base = (self.rs, self.rt)
        elif fmt is Format.STOREX:
            base = (self.rd, self.rs, self.rt)
        else:
            base = ()
        if self.scale is not None:
            base = self._scaled(base)
        if self.guard is not None:
            # A guarded instruction also reads its guard register and
            # its own destination (the value kept when the guard fails).
            extra: _RawRegs = (self.guard.reg,)
            dest = self.dest()
            if dest is not None:
                extra += (dest,)
            base = tuple(base) + extra
        return tuple(reg for reg in base if reg is not None)

    def _scaled(self, base: _RawRegs) -> _RawRegs:
        """Replace the ``rs`` operand slot with the scale source.

        The ``rs`` slot is positionally fixed per format: index 0 for
        R3/LOADX/R2I-like tuples, index 1 for STOREX (whose first source
        is the store value carried in ``rd``).
        """
        scale = self.scale
        assert scale is not None
        out = list(base)
        slot = 1 if self.format is Format.STOREX else 0
        out[slot] = scale.src
        return tuple(out)

    def mem_split(self) -> Tuple[_RawRegs, Optional[int]]:
        """For memory instructions: ``(address_regs, store_value_reg)``.

        Address registers honour a scale annotation; the store value
        register is ``None`` for loads. The same architected register
        may appear in both roles (e.g. ``sw $t0, 0($t0)``).
        """
        fmt = self.format
        base = self.scale.src if self.scale is not None else self.rs
        if fmt is Format.LOAD:
            return (base,), None
        if fmt is Format.LOADX:
            return (base, self.rt), None
        if fmt is Format.STORE:
            return (base,), self.rt
        if fmt is Format.STOREX:
            return (base, self.rt), self.rd
        return self.sources(), None

    # -- control-flow classification ----------------------------------
    # These run for every instruction in the simulator's hot loops, so
    # each makes exactly one op_info lookup instead of going through
    # the ``opclass`` property (whose extra call layers dominate their
    # cost at this call volume).

    def is_cond_branch(self) -> bool:
        return op_info(self.op).opclass is OpClass.BRANCH

    def is_ctrl(self) -> bool:
        return op_info(self.op).opclass in (
            OpClass.BRANCH, OpClass.JUMP, OpClass.CALL,
            OpClass.INDIRECT, OpClass.SYSCALL)

    def is_call(self) -> bool:
        return op_info(self.op).opclass is OpClass.CALL

    def is_return(self) -> bool:
        """JR through the link register is treated as a return."""
        return self.op is Op.JR and self.rs == 31

    def is_indirect(self) -> bool:
        return op_info(self.op).opclass is OpClass.INDIRECT \
            or self.op is Op.JALR

    def is_serializing(self) -> bool:
        return op_info(self.op).opclass is OpClass.SYSCALL

    def is_mem(self) -> bool:
        return op_info(self.op).opclass in (OpClass.LOAD, OpClass.STORE)

    def is_load(self) -> bool:
        return op_info(self.op).opclass is OpClass.LOAD

    def is_store(self) -> bool:
        return op_info(self.op).opclass is OpClass.STORE

    def terminates_segment(self) -> bool:
        """True when the fill unit must end a trace segment after this
        instruction: returns, indirect jumps and serializing
        instructions terminate; calls and direct jumps do not.

        (INDIRECT covers JR and with it every return.)
        """
        opclass = op_info(self.op).opclass
        return (opclass is OpClass.INDIRECT
                or opclass is OpClass.SYSCALL
                or self.op is Op.JALR)

    def __str__(self) -> str:  # pragma: no cover - convenience only
        from repro.isa.disasm import disassemble
        return disassemble(self)


def move_source(instr: Instruction) -> Optional[int]:
    """Detect a register-to-register move, returning the source register.

    Mirrors the fill unit's detector for instructions that "pass an
    input operand unchanged to the destination". Returns ``None`` when
    the instruction is not a detectable move or writes register zero
    (in which case it is a no-op, not a move).

    Detected idioms (SimpleScalar/MIPS convention, ``r0 == 0``):

    * ``ADDI/ORI/XORI rd, rs, 0``
    * ``ADD/OR/XOR rd, rs, r0`` and ``ADD/OR/XOR rd, r0, rt``
    * ``SUB rd, rs, r0``
    * ``SLL/SRL/SRA rd, rs, 0``
    * ``ANDI rd, rs, 0`` (a zero: a move from ``r0``)
    """
    if instr.rd in (None, ZERO_REG):
        return None
    op = instr.op
    if op in (Op.ADDI, Op.ORI, Op.XORI) and instr.imm == 0:
        return instr.rs
    if op in (Op.ADD, Op.OR, Op.XOR):
        if instr.rt == ZERO_REG:
            return instr.rs
        if instr.rs == ZERO_REG:
            return instr.rt
        return None
    if op is Op.SUB and instr.rt == ZERO_REG:
        return instr.rs
    if op in (Op.SLL, Op.SRL, Op.SRA) and instr.imm == 0:
        return instr.rs
    if op is Op.ANDI and instr.imm == 0:
        return ZERO_REG
    return None


def make_nop() -> Instruction:
    """A fresh NOP instruction."""
    return Instruction(Op.NOP)


__all__ = ["Instruction", "GuardAnnotation", "ScaleAnnotation",
           "move_source", "make_nop"]
