"""Architected register file naming.

32 general-purpose integer registers. Register 0 is hardwired to zero,
exactly as in MIPS / SimpleScalar; the paper's register-move detection
depends on this convention (``ADD rx <- ry + r0`` is a move, and
``ADDI rx <- r0 + imm`` is a constant load).
"""

from __future__ import annotations

NUM_REGS = 32
ZERO_REG = 0

#: Conventional MIPS ABI aliases, index -> preferred printable name.
REG_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

_NAME_TO_NUM = {name: idx for idx, name in enumerate(REG_NAMES)}
_NAME_TO_NUM.update({f"r{idx}": idx for idx in range(NUM_REGS)})
_NAME_TO_NUM["s8"] = 30  # alternate alias for fp


def reg_name(num: int) -> str:
    """Return the canonical ABI name for register number *num*."""
    return REG_NAMES[num]


def reg_number(name: str) -> int:
    """Parse a register reference.

    Accepts ``$t0``, ``t0``, ``$8``, ``8`` and ``r8`` spellings.

    Raises:
        KeyError: if the name is not a valid register reference.
    """
    text = name.strip().lower()
    if text.startswith("$"):
        text = text[1:]
    if text.isdigit():
        num = int(text)
        if 0 <= num < NUM_REGS:
            return num
        raise KeyError(name)
    if text in _NAME_TO_NUM:
        return _NAME_TO_NUM[text]
    raise KeyError(name)
