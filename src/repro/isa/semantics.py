"""Pure functional semantics for the ISA.

:func:`evaluate` computes the architectural effect of one instruction
given a register-read callback, *without* mutating any state. The
functional machine (:mod:`repro.machine.executor`) applies the returned
:class:`Effect`. Keeping semantics pure lets the test suite verify the
fill-unit optimizations' semantic equivalence directly: a transformed
instruction must evaluate to the same effect as the original whenever
its enabling conditions hold.

All arithmetic is 32-bit two's complement. Immediates are sign-extended
16-bit values uniformly (including the logical immediates; this is an
internal simplification over MIPS's zero-extension and is consistent
across the assembler, encoder and executor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ExecutionError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op

MASK32 = 0xFFFFFFFF


def to_u32(value: int) -> int:
    """Truncate to an unsigned 32-bit value."""
    return value & MASK32


def to_s32(value: int) -> int:
    """Truncate to a signed 32-bit value."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


@dataclass(frozen=True)
class MemOp:
    """A memory access computed by :func:`evaluate`."""

    is_store: bool
    addr: int
    size: int          # bytes: 1, 2 or 4
    signed: bool       # sign-extend loaded value
    store_value: int = 0


@dataclass(frozen=True)
class Effect:
    """The architectural effect of one instruction.

    Exactly the fields relevant to the opcode are populated:

    * ALU ops: ``dest``/``value``.
    * Loads: ``dest`` and ``mem`` (value filled in by the executor).
    * Stores: ``mem``.
    * Control: ``taken``/``target`` (``target`` is an absolute byte
      address; for not-taken conditional branches it is the fallthrough).
    * ``halt`` for HALT, ``serialize`` for SYSCALL/HALT.
    """

    dest: Optional[int] = None
    value: Optional[int] = None
    mem: Optional[MemOp] = None
    is_ctrl: bool = False
    taken: bool = False
    target: Optional[int] = None
    halt: bool = False
    serialize: bool = False


ReadReg = Callable[[int], int]

_LOAD_SIZES = {
    Op.LW: (4, True), Op.LH: (2, True), Op.LHU: (2, False),
    Op.LB: (1, True), Op.LBU: (1, False),
    Op.LWX: (4, True), Op.LBX: (1, True),
}
_STORE_SIZES = {Op.SW: 4, Op.SH: 2, Op.SB: 1, Op.SWX: 4, Op.SBX: 1}


def _rs_value(instr: Instruction, read: ReadReg) -> int:
    """Value of the ``rs`` operand slot, honouring a scale annotation.

    A scaled instruction reads the shift's *source* register and applies
    the short left shift inside the (scaled-add capable) functional
    unit, exactly as the paper's modified ALU does.
    """
    if instr.scale is not None:
        return to_s32(read(instr.scale.src) << instr.scale.shamt)
    return to_s32(read(instr.rs or 0))


def evaluate(instr: Instruction, read: ReadReg) -> Effect:
    """Evaluate *instr* against register values supplied by *read*.

    Raises:
        ExecutionError: for opcodes with no defined semantics (cannot
            happen for instructions produced by the assembler/decoder).
    """
    op = instr.op
    pc = instr.pc if instr.pc is not None else 0

    if instr.guard is not None:
        # Dynamic predication: an inactive guarded instruction keeps
        # its old destination value (conditional-move semantics). The
        # fill unit only guards simple single-destination ALU ops.
        is_zero = to_s32(read(instr.guard.reg)) == 0
        if is_zero != instr.guard.execute_if_zero:
            dest = instr.dest()
            return Effect(dest=dest,
                          value=to_s32(read(dest)) if dest is not None
                          else None)

    if op is Op.NOP:
        return Effect()
    if op is Op.HALT:
        return Effect(halt=True, serialize=True)
    if op is Op.SYSCALL:
        return Effect(serialize=True)

    if op in _ALU3:
        a = _rs_value(instr, read)
        b = to_s32(read(instr.rt or 0))
        return Effect(dest=instr.dest(), value=_ALU3[op](a, b))
    if op in _ALUI:
        a = _rs_value(instr, read)
        return Effect(dest=instr.dest(), value=_ALUI[op](a, instr.imm or 0))
    if op in (Op.SLL, Op.SRL, Op.SRA):
        a = to_s32(read(instr.rs or 0))
        return Effect(dest=instr.dest(),
                      value=_shift(op, a, (instr.imm or 0) & 0x1F))
    if op in (Op.SLLV, Op.SRLV, Op.SRAV):
        a = to_s32(read(instr.rs or 0))
        amount = read(instr.rt or 0) & 0x1F
        base = {Op.SLLV: Op.SLL, Op.SRLV: Op.SRL, Op.SRAV: Op.SRA}[op]
        return Effect(dest=instr.dest(), value=_shift(base, a, amount))
    if op is Op.LUI:
        return Effect(dest=instr.dest(),
                      value=to_s32(((instr.imm or 0) & 0xFFFF) << 16))

    if op in _LOAD_SIZES:
        size, signed = _LOAD_SIZES[op]
        if op in (Op.LWX, Op.LBX):
            addr = to_u32(_rs_value(instr, read)
                          + to_s32(read(instr.rt or 0)))
        else:
            addr = to_u32(_rs_value(instr, read) + (instr.imm or 0))
        return Effect(dest=instr.dest(),
                      mem=MemOp(False, addr, size, signed))
    if op in _STORE_SIZES:
        size = _STORE_SIZES[op]
        if op in (Op.SWX, Op.SBX):
            addr = to_u32(_rs_value(instr, read)
                          + to_s32(read(instr.rt or 0)))
            value = to_u32(read(instr.rd or 0))
        else:
            addr = to_u32(_rs_value(instr, read) + (instr.imm or 0))
            value = to_u32(read(instr.rt or 0))
        return Effect(mem=MemOp(True, addr, size, False, value))

    if op in (Op.BEQ, Op.BNE, Op.BLEZ, Op.BGTZ, Op.BLTZ, Op.BGEZ):
        a = to_s32(read(instr.rs or 0))
        if op is Op.BEQ:
            taken = a == to_s32(read(instr.rt or 0))
        elif op is Op.BNE:
            taken = a != to_s32(read(instr.rt or 0))
        elif op is Op.BLEZ:
            taken = a <= 0
        elif op is Op.BGTZ:
            taken = a > 0
        elif op is Op.BLTZ:
            taken = a < 0
        else:
            taken = a >= 0
        target = (to_u32(pc + (instr.imm or 0)) if taken
                  else to_u32(pc + 4))
        return Effect(is_ctrl=True, taken=taken, target=target)
    if op is Op.J:
        return Effect(is_ctrl=True, taken=True,
                      target=to_u32(instr.imm or 0))
    if op is Op.JAL:
        return Effect(dest=31, value=to_s32(pc + 4),
                      is_ctrl=True, taken=True,
                      target=to_u32(instr.imm or 0))
    if op is Op.JR:
        return Effect(is_ctrl=True, taken=True,
                      target=to_u32(read(instr.rs or 0)))
    if op is Op.JALR:
        return Effect(dest=instr.dest(), value=to_s32(pc + 4),
                      is_ctrl=True, taken=True,
                      target=to_u32(read(instr.rs or 0)))

    raise ExecutionError(f"no semantics for opcode {op.name}")


def _shift(op: Op, a: int, amount: int) -> int:
    if op is Op.SLL:
        return to_s32(a << amount)
    if op is Op.SRL:
        return to_s32(to_u32(a) >> amount)
    return to_s32(a >> amount)  # SRA on the signed value


def _div(a: int, b: int) -> int:
    if b == 0:
        return 0  # architected: division by zero yields zero, no trap
    # C-style truncation toward zero.
    q = abs(a) // abs(b)
    return to_s32(-q if (a < 0) != (b < 0) else q)


_ALU3 = {
    Op.ADD: lambda a, b: to_s32(a + b),
    Op.SUB: lambda a, b: to_s32(a - b),
    Op.AND: lambda a, b: to_s32(a & b),
    Op.OR: lambda a, b: to_s32(a | b),
    Op.XOR: lambda a, b: to_s32(a ^ b),
    Op.NOR: lambda a, b: to_s32(~(a | b)),
    Op.SLT: lambda a, b: int(a < b),
    Op.SLTU: lambda a, b: int(to_u32(a) < to_u32(b)),
    Op.MULT: lambda a, b: to_s32(a * b),
    Op.DIV: _div,
}

_ALUI = {
    Op.ADDI: lambda a, i: to_s32(a + i),
    Op.ANDI: lambda a, i: to_s32(a & i),
    Op.ORI: lambda a, i: to_s32(a | i),
    Op.XORI: lambda a, i: to_s32(a ^ i),
    Op.SLTI: lambda a, i: int(a < i),
    Op.SLTIU: lambda a, i: int(to_u32(a) < to_u32(i)),
}

__all__ = ["Effect", "MemOp", "evaluate", "to_u32", "to_s32", "MASK32"]
