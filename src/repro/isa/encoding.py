"""32-bit binary instruction encoding.

The encoding is MIPS-shaped: a 6-bit primary opcode with R/I/J formats,
a SPECIAL (0x00) function field for three-register operations, a REGIMM
(0x01) group for the single-register compare branches, and a SPECIAL2
(0x1C) group for the SimpleScalar-style indexed memory operations.

Immediates are canonically *signed* 16-bit values throughout the
library (see :mod:`repro.isa.semantics`); branch displacements are byte
offsets from the branch's own PC, stored as word offsets in the
immediate field; jump targets are absolute byte addresses stored as
word addresses in the 26-bit field.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Op, op_info

_SPECIAL = 0x00
_REGIMM = 0x01
_SPECIAL2 = 0x1C

_R_FUNCT = {
    Op.SLL: 0x00, Op.SRL: 0x02, Op.SRA: 0x03,
    Op.SLLV: 0x04, Op.SRLV: 0x06, Op.SRAV: 0x07,
    Op.JR: 0x08, Op.JALR: 0x09, Op.SYSCALL: 0x0C, Op.HALT: 0x0D,
    Op.MULT: 0x18, Op.DIV: 0x1A,
    Op.ADD: 0x20, Op.SUB: 0x22, Op.AND: 0x24, Op.OR: 0x25,
    Op.XOR: 0x26, Op.NOR: 0x27, Op.SLT: 0x2A, Op.SLTU: 0x2B,
    Op.NOP: 0x3E,
}
_R_FUNCT_INV = {v: k for k, v in _R_FUNCT.items()}

_S2_FUNCT = {Op.LWX: 0x00, Op.LBX: 0x01, Op.SWX: 0x02, Op.SBX: 0x03}
_S2_FUNCT_INV = {v: k for k, v in _S2_FUNCT.items()}

_I_OPCODE = {
    Op.BEQ: 0x04, Op.BNE: 0x05, Op.BLEZ: 0x06, Op.BGTZ: 0x07,
    Op.ADDI: 0x08, Op.SLTI: 0x0A, Op.SLTIU: 0x0B,
    Op.ANDI: 0x0C, Op.ORI: 0x0D, Op.XORI: 0x0E, Op.LUI: 0x0F,
    Op.LB: 0x20, Op.LH: 0x21, Op.LW: 0x23, Op.LBU: 0x24, Op.LHU: 0x25,
    Op.SB: 0x28, Op.SH: 0x29, Op.SW: 0x2B,
}
_I_OPCODE_INV = {v: k for k, v in _I_OPCODE.items()}

_REGIMM_RT = {Op.BLTZ: 0x00, Op.BGEZ: 0x01}
_REGIMM_RT_INV = {v: k for k, v in _REGIMM_RT.items()}

_J_OPCODE = {Op.J: 0x02, Op.JAL: 0x03}
_J_OPCODE_INV = {v: k for k, v in _J_OPCODE.items()}


def _u16(value: int, what: str) -> int:
    if not -32768 <= value <= 32767:
        raise EncodingError(f"{what} {value} does not fit in signed 16 bits")
    return value & 0xFFFF


def _sext16(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


def encode(instr: Instruction) -> int:
    """Encode *instr* into its 32-bit word.

    Fill-unit annotations are *not* encoded; they exist only inside the
    trace cache (the paper stores them as 7 extra pre-decode bits per
    instruction, outside the architected 4-byte word).

    Raises:
        EncodingError: for out-of-range fields or unencodable opcodes.
    """
    op = instr.op
    fmt = op_info(op).format
    if op in _R_FUNCT:
        funct = _R_FUNCT[op]
        rd = instr.rd or 0
        rs = instr.rs or 0
        rt = instr.rt or 0
        shamt = 0
        if fmt is Format.SHIFT:
            shamt = instr.imm or 0
            if not 0 <= shamt <= 31:
                raise EncodingError(f"shift amount {shamt} out of range")
        return (_SPECIAL << 26) | (rs << 21) | (rt << 16) | (rd << 11) \
            | (shamt << 6) | funct
    if op in _S2_FUNCT:
        rd = instr.rd or 0
        rs = instr.rs or 0
        rt = instr.rt or 0
        return (_SPECIAL2 << 26) | (rs << 21) | (rt << 16) | (rd << 11) \
            | _S2_FUNCT[op]
    if op in _REGIMM_RT:
        offset = _encode_branch_offset(instr)
        return (_REGIMM << 26) | ((instr.rs or 0) << 21) \
            | (_REGIMM_RT[op] << 16) | offset
    if op in _J_OPCODE:
        target = instr.imm or 0
        if target % 4 or not 0 <= target < (1 << 28):
            raise EncodingError(f"jump target {target:#x} unencodable")
        return (_J_OPCODE[op] << 26) | (target >> 2)
    if op in _I_OPCODE:
        code = _I_OPCODE[op]
        if fmt in (Format.BR2, Format.BR1):
            rs, rt = instr.rs or 0, instr.rt or 0
            return (code << 26) | (rs << 21) | (rt << 16) \
                | _encode_branch_offset(instr)
        if fmt is Format.LUI:
            return (code << 26) | ((instr.rd or 0) << 16) \
                | _u16(instr.imm or 0, "immediate")
        if fmt is Format.LOAD:
            return (code << 26) | ((instr.rs or 0) << 21) \
                | ((instr.rd or 0) << 16) | _u16(instr.imm or 0, "offset")
        if fmt is Format.STORE:
            return (code << 26) | ((instr.rs or 0) << 21) \
                | ((instr.rt or 0) << 16) | _u16(instr.imm or 0, "offset")
        # R2I arithmetic: rd in the rt field, MIPS-style.
        return (code << 26) | ((instr.rs or 0) << 21) \
            | ((instr.rd or 0) << 16) | _u16(instr.imm or 0, "immediate")
    raise EncodingError(f"opcode {op.name} has no binary encoding")


def _encode_branch_offset(instr: Instruction) -> int:
    offset = instr.imm or 0
    if offset % 4:
        raise EncodingError(f"branch offset {offset} not word aligned")
    words = offset >> 2
    if not -32768 <= words <= 32767:
        raise EncodingError(f"branch offset {offset} out of range")
    return words & 0xFFFF


def decode(word: int) -> Instruction:
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises:
        EncodingError: for unknown opcodes or function codes.
    """
    if not 0 <= word <= 0xFFFFFFFF:
        raise EncodingError(f"word {word:#x} is not 32 bits")
    if word == 0:
        return Instruction(Op.NOP)
    code = word >> 26
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    rd = (word >> 11) & 0x1F
    shamt = (word >> 6) & 0x1F
    funct = word & 0x3F
    imm16 = _sext16(word)

    if code == _SPECIAL:
        if funct not in _R_FUNCT_INV:
            raise EncodingError(f"unknown SPECIAL funct {funct:#x}")
        op = _R_FUNCT_INV[funct]
        fmt = op_info(op).format
        if fmt is Format.SHIFT:
            return Instruction(op, rd=rd, rs=rs, imm=shamt)
        if fmt is Format.JR:
            return Instruction(op, rs=rs)
        if fmt is Format.JALR:
            return Instruction(op, rd=rd, rs=rs)
        if fmt is Format.NONE:
            return Instruction(op)
        return Instruction(op, rd=rd, rs=rs, rt=rt)
    if code == _SPECIAL2:
        if funct not in _S2_FUNCT_INV:
            raise EncodingError(f"unknown SPECIAL2 funct {funct:#x}")
        op = _S2_FUNCT_INV[funct]
        return Instruction(op, rd=rd, rs=rs, rt=rt)
    if code == _REGIMM:
        if rt not in _REGIMM_RT_INV:
            raise EncodingError(f"unknown REGIMM rt {rt:#x}")
        return Instruction(_REGIMM_RT_INV[rt], rs=rs, imm=imm16 << 2)
    if code in _J_OPCODE_INV:
        return Instruction(_J_OPCODE_INV[code], imm=(word & 0x3FFFFFF) << 2)
    if code in _I_OPCODE_INV:
        op = _I_OPCODE_INV[code]
        fmt = op_info(op).format
        if fmt is Format.BR2:
            return Instruction(op, rs=rs, rt=rt, imm=imm16 << 2)
        if fmt is Format.BR1:
            return Instruction(op, rs=rs, imm=imm16 << 2)
        if fmt is Format.LUI:
            return Instruction(op, rd=rt, imm=imm16)
        if fmt is Format.LOAD:
            return Instruction(op, rd=rt, rs=rs, imm=imm16)
        if fmt is Format.STORE:
            return Instruction(op, rt=rt, rs=rs, imm=imm16)
        return Instruction(op, rd=rt, rs=rs, imm=imm16)
    raise EncodingError(f"unknown primary opcode {code:#x}")


__all__ = ["encode", "decode"]
