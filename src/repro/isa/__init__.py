"""Instruction-set architecture for the reproduction.

The ISA is modelled on the SimpleScalar 2.0 instruction set used by the
paper: a MIPS-IV-like RISC ISA with architected delay slots removed and
indexed (register + register) memory operations added.

Public surface:

* :mod:`repro.isa.registers` -- architected register file names.
* :mod:`repro.isa.opcodes` -- :class:`Op` opcode enumeration and static
  metadata (format, operation class, execution latency).
* :mod:`repro.isa.instruction` -- :class:`Instruction`, the mutable
  in-pipeline representation carrying fill-unit annotations.
* :mod:`repro.isa.encoding` -- 32-bit binary encode/decode.
* :mod:`repro.isa.semantics` -- pure functional evaluation.
* :mod:`repro.isa.disasm` -- textual disassembly.
"""

from repro.isa.instruction import Instruction, ScaleAnnotation
from repro.isa.opcodes import Op, OpClass, op_info
from repro.isa.registers import (
    NUM_REGS,
    REG_NAMES,
    ZERO_REG,
    reg_name,
    reg_number,
)

__all__ = [
    "Instruction",
    "ScaleAnnotation",
    "Op",
    "OpClass",
    "op_info",
    "NUM_REGS",
    "REG_NAMES",
    "ZERO_REG",
    "reg_name",
    "reg_number",
]
