"""The clustered execution backend.

16 universal functional units in four symmetric clusters of four.
Results forward back-to-back within a cluster; crossing clusters costs
an extra cycle through the operand bypass network — the latency the
placement optimization attacks. Each FU is fully pipelined (accepts one
instruction per cycle) and fronted by a 32-entry reservation station.
"""

from __future__ import annotations

from collections import deque
import heapq
from typing import List, Optional, Set, Tuple

#: occupancy at or below ``base + 1`` can never constrain a claim made
#: by a group fetched at ``base`` (every reserve/admit/acquire in that
#: group starts at ``base + 2`` or later, and fetch cycles only grow),
#: so the replay digests cut there: such entries are invisible to the
#: timing model and stay out of both the context key and the restored
#: state. See docs/architecture.md ("Timing memo").
_DIGEST_SLACK = 1


class FunctionalUnits:
    """Issue-slot-to-FU pipeline occupancy.

    Issue slot *k* of a fetch group feeds functional unit *k* (the
    paper's design point: placement moves the routing crossbar into the
    fill unit, so the issue path is slot-wired). A FU accepts at most
    one instruction per cycle.
    """

    def __init__(self, num_fus: int) -> None:
        self.num_fus = num_fus
        self._busy: List[Set[int]] = [set() for _ in range(num_fus)]
        #: cycles below this are forgotten
        self._floor: List[int] = [0] * num_fus

    def reserve(self, fu: int, earliest: int) -> int:
        """Claim the first free issue cycle of *fu* at or after
        *earliest*; returns the claimed cycle."""
        busy = self._busy[fu]
        cycle = max(earliest, self._floor[fu])
        while cycle in busy:
            cycle += 1
        busy.add(cycle)
        if len(busy) > 4096:
            self._compact(fu, cycle)
        return cycle

    def _compact(self, fu: int, now: int) -> None:
        """Forget reservations far in the past (bounded memory)."""
        floor = now - 512
        self._busy[fu] = {c for c in self._busy[fu] if c >= floor}
        self._floor[fu] = max(self._floor[fu], floor)

    # -- replay context surface -----------------------------------------

    def prune_below(self, cycle: int) -> None:
        """Drop reservations below *cycle* without raising the floor.

        Sound whenever every future claim's *earliest* is at least
        *cycle*: ``reserve`` only probes cycles >= earliest, so the
        dropped entries could never have been consulted again. The
        replay controller calls this once per fetch group (with
        ``cycle = fetch_cycle + 2``), which keeps the busy sets at
        in-flight size and the compaction floor at zero.
        """
        for fu, busy in enumerate(self._busy):
            if busy and min(busy) < cycle:
                self._busy[fu] = {c for c in busy if c >= cycle}

    def context_digest(self, base: int) -> Tuple[Tuple[Tuple[int, ...],
                                                       ...],
                                                 Tuple[int, ...]]:
        """Hashable occupancy relative to *base* (a group's fetch
        cycle): per-FU sorted busy cycles above the digest cut, plus
        the (almost always zero) normalized compaction floors. Doubles
        as the post-visit snapshot :meth:`restore` replays."""
        cut = base + _DIGEST_SLACK
        return (
            tuple(tuple(sorted(c - base for c in busy if c > cut))
                  for busy in self._busy),
            tuple(max(f - base - _DIGEST_SLACK, 0) for f in self._floor),
        )

    @staticmethod
    def shift_digest(snap: Tuple[Tuple[Tuple[int, ...], ...],
                                 Tuple[int, ...]],
                     delta: int) -> Tuple[Tuple[Tuple[int, ...], ...],
                                          Tuple[int, ...]]:
        """Re-normalize a digest taken at some base to ``base + delta``
        (*delta* >= 0, no intervening mutation): bit-identical to
        calling :meth:`context_digest` at the later base. The replay
        controller uses this to carry one group's post-visit digest
        forward as the next group's pre-visit key component instead of
        re-walking the busy sets."""
        per_fu, floors = snap
        cut = _DIGEST_SLACK + delta
        return (
            tuple(tuple(c - delta for c in vals if c > cut)
                  for vals in per_fu),
            floors if not any(floors)
            else tuple(max(f - delta, 0) for f in floors),
        )

    def restore(self, base: int, snap: Tuple[Tuple[Tuple[int, ...], ...],
                                             Tuple[int, ...]]) -> None:
        """Install a :meth:`context_digest` snapshot taken at *base*.

        Entries at or below the digest cut are discarded — they are
        invisible to every future claim (see :data:`_DIGEST_SLACK`).
        Floors are left untouched: a digest match guarantees they are
        either equal or equally inert.
        """
        per_fu, _floors = snap
        for fu, entries in enumerate(per_fu):
            self._busy[fu] = {c + base for c in entries}


class ReservationStations:
    """Per-FU RS occupancy.

    An entry is held from dispatch-into-RS until issue-to-execute. The
    replay model applies the capacity as an issue-time constraint: when
    the RS is full, the incoming instruction cannot begin execution
    before the earliest resident entry vacates.
    """

    def __init__(self, num_fus: int, entries_per_fu: int) -> None:
        self.entries_per_fu = entries_per_fu
        #: per-FU min-heaps of release cycles
        self._release: List[List[int]] = [[] for _ in range(num_fus)]

    def admit(self, fu: int, enter: int) -> int:
        """Earliest cycle an instruction entering FU *fu*'s RS at
        *enter* may dispatch, considering only RS capacity."""
        heap = self._release[fu]
        while heap and heap[0] <= enter:
            heapq.heappop(heap)
        if len(heap) >= self.entries_per_fu:
            return heap[0]
        return enter

    def occupy(self, fu: int, until: int) -> None:
        """Record an entry resident until *until* (its dispatch cycle)."""
        heapq.heappush(self._release[fu], until)

    # -- replay context surface -----------------------------------------

    def context_digest(self, base: int) -> Tuple[Tuple[int, ...], ...]:
        """Per-FU sorted release cycles above the digest cut, relative
        to *base*. Entries at or below ``base + 1`` are invisible:
        every future ``admit`` pops them before its capacity check
        (enter cycles are at least ``base + 2``), so they are excluded
        here and dropped on :meth:`restore`."""
        cut = base + _DIGEST_SLACK
        return tuple(tuple(sorted(c - base for c in heap if c > cut))
                     for heap in self._release)

    @staticmethod
    def shift_digest(snap: Tuple[Tuple[int, ...], ...],
                     delta: int) -> Tuple[Tuple[int, ...], ...]:
        """Re-normalize a digest to a base *delta* cycles later (no
        intervening mutation); see
        :meth:`FunctionalUnits.shift_digest`."""
        cut = _DIGEST_SLACK + delta
        return tuple(tuple(c - delta for c in vals if c > cut)
                     for vals in snap)

    def restore(self, base: int,
                snap: Tuple[Tuple[int, ...], ...]) -> None:
        """Install a :meth:`context_digest` snapshot taken at *base*
        (a sorted list is a valid min-heap)."""
        for heap, entries in zip(self._release, snap):
            heap[:] = [c + base for c in entries]


class BypassNetwork:
    """Operand availability across the cluster bypass network."""

    def __init__(self, cluster_size: int, penalty: int) -> None:
        self.cluster_size = cluster_size
        self.penalty = penalty
        #: operand deliveries that paid the cross-cluster penalty
        #: [replay: counter] — delta-captured by the controller's
        #: attribute cells, not digested
        self.crossings = 0

    def cluster_of_slot(self, slot: int) -> int:
        return slot // self.cluster_size

    def effective_ready(self, ready: int, producer_cluster: Optional[int],
                        consumer_cluster: int) -> int:
        """When a value produced at *ready* in *producer_cluster* can be
        consumed in *consumer_cluster*.

        ``producer_cluster is None`` means the value predates the
        window (architected state): available everywhere.
        """
        if producer_cluster is None or producer_cluster == consumer_cluster:
            return ready
        self.crossings += 1
        return ready + self.penalty


class CheckpointStore:
    """Checkpoint-repair storage (Hwu & Patt).

    Every conditional branch holds a checkpoint from rename until it
    resolves; with all checkpoints live, the next branch stalls in
    rename until the oldest outstanding branch completes. Resolution is
    in program order here because branches complete monotonically per
    the replay's in-order processing of rename — out-of-order resolve
    would only ever free checkpoints earlier, so this bound is
    conservative in the right direction.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._outstanding: "deque[int]" = deque()
        self._last_free = 0
        #: [replay: counter] acquisitions delayed by a full store
        self.stalls = 0

    def acquire(self, rename_cycle: int) -> int:
        """Earliest cycle a new branch may rename, given checkpoint
        availability; frees checkpoints resolved by then."""
        while self._outstanding and self._outstanding[0] <= rename_cycle:
            self._outstanding.popleft()
        if len(self._outstanding) >= self.capacity:
            freed_at = self._outstanding.popleft()
            self.stalls += 1
            while self._outstanding and self._outstanding[0] <= freed_at:
                self._outstanding.popleft()
            return max(rename_cycle, freed_at)
        return rename_cycle

    def commit(self, resolve_cycle: int) -> None:
        """Record the branch's checkpoint as held until *resolve_cycle*.

        Checkpoints reclaim in allocation order (a circular buffer), so
        a checkpoint cannot free before its predecessors.
        """
        self._last_free = max(self._last_free, resolve_cycle)
        self._outstanding.append(self._last_free)

    # -- replay context surface -----------------------------------------

    def context_digest(self, base: int) -> Tuple[Tuple[int, ...], int]:
        """Outstanding-checkpoint digest relative to *base*: resolve
        cycles above the digest cut (older entries are popped by any
        future ``acquire`` before its capacity check — acquire cycles
        are at least ``base + 2``) plus the clamped ``last_free``
        high-water mark (inert at or below the cut: a future commit's
        resolve cycle always dominates it)."""
        cut = base + _DIGEST_SLACK
        return (tuple(c - base for c in self._outstanding if c > cut),
                max(self._last_free - base - _DIGEST_SLACK, 0))

    @staticmethod
    def shift_digest(snap: Tuple[Tuple[int, ...], int],
                     delta: int) -> Tuple[Tuple[int, ...], int]:
        """Re-normalize a digest to a base *delta* cycles later (no
        intervening mutation); see
        :meth:`FunctionalUnits.shift_digest`."""
        outstanding, last_free = snap
        cut = _DIGEST_SLACK + delta
        return (tuple(c - delta for c in outstanding if c > cut),
                max(last_free - delta, 0))

    def restore(self, base: int,
                snap: Tuple[Tuple[int, ...], int]) -> None:
        """Install a :meth:`context_digest` snapshot taken at *base*."""
        outstanding, last_free = snap
        self._outstanding = deque(c + base for c in outstanding)
        if last_free > 0:
            self._last_free = last_free + base + _DIGEST_SLACK


__all__ = ["FunctionalUnits", "ReservationStations", "BypassNetwork",
           "CheckpointStore"]
