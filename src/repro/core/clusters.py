"""The clustered execution backend.

16 universal functional units in four symmetric clusters of four.
Results forward back-to-back within a cluster; crossing clusters costs
an extra cycle through the operand bypass network — the latency the
placement optimization attacks. Each FU is fully pipelined (accepts one
instruction per cycle) and fronted by a 32-entry reservation station.
"""

from __future__ import annotations

import heapq
from collections import deque


class FunctionalUnits:
    """Issue-slot-to-FU pipeline occupancy.

    Issue slot *k* of a fetch group feeds functional unit *k* (the
    paper's design point: placement moves the routing crossbar into the
    fill unit, so the issue path is slot-wired). A FU accepts at most
    one instruction per cycle.
    """

    def __init__(self, num_fus: int) -> None:
        self.num_fus = num_fus
        self._busy = [set() for _ in range(num_fus)]
        self._floor = [0] * num_fus     # cycles below this are forgotten

    def reserve(self, fu: int, earliest: int) -> int:
        """Claim the first free issue cycle of *fu* at or after
        *earliest*; returns the claimed cycle."""
        busy = self._busy[fu]
        cycle = max(earliest, self._floor[fu])
        while cycle in busy:
            cycle += 1
        busy.add(cycle)
        if len(busy) > 4096:
            self._compact(fu, cycle)
        return cycle

    def _compact(self, fu: int, now: int) -> None:
        """Forget reservations far in the past (bounded memory)."""
        floor = now - 512
        self._busy[fu] = {c for c in self._busy[fu] if c >= floor}
        self._floor[fu] = max(self._floor[fu], floor)


class ReservationStations:
    """Per-FU RS occupancy.

    An entry is held from dispatch-into-RS until issue-to-execute. The
    replay model applies the capacity as an issue-time constraint: when
    the RS is full, the incoming instruction cannot begin execution
    before the earliest resident entry vacates.
    """

    def __init__(self, num_fus: int, entries_per_fu: int) -> None:
        self.entries_per_fu = entries_per_fu
        self._release = [[] for _ in range(num_fus)]  # min-heaps

    def admit(self, fu: int, enter: int) -> int:
        """Earliest cycle an instruction entering FU *fu*'s RS at
        *enter* may dispatch, considering only RS capacity."""
        heap = self._release[fu]
        while heap and heap[0] <= enter:
            heapq.heappop(heap)
        if len(heap) >= self.entries_per_fu:
            return heap[0]
        return enter

    def occupy(self, fu: int, until: int) -> None:
        """Record an entry resident until *until* (its dispatch cycle)."""
        heapq.heappush(self._release[fu], until)


class BypassNetwork:
    """Operand availability across the cluster bypass network."""

    def __init__(self, cluster_size: int, penalty: int) -> None:
        self.cluster_size = cluster_size
        self.penalty = penalty
        #: operand deliveries that paid the cross-cluster penalty
        self.crossings = 0

    def cluster_of_slot(self, slot: int) -> int:
        return slot // self.cluster_size

    def effective_ready(self, ready: int, producer_cluster,
                        consumer_cluster: int) -> int:
        """When a value produced at *ready* in *producer_cluster* can be
        consumed in *consumer_cluster*.

        ``producer_cluster is None`` means the value predates the
        window (architected state): available everywhere.
        """
        if producer_cluster is None or producer_cluster == consumer_cluster:
            return ready
        self.crossings += 1
        return ready + self.penalty


class CheckpointStore:
    """Checkpoint-repair storage (Hwu & Patt).

    Every conditional branch holds a checkpoint from rename until it
    resolves; with all checkpoints live, the next branch stalls in
    rename until the oldest outstanding branch completes. Resolution is
    in program order here because branches complete monotonically per
    the replay's in-order processing of rename — out-of-order resolve
    would only ever free checkpoints earlier, so this bound is
    conservative in the right direction.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._outstanding: deque = deque()
        self._last_free = 0
        self.stalls = 0

    def acquire(self, rename_cycle: int) -> int:
        """Earliest cycle a new branch may rename, given checkpoint
        availability; frees checkpoints resolved by then."""
        while self._outstanding and self._outstanding[0] <= rename_cycle:
            self._outstanding.popleft()
        if len(self._outstanding) >= self.capacity:
            freed_at = self._outstanding.popleft()
            self.stalls += 1
            while self._outstanding and self._outstanding[0] <= freed_at:
                self._outstanding.popleft()
            return max(rename_cycle, freed_at)
        return rename_cycle

    def commit(self, resolve_cycle: int) -> None:
        """Record the branch's checkpoint as held until *resolve_cycle*.

        Checkpoints reclaim in allocation order (a circular buffer), so
        a checkpoint cannot free before its predecessors.
        """
        self._last_free = max(self._last_free, resolve_cycle)
        self._outstanding.append(self._last_free)


__all__ = ["FunctionalUnits", "ReservationStations", "BypassNetwork",
           "CheckpointStore"]
