"""Pipeline debugging aids: per-instruction timing capture.

Attach a :class:`TimingTrace` to a :class:`PipelineModel` to record
when every committed instruction was fetched, renamed, completed and
retired — the raw material for understanding *why* a configuration is
faster (which chain shrank, where the bypass penalty went).

Two equivalent attachment points share one capture path:

* directly, as the model's ``timing_hook`` callable::

      model = PipelineModel(config)
      capture = TimingTrace(limit=200)
      model.timing_hook = capture
      model.run(trace)
      print(capture.render())

* as a sink on a telemetry event stream (it declares
  ``wants_instr_timing``, which turns on the pipeline's per-instruction
  ``instr.retired`` events)::

      telemetry = Telemetry()
      capture = TimingTrace(limit=200)
      telemetry.attach(capture)
      Simulator(config, telemetry=telemetry).run(program)

Records past ``limit`` are not silently discarded: the ``dropped``
counter says how many were seen but not kept, and ``render()`` reports
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TimingRecord:
    """One instruction's trip through the pipeline."""

    seq: int
    pc: int
    op: str
    fetch: int
    rename: int
    complete: int
    retire: int
    slot: int
    from_tc: bool
    mispredicted: bool

    @property
    def latency(self) -> int:
        """Fetch-to-retire cycles."""
        return self.retire - self.fetch


class TimingTrace:
    """Bounded per-instruction timing capture.

    Usable both as the pipeline's ``timing_hook`` callable and as a
    telemetry event sink (``handle``); both paths funnel into the same
    capture logic.
    """

    #: as an event sink, ask the pipeline for ``instr.retired`` events.
    wants_instr_timing = True

    def __init__(self, limit: int = 1000, start_seq: int = 0) -> None:
        self.limit = limit
        self.start_seq = start_seq
        self.records: list = []
        #: records seen after the limit was reached (not retained)
        self.dropped = 0

    def _capture(self, fields: dict) -> None:
        if fields["seq"] < self.start_seq:
            return
        if len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TimingRecord(**fields))

    def __call__(self, *, seq: int, pc: int, op: str, fetch: int,
                 rename: int, complete: int, retire: int, slot: int,
                 from_tc: bool, mispredicted: bool) -> None:
        self._capture(dict(seq=seq, pc=pc, op=op, fetch=fetch,
                           rename=rename, complete=complete,
                           retire=retire, slot=slot, from_tc=from_tc,
                           mispredicted=mispredicted))

    def handle(self, event) -> None:
        """Telemetry-sink entry point for ``instr.retired`` events."""
        if event.kind == "instr.retired":
            self._capture(event.data)

    def __len__(self) -> int:
        return len(self.records)

    def find(self, pc: int) -> list:
        """All captured records for the static instruction at *pc*."""
        return [r for r in self.records if r.pc == pc]

    def render(self, count: Optional[int] = None) -> str:
        """A readable pipeline diagram-esque table."""
        rows = self.records if count is None else self.records[:count]
        lines = [f"{'seq':>7} {'pc':>8} {'op':6} {'F':>7} {'R':>7} "
                 f"{'C':>7} {'ret':>7} {'lat':>4} slot src"]
        for r in rows:
            lines.append(
                f"{r.seq:7d} {r.pc:8x} {r.op:6s} {r.fetch:7d} "
                f"{r.rename:7d} {r.complete:7d} {r.retire:7d} "
                f"{r.latency:4d} {r.slot:4d} "
                f"{'TC' if r.from_tc else 'IC'}"
                f"{' MISP' if r.mispredicted else ''}")
        if self.dropped:
            lines.append(f"({self.dropped} records past the "
                         f"{self.limit}-record limit were dropped)")
        return "\n".join(lines)


__all__ = ["TimingTrace", "TimingRecord"]
