"""The timing model: a 16-wide trace-cache microprocessor with a
clustered execution backend, replayed over the committed instruction
stream (see DESIGN.md §3 for the replay methodology)."""

from repro.core.config import SimConfig
from repro.core.results import SimResult
from repro.core.simulator import Simulator, simulate

__all__ = ["SimConfig", "SimResult", "Simulator", "simulate"]
