"""The replay engine: a stage list driven over the committed stream.

:class:`Engine` owns the machine's components (predictor, memory
hierarchy, trace cache + fill unit, rename/retire units, clustered
backend) and an ordered list of :class:`~repro.core.stages.base.
PipelineStage` objects — fetch, rename, issue, execute, retire, fill.
One :class:`~repro.core.stages.base.MachineState` object is the
explicit handoff between stages; see ``docs/architecture.md`` for the
contract.

Methodology (DESIGN.md §3): instructions are processed in committed
order; each acquires fetch, rename, execute and retire cycles subject
to structural and dataflow constraints. Mispredicted branches stall
subsequent fetch until resolution — *except* the instructions already
inside the same trace segment along the correct path, which is exactly
the inactive-issue benefit of the baseline machine.

The engine is deliberately dumb: all microarchitectural behaviour
lives in the stages, and the engine only sequences them. Extra
observer stages may be appended to ``engine.stages`` before ``run()``
(they see every state transition but must not mutate timing state).

Observability: every run counts against a hierarchical telemetry
registry (the engine's own, or the one of an attached
:class:`~repro.telemetry.Telemetry` session), which is the single
source of truth behind :class:`~repro.core.results.SimResult`'s
counters. With a session attached the stages additionally emit
structured events (mispredicts, trace cache misfetches, checkpoint
repairs, fill-unit activity) and feed the top-down cycle-accounting
pass; without one, those paths collapse to null-object no-ops.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.branch.predictor import MultiBranchPredictor
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.clusters import (
    BypassNetwork,
    CheckpointStore,
    FunctionalUnits,
    ReservationStations,
)
from repro.core.config import SimConfig
from repro.core.memsched import MemoryScheduler
from repro.core.rename import RenameUnit, RetireUnit
from repro.core.replay import ReplayController
from repro.core.results import SimResult
from repro.core.stages.base import (
    InstrSlot,
    MachineState,
    PipelineStage,
)
from repro.core.stages.execute import ExecuteStage
from repro.core.stages.fetch import FetchStage
from repro.core.stages.fill import FillStage
from repro.core.stages.issue import IssueStage
from repro.core.stages.rename import RenameStage
from repro.core.stages.retire import RetireStage
from repro.fillunit.unit import FillUnit, FillUnitConfig
from repro.telemetry.attribution import CycleAccountant
from repro.telemetry.events import (
    NULL_EVENT_STREAM,
    RUN_FINISHED,
    RUN_STARTED,
)
from repro.telemetry.registry import TelemetryRegistry
from repro.telemetry.spans import active_or_none
from repro.tracecache.cache import TraceCache


class Engine:
    """One configured machine instance; replays committed traces."""

    def __init__(self, config: SimConfig,
                 telemetry: Optional[Any] = None) -> None:
        self.config = config
        self.telemetry = telemetry
        if telemetry is not None and telemetry.enabled:
            self.registry = telemetry.registry
            self.events = telemetry.events
        else:
            # The registry stays live even without a session: it is the
            # source of truth the SimResult counters derive from.
            self.registry = TelemetryRegistry()
            self.events = NULL_EVENT_STREAM
        registry_arg = self.registry
        events_arg = self.events if self.events.enabled else None
        #: span recorder when the session traces spans, else None —
        #: instrumented components guard on `is not None` so the
        #: untraced hot path pays a single attribute check at most.
        self.spans = active_or_none(getattr(telemetry, "spans", None)
                                    if telemetry is not None else None)
        self.hierarchy = MemoryHierarchy(config.hierarchy)
        self.predictor = MultiBranchPredictor(config.predictor)
        self.trace_cache = (TraceCache(config.trace_cache)
                            if config.trace_cache_enabled else None)
        self.fill_unit: Optional[FillUnit] = None
        if self.trace_cache is not None:
            self.trace_cache.events = events_arg
            self.trace_cache.spans = self.spans
            fill_config = FillUnitConfig(
                max_instrs=config.trace_cache.max_instrs,
                max_cond_branches=config.trace_cache.max_cond_branches,
                trace_packing=config.trace_packing,
                latency=config.fill_latency,
                num_clusters=config.num_clusters,
                cluster_size=config.cluster_size,
                optimizations=config.optimizations,
                verify=config.verify_fill,
                verify_each=config.verify_each_pass,
            )
            self.fill_unit = FillUnit(fill_config, self.trace_cache,
                                      self.predictor.bias,
                                      registry=registry_arg,
                                      events=events_arg,
                                      spans=self.spans)
        self.fus = FunctionalUnits(config.num_fus)
        self.rs = ReservationStations(config.num_fus, config.rs_per_fu)
        self.bypass = BypassNetwork(config.cluster_size,
                                    config.cross_cluster_penalty)
        self.rename_unit = RenameUnit(config.issue_width,
                                      config.max_blocks_per_cycle,
                                      config.window_size)
        self.checkpoints = CheckpointStore(config.max_checkpoints)
        self.retire_unit = RetireUnit(config.retire_width)
        self.memsched = MemoryScheduler(self.hierarchy,
                                        config.store_forward_window)
        #: optional per-instruction timing callback; see
        #: :class:`repro.core.debug.TimingTrace`.
        self.timing_hook: Optional[Any] = None

        #: the stage list, in pipeline order. Owned by the engine;
        #: tests may append observer stages before ``run()``.
        self.stages: List[PipelineStage] = [
            FetchStage(config, self.hierarchy, self.predictor,
                       self.trace_cache, self.fill_unit,
                       registry_arg, self.events),
            RenameStage(config, self.rename_unit, self.checkpoints,
                        registry_arg, self.events),
            IssueStage(config, self.fus, self.rs, self.bypass,
                       registry_arg),
            ExecuteStage(self.memsched, registry_arg),
            RetireStage(config, self.retire_unit, self.checkpoints,
                        self.predictor, registry_arg, self.events,
                        extra_is_tc_miss=self.trace_cache is not None),
            FillStage(self.fill_unit, registry_arg),
        ]
        #: the canonical stage tuple the replay controller's
        #: eligibility check compares against (appended observer
        #: stages must see every per-instruction transition, so their
        #: presence forces the slow path).
        self._core_stages: Tuple[PipelineStage, ...] = tuple(self.stages)
        #: segment-level timing replay (macro-simulation); None when
        #: disabled or without a trace cache to anchor memo keys on.
        self.replay: Optional[ReplayController] = None
        if config.timing_memo and self.trace_cache is not None:
            self.replay = ReplayController(self)
        #: program image the TRRIP hints were last derived from
        #: (identity-compared so repeated runs skip the CFG walk).
        self._hint_source: Optional[Any] = None

    def _install_policy_hints(self, program: Any) -> None:
        """Feed static temperature hints to a hint-capable trace cache
        replacement policy (TRRIP), once per program image."""
        tc = self.trace_cache
        if tc is None or not hasattr(tc.policy, "set_static_hints"):
            return
        if self._hint_source is program:
            return
        from repro.cache.hints import static_temperature_hints
        tc.policy.set_static_hints(static_temperature_hints(program))
        self._hint_source = program

    # ==================================================================
    # The replay loop
    # ==================================================================

    def run(self, trace: Any, benchmark: str = "bench",
            label: str = "run", program: Optional[Any] = None
            ) -> SimResult:
        """Replay *trace* (a :class:`CommittedTrace`) and return the
        per-run statistics.

        *program* (the static image) is required when
        ``config.model_wrong_path`` is set — wrong-path instructions
        are decoded from it — and, when present, also feeds static
        temperature hints (natural-loop membership joined with
        instruction mix) to a TRRIP-style trace cache replacement
        policy.

        Raises:
            ConfigError: when wrong-path modeling is requested without
                a program image.
        """
        config = self.config
        if program is not None:
            self._install_policy_hints(program)
        wrong_path: Optional[Any] = None
        if config.model_wrong_path:
            if program is None:
                from repro.errors import ConfigError
                raise ConfigError(
                    "model_wrong_path requires the program image")
            from repro.core.wrongpath import WrongPathFetcher
            wrong_path = WrongPathFetcher(program, self.hierarchy,
                                          config.ic_fetch_width)
        records = trace.records
        n = len(records)
        result = SimResult(benchmark=benchmark, config_label=label,
                           instructions=n, cycles=0)
        events = self.events
        events.emit(RUN_STARTED, 0, benchmark=benchmark, label=label,
                    instructions=n)
        if n == 0:
            self._finish_stats(None, result)
            events.emit(RUN_FINISHED, 0, benchmark=benchmark,
                        label=label, instructions=0, cycles=0, ipc=0.0)
            return result

        accountant: Optional[CycleAccountant] = None
        if self.telemetry is not None and self.telemetry.attribution:
            accountant = CycleAccountant(config.cross_cluster_penalty)
        reg_ready: List[Tuple[int, Optional[int]]] = [(0, None)] * 32
        state = MachineState(
            records=records, n=n, result=result,
            reg_ready=reg_ready,
            accountant=accountant,
            timing_hook=self.timing_hook,
            want_payload=((self.timing_hook is not None)
                          or events.wants_instr_timing),
            emit_retired=events.wants_instr_timing,
            wrong_path=wrong_path)

        stages = self.stages
        replay = self.replay
        if replay is not None and not replay.run_eligible(state):
            replay = None
        for stage in stages:
            stage.begin_run(state)
        while state.index < state.n:
            for stage in stages:
                stage.begin_group(state)
            group = state.group
            assert group is not None
            if not group.entries:   # defensive; not seen on real traces
                state.index += 1
                continue
            if replay is not None and replay.on_group(state):
                state.index += group.consumed
                continue
            retire_cycles = state.retire_cycles
            for entry in group.entries:
                slot = InstrSlot(entry=entry, seq=len(retire_cycles))
                for stage in stages:
                    stage.process(state, slot)
            for stage in stages:
                stage.end_group(state)
            if replay is not None:
                replay.after_group(state)
            state.index += group.consumed

        if replay is not None:
            replay.finish_run()
        result.cycles = state.retire_cycles[-1]
        if wrong_path is not None:
            result.wrong_path_fetches = wrong_path.instructions
        if self.spans is not None:
            # Close whatever is still open on the simulated clock
            # (trace-cache residency spans of still-resident segments).
            self.spans.end_open(float(result.cycles))
        self._finish_stats(state, result)
        if accountant is not None:
            result.attribution = accountant.finish(result.cycles)
        events.emit(RUN_FINISHED, result.cycles, benchmark=benchmark,
                    label=label, instructions=n, cycles=result.cycles,
                    ipc=result.ipc,
                    mispredict_rate=result.mispredict_rate,
                    tc_instr_fraction=result.tc_instr_fraction,
                    attribution=result.attribution)
        return result

    # ------------------------------------------------------------------

    def _finish_stats(self, state: Optional[MachineState],
                      result: SimResult) -> None:
        """Let every stage fold its statistics into *result*, then
        snapshot the registry — the single source of truth — into
        ``result.telemetry``."""
        for stage in self.stages:
            stage.finish_run(state, result)
        result.telemetry = self.registry.flat()


__all__ = ["Engine"]
