"""Simulation results and statistics containers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OptCoverage:
    """Dynamic optimized-instruction coverage (the paper's Table 2):
    how many *committed* instructions were consumed from the trace
    cache in transformed form, per transformation."""

    moves: int = 0
    reassoc: int = 0
    scaled: int = 0
    any_opt: int = 0

    def as_percentages(self, total: int) -> dict:
        """Per-field percentages of *total* committed instructions.

        The key set is identical in every case: one key per counter
        field (``any_opt`` included) plus the legacy ``total`` alias
        for ``any_opt``.
        """
        if total == 0:
            return {"moves": 0.0, "reassoc": 0.0, "scaled": 0.0,
                    "any_opt": 0.0, "total": 0.0}
        return {
            "moves": 100.0 * self.moves / total,
            "reassoc": 100.0 * self.reassoc / total,
            "scaled": 100.0 * self.scaled / total,
            "any_opt": 100.0 * self.any_opt / total,
            "total": 100.0 * self.any_opt / total,
        }


@dataclass
class SimResult:
    """Everything a run produced."""

    benchmark: str
    config_label: str
    instructions: int
    cycles: int

    # Fetch
    tc_fetched_instrs: int = 0      # instructions supplied by the TC
    ic_fetched_instrs: int = 0
    tc_lookups: int = 0
    tc_hits: int = 0

    # Control flow
    cond_branches: int = 0
    mispredicts: int = 0
    promoted_fetches: int = 0       # branches consumed with static pred
    promoted_mispredicts: int = 0
    indirect_mispredicts: int = 0

    # Backend
    bypass_delayed: int = 0         # last-arriving source crossed clusters
    executed_with_sources: int = 0
    moves_eliminated: int = 0       # marked moves completed in rename

    # Dynamic predication (extension pass)
    predicated_branches: int = 0    # branches consumed in squashed form
    predication_phantoms: int = 0   # guard-false bodies issued off-path

    # Wrong-path modeling (opt-in; see repro.core.wrongpath)
    wrong_path_fetches: int = 0     # wrong-path instructions fetched

    # Memory
    dcache_hits: int = 0
    dcache_misses: int = 0
    icache_misses: int = 0
    forwarded_loads: int = 0

    # Fill unit
    segments_built: int = 0
    segments_deduped: int = 0
    pass_totals: dict = field(default_factory=dict)

    coverage: OptCoverage = field(default_factory=OptCoverage)

    # Telemetry (see repro.telemetry): the flat {scope: value} registry
    # snapshot this run produced, and the top-down cycle attribution
    # (classes sum exactly to `cycles`; empty unless a Telemetry
    # session with attribution enabled was attached to the run).
    telemetry: dict = field(default_factory=dict)
    attribution: dict = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def tc_hit_rate(self) -> float:
        return self.tc_hits / self.tc_lookups if self.tc_lookups else 0.0

    @property
    def tc_instr_fraction(self) -> float:
        """Fraction of committed instructions supplied by the TC."""
        return (self.tc_fetched_instrs / self.instructions
                if self.instructions else 0.0)

    @property
    def bypass_delayed_fraction(self) -> float:
        """Figure 7's metric: fraction of on-path instructions whose
        last-arriving source value was delayed by the bypass network."""
        return (self.bypass_delayed / self.instructions
                if self.instructions else 0.0)

    @property
    def mispredict_rate(self) -> float:
        return (self.mispredicts / self.cond_branches
                if self.cond_branches else 0.0)

    def improvement_over(self, baseline: "SimResult") -> float:
        """Percent IPC improvement relative to *baseline*."""
        if baseline.ipc == 0:
            return 0.0
        return 100.0 * (self.ipc - baseline.ipc) / baseline.ipc

    def summary(self) -> str:
        return (f"{self.benchmark:12s} [{self.config_label:14s}] "
                f"IPC={self.ipc:5.2f}  cycles={self.cycles:8d}  "
                f"instrs={self.instructions:8d}  "
                f"tc={100 * self.tc_instr_fraction:5.1f}%  "
                f"bypass={100 * self.bypass_delayed_fraction:5.1f}%")


__all__ = ["SimResult", "OptCoverage"]
