"""Simulator configuration.

``SimConfig.paper()`` reproduces the paper's machine (§3, Experimental
model); ``SimConfig.tiny()`` is a scaled-down variant for fast unit
tests. All figure/table experiments are expressed as deltas on top of
``paper()`` (which optimizations the fill unit runs, and the fill
pipeline latency).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace

from repro.branch.predictor import PredictorConfig
from repro.cache.hierarchy import HierarchyConfig
from repro.errors import ConfigError
from repro.fillunit.opts.base import OptimizationConfig
from repro.tracecache.cache import TraceCacheConfig

#: nested config dataclass per SimConfig field (serialization schema).
_NESTED_TYPES = {
    "predictor": PredictorConfig,
    "hierarchy": HierarchyConfig,
    "trace_cache": TraceCacheConfig,
    "optimizations": OptimizationConfig,
}


@dataclass
class SimConfig:
    """All machine parameters."""

    # Fetch/issue/retire widths (paper: 16-wide front and back end).
    fetch_width: int = 16
    issue_width: int = 16
    retire_width: int = 16
    #: checkpoints creatable per cycle, one per block supplied (paper: 3)
    max_blocks_per_cycle: int = 3
    #: outstanding checkpoints (checkpoint repair's storage): a new
    #: conditional branch cannot rename while this many older branches
    #: are still unresolved
    max_checkpoints: int = 32
    #: instruction-cache fetch is block-granular: one line per cycle
    ic_fetch_width: int = 8

    # Execution backend: 4 symmetric clusters of 4 universal FUs.
    num_clusters: int = 4
    cluster_size: int = 4
    rs_per_fu: int = 32
    cross_cluster_penalty: int = 1
    #: in-flight instruction window (checkpoint-repair bounded)
    window_size: int = 256

    # Control flow.
    mispredict_redirect: int = 1
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    #: charge wrong-path fetch I-cache pollution on mispredicts
    #: (requires the Program to be supplied to the run; see
    #: repro.core.wrongpath).
    model_wrong_path: bool = False

    # Memory system.
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    store_forward_window: int = 128

    # Trace cache + fill unit.
    trace_cache_enabled: bool = True
    trace_cache: TraceCacheConfig = field(default_factory=TraceCacheConfig)
    trace_packing: bool = True
    fill_latency: int = 5
    optimizations: OptimizationConfig = field(
        default_factory=OptimizationConfig)
    #: statically verify every optimized segment against its
    #: pre-optimization snapshot (see :mod:`repro.verify`); violations
    #: surface as telemetry counters and ``verify.violation`` events.
    verify_fill: bool = False
    #: with :attr:`verify_fill`, check each optimization pass in
    #: isolation so a violation names the offending pass.
    verify_each_pass: bool = False

    # Segment-level timing replay (macro-simulation).
    #: memoize trace-cache segment visits and replay their timing
    #: deltas when the full context matches (bit-identical results;
    #: see docs/architecture.md "Segment-level timing replay")
    timing_memo: bool = True
    #: memoized visit records retained before FIFO eviction
    memo_capacity: int = 8192
    #: re-simulate every Nth replay hit through the slow path and
    #: assert bit-for-bit equality with the memo (0 disables shadowing)
    replay_shadow_every: int = 0
    #: run-level capture back-off: once a full assessment window of
    #: eligible segment visits replays below this hit rate, keying and
    #: capture stop for the rest of the run (cycles are unaffected —
    #: replay never changes timing — only the memo bookkeeping cost)
    memo_breakeven: float = 0.15
    #: eligible visits per break-even assessment window (0 disables
    #: the back-off entirely)
    memo_breakeven_window: int = 1024

    def __post_init__(self) -> None:
        if self.num_clusters * self.cluster_size > self.fetch_width:
            raise ConfigError(
                "more functional units than issue slots: "
                f"{self.num_clusters}x{self.cluster_size} vs "
                f"{self.fetch_width}")
        if self.window_size < self.fetch_width:
            raise ConfigError("window smaller than one fetch group")
        if self.fill_latency < 1:
            raise ConfigError("fill latency is at least one cycle")
        if self.max_checkpoints < 1:
            raise ConfigError("need at least one checkpoint")
        if self.verify_each_pass and not self.verify_fill:
            raise ConfigError(
                "verify_each_pass requires verify_fill")
        if self.memo_capacity < 1:
            raise ConfigError("memo capacity is at least one entry")
        if self.replay_shadow_every < 0:
            raise ConfigError("replay_shadow_every cannot be negative")
        if not 0.0 <= self.memo_breakeven < 1.0:
            raise ConfigError("memo_breakeven must be in [0, 1)")
        if self.memo_breakeven_window < 0:
            raise ConfigError(
                "memo_breakeven_window cannot be negative")

    # ------------------------------------------------------------------

    @property
    def num_fus(self) -> int:
        return self.num_clusters * self.cluster_size

    @classmethod
    def paper(cls, optimizations: OptimizationConfig = None,
              fill_latency: int = 5) -> "SimConfig":
        """The paper's baseline machine, with the given fill-unit
        optimization set (none, by default: the measured baseline)."""
        opts = optimizations if optimizations is not None \
            else OptimizationConfig.none()
        return cls(optimizations=opts, fill_latency=fill_latency)

    @classmethod
    def tiny(cls, optimizations: OptimizationConfig = None) -> "SimConfig":
        """A scaled-down machine for fast unit tests: small predictor
        and caches, small window, low promotion threshold."""
        opts = optimizations if optimizations is not None \
            else OptimizationConfig.none()
        predictor = PredictorConfig().scaled(256)
        predictor.promote_threshold = 8
        hierarchy = HierarchyConfig(
            l1i_size=1024, l1d_size=4096, l2_size=65536)
        return cls(
            optimizations=opts,
            predictor=predictor,
            hierarchy=hierarchy,
            trace_cache=TraceCacheConfig(num_sets=64, assoc=4),
            window_size=64,
            fill_latency=3,
        )

    # ------------------------------------------------------------------
    # Serialization (JSON-declared sweeps, config fingerprinting)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-safe dict capturing every field, nested configs
        included. ``from_dict`` round-trips it exactly; the exec
        layer's config fingerprint is a stable hash of this form."""
        payload = asdict(self)
        # JSON has no tuples; normalize so to_dict(from_dict(json)) is
        # stable regardless of whether the data crossed a JSON hop.
        payload["predictor"]["pht_entries"] = list(
            self.predictor.pht_entries)
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "SimConfig":
        """Rebuild a :class:`SimConfig` from :meth:`to_dict` output.

        Raises:
            ConfigError: on unknown keys (typo'd sweep declarations
                must not silently fall back to defaults) or on values
                rejected by the usual construction-time validation.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown SimConfig field(s): {sorted(unknown)}")
        kwargs = dict(data)
        for name, nested_type in _NESTED_TYPES.items():
            if name not in kwargs:
                continue
            nested = dict(kwargs[name])
            extra = set(nested) - {f.name for f in fields(nested_type)}
            if extra:
                raise ConfigError(
                    f"unknown {name} field(s): {sorted(extra)}")
            if name == "predictor" and "pht_entries" in nested:
                nested["pht_entries"] = tuple(nested["pht_entries"])
            kwargs[name] = nested_type(**nested)
        return cls(**kwargs)

    def with_optimizations(self, opts: OptimizationConfig) -> "SimConfig":
        """A copy of this configuration with a different fill-unit
        optimization set (the per-figure experiment pattern)."""
        return replace(self, optimizations=opts)

    def with_fill_latency(self, latency: int) -> "SimConfig":
        return replace(self, fill_latency=latency)


__all__ = ["SimConfig"]
