"""Top-level simulation entry points.

:func:`simulate` takes an assembled program (or a pre-computed
committed trace) and a :class:`SimConfig`, runs the functional machine
to obtain the committed stream, then replays it through a fresh
:class:`PipelineModel`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.core.results import SimResult
from repro.machine.executor import DEFAULT_MAX_INSTRUCTIONS, Executor
from repro.machine.tracing import CommittedTrace
from repro.program.image import Program


class Simulator:
    """Reusable simulator facade.

    Separate runs always use fresh microarchitectural state (caches,
    predictors, trace cache); the committed trace of a program can be
    reused across configurations, which is how the experiment harness
    amortizes functional execution over many timing runs.
    """

    def __init__(self, config: SimConfig, telemetry=None) -> None:
        self.config = config
        #: optional :class:`repro.telemetry.Telemetry` session shared by
        #: every model this simulator creates (events, attribution, and
        #: a registry that accumulates across runs).
        self.telemetry = telemetry

    def trace_program(self, program: Program,
                      max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
                      ) -> CommittedTrace:
        """Run *program* functionally and return its committed trace."""
        return Executor(program).run(max_instructions)

    def run(self, program_or_trace, benchmark: str = "bench",
            label: str = "run",
            max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> SimResult:
        """Simulate and return results.

        Accepts either a :class:`Program` (functionally executed first)
        or an existing :class:`CommittedTrace`.
        """
        program = None
        if isinstance(program_or_trace, Program):
            program = program_or_trace
            trace = self.trace_program(program, max_instructions)
            if benchmark == "bench":
                benchmark = program.name
        else:
            trace = program_or_trace
        model = PipelineModel(self.config, telemetry=self.telemetry)
        return model.run(trace, benchmark=benchmark, label=label,
                         program=program)


def simulate(program_or_trace, config: Optional[SimConfig] = None,
             benchmark: str = "bench", label: str = "run",
             telemetry=None) -> SimResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    if config is None:
        config = SimConfig.paper()
    return Simulator(config, telemetry=telemetry).run(
        program_or_trace, benchmark, label)


__all__ = ["Simulator", "simulate"]
