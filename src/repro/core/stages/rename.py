"""Rename stage: in-order rename with checkpoint-repair limits.

Owns the rename unit (issue width, block limit, in-flight window) and
the checkpoint store's acquire side. Marked register moves complete
*inside* this stage — the destination mapping is copied from the
source mapping, so no reservation station or functional unit is
consumed (the paper's §4.2 mechanism).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.config import SimConfig
from repro.core.results import SimResult
from repro.core.stages.base import (
    InstrSlot,
    MachineState,
    MetricBlock,
    PipelineStage,
)
from repro.telemetry.events import CHECKPOINT_REPAIR
from repro.telemetry.registry import TelemetryRegistry

_SCOPES = {
    "checkpoint_stalls": "rename.checkpoint.stalls",
    "moves_eliminated": "rename.moves.eliminated",
}


class RenameStage(PipelineStage):
    """Assigns rename cycles; completes marked moves in-place."""

    name = "rename"

    def __init__(self, config: SimConfig, rename_unit: Any,
                 checkpoints: Any, registry: TelemetryRegistry,
                 events: Any) -> None:
        self.rename_unit = rename_unit
        self.checkpoints = checkpoints
        self.events = events
        self.window = config.window_size
        self._m = MetricBlock(registry, _SCOPES)
        self._registry = registry

    def process(self, state: MachineState, slot: InstrSlot) -> None:
        entry = slot.entry
        record = entry.record
        instr = entry.instr
        group = state.group
        assert group is not None
        fetch_cycle = group.fetch_cycle
        seq = slot.seq
        window_release = (state.retire_cycles[seq - self.window]
                          if seq >= self.window else 0)
        is_branch = bool(instr.is_cond_branch())
        slot.is_branch = is_branch
        checkpoint_free = (self.checkpoints.acquire(fetch_cycle + 1)
                           if is_branch else 0)
        if checkpoint_free > fetch_cycle + 1:
            self._m.checkpoint_stalls.add()
            self.events.emit(CHECKPOINT_REPAIR, fetch_cycle,
                             pc=record.pc if record else 0,
                             resume=checkpoint_free)
        slot.renamed = self.rename_unit.rename(
            fetch_cycle, is_branch, window_release,
            not_before=checkpoint_free)
        if entry.phantom:
            # Phantoms issue and execute downstream; nothing more here.
            return
        if instr.move_flag:
            slot.complete = self._execute_move(instr, slot.renamed,
                                               state.reg_ready)
            slot.penalized = False
            slot.executed = True
            self._m.moves_eliminated.add()

    def _execute_move(self, instr: Any, renamed: int,
                      reg_ready: List[Tuple[int, Optional[int]]]) -> int:
        """A marked register move: completed by the rename logic.

        The destination inherits the source's tag — same availability
        time, same producing cluster — and no functional unit or
        reservation station is consumed.
        """
        sources = instr.sources()
        if sources and sources[0] != 0:
            ready = reg_ready[sources[0]]
        else:
            ready = (0, None)
        dest = instr.dest()
        if dest is not None:
            reg_ready[dest] = ready
        return max(renamed, ready[0])

    def finish_run(self, state: Optional[MachineState],
                   result: SimResult) -> None:
        result.moves_eliminated = self._m.delta("moves_eliminated")
        registry = self._registry
        registry.counter("rename.window_stalls").add(
            self.rename_unit.window_stalls)
        registry.counter("rename.width_stalls").add(
            self.rename_unit.width_stalls)
        registry.counter("rename.block_limit_stalls").add(
            self.rename_unit.block_limit_stalls)


__all__ = ["RenameStage"]
