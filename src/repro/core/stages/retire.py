"""Retire stage: in-order retirement, branch resolution and recovery.

Owns the retire unit (retire-width bound), the checkpoint store's
commit side, branch-outcome accounting (including promoted and
predicated-away branches), mispredict redirect pushback on the next
fetch group, wrong-path pollution, and the per-instruction observers:
the cycle accountant, the timing hook and opt-in ``instr.retired``
events.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.config import SimConfig
from repro.core.results import SimResult
from repro.core.stages.base import (
    InstrSlot,
    MachineState,
    MetricBlock,
    PipelineStage,
)
from repro.telemetry.events import BRANCH_MISPREDICT, INSTR_RETIRED
from repro.telemetry.registry import TelemetryRegistry

_SCOPES = {
    "cond_branches": "branch.cond.seen",
    "mispredicts": "branch.cond.mispredicts",
    "promoted_fetches": "branch.promoted.fetches",
    "promoted_mispredicts": "branch.promoted.mispredicts",
    "indirect_mispredicts": "branch.indirect.mispredicts",
    "predicated_branches": "predication.branches",
}


class RetireStage(PipelineStage):
    """In-order retirement plus control-flow bookkeeping."""

    name = "retire"

    def __init__(self, config: SimConfig, retire_unit: Any,
                 checkpoints: Any, predictor: Any,
                 registry: TelemetryRegistry, events: Any,
                 extra_is_tc_miss: bool) -> None:
        self.retire_unit = retire_unit
        self.checkpoints = checkpoints
        self.predictor = predictor
        self.events = events
        self.redirect = config.mispredict_redirect
        self.extra_is_tc_miss = extra_is_tc_miss
        self._m = MetricBlock(registry, _SCOPES)

    def process(self, state: MachineState, slot: InstrSlot) -> None:
        entry = slot.entry
        if entry.phantom:
            return
        group = state.group
        assert group is not None
        record = entry.record
        instr = entry.instr
        m = self._m

        retire_cycle = self.retire_unit.retire(slot.complete)
        state.retire_cycles.append(retire_cycle)
        slot.retire_cycle = retire_cycle
        if state.accountant is not None:
            # Group-level delays are debited once, on the group's
            # first retiring instruction.
            state.accountant.on_retire(
                group.fetch_cycle, slot.complete, retire_cycle,
                recovery=group.recovery,
                fetch_extra=group.fetch_extra,
                extra_is_tc_miss=self.extra_is_tc_miss,
                serialize=group.serialize,
                bypass_penalized=slot.penalized)
            group.recovery = 0
            group.serialize = 0
            group.fetch_extra = 0
        if state.want_payload:
            payload = dict(
                seq=slot.seq, pc=record.pc, op=instr.op.value,
                fetch=group.fetch_cycle, rename=slot.renamed,
                complete=slot.complete, retire=retire_cycle,
                slot=entry.slot, from_tc=entry.from_tc,
                mispredicted=entry.mispredicted)
            if state.timing_hook is not None:
                state.timing_hook(**payload)
            if state.emit_retired:
                self.events.emit(INSTR_RETIRED, retire_cycle, **payload)

        arch_instr = record.instr
        if arch_instr.is_cond_branch():
            m.cond_branches.add()
            # The bias table keeps learning from the architected
            # branch even when the segment carries it predicated
            # away (as a NOP).
            self.predictor.record_outcome(record.pc, record.taken)
            if instr.guard is None and not instr.is_cond_branch():
                m.predicated_branches.add()
            if entry.promoted:
                m.promoted_fetches.add()
                if entry.mispredicted:
                    m.promoted_mispredicts.add()
            if entry.mispredicted:
                m.mispredicts.add()
                self.events.emit(BRANCH_MISPREDICT, slot.complete,
                                 pc=record.pc, taken=record.taken,
                                 promoted=entry.promoted,
                                 indirect=False)
        elif entry.mispredicted:
            m.indirect_mispredicts.add()
            self.events.emit(BRANCH_MISPREDICT, slot.complete,
                             pc=record.pc, taken=True,
                             promoted=False, indirect=True)

        if slot.is_branch:
            self.checkpoints.commit(slot.complete)
        if entry.mispredicted:
            resume = slot.complete + self.redirect
            if resume > group.next_fetch:
                group.recovery_bump += resume - group.next_fetch
                group.next_fetch = resume
            if state.wrong_path is not None \
                    and arch_instr.is_cond_branch():
                state.wrong_path.pollute(
                    state.wrong_path.wrong_target(record),
                    max(0, slot.complete - group.fetch_cycle))
        if instr.is_serializing():
            group.serialize_after = retire_cycle

    def finish_run(self, state: Optional[MachineState],
                   result: SimResult) -> None:
        m = self._m
        result.cond_branches = m.delta("cond_branches")
        result.mispredicts = m.delta("mispredicts")
        result.promoted_fetches = m.delta("promoted_fetches")
        result.promoted_mispredicts = m.delta("promoted_mispredicts")
        result.indirect_mispredicts = m.delta("indirect_mispredicts")
        result.predicated_branches = m.delta("predicated_branches")


__all__ = ["RetireStage"]
