"""Dynamic ineffectuality log: an observer stage for the replay engine.

Records, per committed PC, the three ineffectuality events the static
oracle (:mod:`repro.analysis.static.ineffectuality`) bounds:

* **dead write** — the register result was overwritten (or the run
  ended) before any instruction read it;
* **silent store** — the stored bytes equalled the bytes already in
  memory;
* **predictable value** — the instruction produced the same value as
  its own previous execution.

The committed-instruction records carry no data values (the timing
model never needs them), so the log replays architectural semantics
itself: it owns a private :class:`~repro.machine.state.ArchState` and
:class:`~repro.machine.memory.Memory` image of the program and applies
the pure :func:`~repro.isa.semantics.evaluate` to each committed
record — the *original* instruction, not the trace cache's transformed
copy, so the observation is identical across pipeline configurations.

Pure observer contract: the stage never touches :class:`MachineState`
timing fields, so cycle counts are bit-for-bit identical with the
stage present or absent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.results import SimResult
from repro.core.stages.base import InstrSlot, MachineState, PipelineStage
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.semantics import evaluate
from repro.machine.memory import Memory
from repro.machine.state import ArchState
from repro.machine.tracing import CommittedInstr
from repro.program.image import Program
from repro.program.loader import load_program

NUM_REGS = 32

#: a syscall's out-of-band service/argument reads ($v0, $a0), matching
#: ``repro.analysis.static.dataflow.SYSCALL_USES``.
_SYSCALL_USES = (2, 4)


def _uses(instr: Instruction) -> tuple:
    return (_SYSCALL_USES if instr.op is Op.SYSCALL
            else instr.sources())


class IneffectualityLog:
    """Replays the architectural stream and logs ineffectual PCs.

    ``sites`` maps each class name to the set of distinct PCs observed
    ineffectual at least once; ``occurrences`` counts every event.
    """

    def __init__(self, program: Program) -> None:
        self.memory = Memory()
        self.state = ArchState()
        load_program(program, self.memory, self.state)
        self.sites: Dict[str, Set[int]] = {
            "dead_write": set(), "silent_store": set(),
            "predictable": set()}
        self.occurrences: Dict[str, int] = {
            "dead_write": 0, "silent_store": 0, "predictable": 0}
        #: register -> PC of the last write not yet read (None if read)
        self._pending: List[Optional[int]] = [None] * NUM_REGS
        #: PC -> value produced by its previous execution
        self._last: Dict[int, int] = {}

    def _log(self, kind: str, pc: int) -> None:
        self.sites[kind].add(pc)
        self.occurrences[kind] += 1

    def observe(self, record: CommittedInstr) -> None:
        """Fold one committed record into the log."""
        instr = record.instr
        pc = instr.pc or 0
        pending = self._pending
        for use in _uses(instr):
            pending[use] = None
        effect = evaluate(instr, self.state.read_reg)
        value = effect.value
        if effect.mem is not None:
            mem = effect.mem
            if mem.is_store:
                old = self.memory.load(mem.addr, mem.size, False)
                if old == mem.store_value & ((1 << (8 * mem.size)) - 1):
                    self._log("silent_store", pc)
                self.memory.store(mem.addr, mem.store_value, mem.size)
            else:
                value = self.memory.load(mem.addr, mem.size, mem.signed)
        dest = effect.dest
        if dest is not None and dest != 0 and value is not None:
            prev = pending[dest]
            if prev is not None:
                self._log("dead_write", prev)
            pending[dest] = pc
            self.state.write_reg(dest, value)
            if self._last.get(pc) == value:
                self._log("predictable", pc)
            self._last[pc] = value

    def finish(self) -> None:
        """End of run: writes never read are dead."""
        for reg in range(1, NUM_REGS):
            prev = self._pending[reg]
            if prev is not None:
                self._log("dead_write", prev)
                self._pending[reg] = None


class IneffectualityLogStage(PipelineStage):
    """Engine observer stage wrapping :class:`IneffectualityLog`.

    Append to ``PipelineModel(...).stages`` after the built-in stages;
    it reads only each slot's committed record and mutates nothing in
    the machine state.
    """

    name = "ineff-log"

    def __init__(self, program: Program) -> None:
        self.log = IneffectualityLog(program)

    def process(self, state: MachineState, slot: InstrSlot) -> None:
        entry = slot.entry
        if entry.phantom or entry.record is None:
            return
        self.log.observe(entry.record)

    def finish_run(self, state: Optional[MachineState],
                   result: SimResult) -> None:
        self.log.finish()


__all__ = ["IneffectualityLog", "IneffectualityLogStage"]
