"""Stage-architecture primitives: the contract every pipeline stage
implements and the state object handed between them.

The replay engine (:class:`repro.core.engine.Engine`) owns an ordered
list of :class:`PipelineStage` objects — fetch, rename, issue,
execute, retire, fill — and drives them through one fetch group at a
time. All shared, mutable replay state lives in one explicit
:class:`MachineState` handoff object; a stage communicates with its
neighbours only through that state (plus the per-instruction
:class:`InstrSlot` it is currently advancing), never by reaching into
another stage.

Granularity contract: rename, issue, execute, retire and fill are
*per-instruction* stages — the engine runs the full stage chain over
one instruction before starting the next, which is what makes the
decomposition bit-for-bit equivalent to the original monolithic loop
(checkpoint release, rename bandwidth and retire bandwidth are
sequential resources whose interleaving is program-order-per-
instruction, not stage-major). Fetch participates at *group*
granularity through :meth:`PipelineStage.begin_group` /
:meth:`PipelineStage.end_group`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.results import SimResult
from repro.telemetry.registry import TelemetryRegistry


@dataclass
class FetchEntry:
    """One instruction of a fetch group, ready for rename."""

    record: Any             # CommittedInstr (None for phantoms)
    instr: Any              # possibly the TC's transformed copy
    slot: int               # issue slot -> functional unit
    from_tc: bool
    mispredicted: bool = False
    promoted: bool = False
    #: a predicated instruction whose guard failed on the actual path:
    #: it issues and executes (writing back its old value) but matches
    #: no committed record.
    phantom: bool = False


@dataclass
class FetchGroup:
    """One assembled fetch group plus its group-scoped delay ledger.

    ``recovery``/``serialize``/``fetch_extra`` are the front-end delay
    decomposition the cycle accountant debits once, on the group's
    first retiring instruction (the retire stage zeroes them after
    use). ``next_fetch`` is the running earliest fetch cycle for the
    *next* group; mispredict redirects and serialization drains push
    it back.
    """

    entries: List[FetchEntry] = field(default_factory=list)
    fetch_cycle: int = 0
    #: fetch delay beyond the requested cycle (I-cache miss path)
    fetch_extra: int = 0
    #: mispredict-recovery share of this group's fetch delay
    recovery: int = 0
    #: serialization-drain share of this group's fetch delay
    serialize: int = 0
    #: earliest fetch cycle of the group that follows
    next_fetch: int = 0
    #: redirect pushback accumulated by this group's mispredicts
    recovery_bump: int = 0
    #: retire cycle of the group's last serializing instruction
    serialize_after: Optional[int] = None
    #: committed-stream records this group consumed (phantoms excluded)
    consumed: int = 0
    #: the trace-cache segment this group was assembled from (None for
    #: I-cache fetches) — the replay controller's memo anchor
    segment: Optional[Any] = None


@dataclass
class InstrSlot:
    """One instruction's trip through the per-instruction stages."""

    entry: FetchEntry
    #: committed-stream sequence number at entry (== retired count)
    seq: int
    is_branch: bool = False
    renamed: int = 0
    #: set once a stage has produced the completion cycle (rename for
    #: marked moves, issue for NOPs, execute for everything else)
    executed: bool = False
    complete: int = 0
    #: last-arriving source paid the cross-cluster bypass penalty
    penalized: bool = False
    #: executing cluster (issue stage; slot-wired)
    cluster: int = 0
    #: FU issue cycle (issue stage)
    exec_start: int = 0
    #: store-data readiness, joins in the store queue (issue stage)
    data_ready: int = 0
    retire_cycle: int = 0


@dataclass
class MachineState:
    """The explicit per-cycle handoff between stages.

    Everything the monolithic loop kept in local variables lives here:
    the committed stream and the fetch cursor, the architectural
    dataflow scoreboard, retirement history (bounding the in-flight
    window), the front-end delay carried into the next group, and the
    run-scoped observers (accountant, timing hook, wrong-path model).
    """

    records: List[Any]
    n: int
    result: SimResult
    #: register -> (ready cycle, producing cluster or None)
    reg_ready: List[Tuple[int, Optional[int]]]
    retire_cycles: List[int] = field(default_factory=list)
    index: int = 0
    fetch_ready: int = 0
    #: redirect delay debited to the *next* group's fetch cycle
    pending_recovery: int = 0
    #: serialization delay debited to the *next* group's fetch cycle
    pending_serialize: int = 0
    group: Optional[FetchGroup] = None
    accountant: Optional[Any] = None
    timing_hook: Optional[Callable[..., None]] = None
    want_payload: bool = False
    emit_retired: bool = False
    wrong_path: Optional[Any] = None


class PipelineStage:
    """One composable stage of the replay engine.

    Subclasses override the hooks they need; every hook is a no-op by
    default so simple observer stages stay small. The engine calls,
    in stage-list order::

        begin_run(state)                  once per run
        begin_group(state)                once per fetch group
        process(state, slot)              once per instruction
        end_group(state)                  once per fetch group
        finish_run(state, result)         once per run

    ``finish_run`` receives ``state=None`` for an empty trace (no
    group was ever formed); stages must derive their result-counter
    contributions from their own components, not from the state.
    """

    name = "stage"

    def begin_run(self, state: MachineState) -> None:
        """Capture run-scoped configuration before the first group."""

    def begin_group(self, state: MachineState) -> None:
        """Group-granular work (the fetch stage assembles the group)."""

    def process(self, state: MachineState, slot: InstrSlot) -> None:
        """Advance one instruction through this stage."""

    def end_group(self, state: MachineState) -> None:
        """Group-granular cleanup (the fetch stage sequences the next
        group's fetch cycle)."""

    def finish_run(self, state: Optional[MachineState],
                   result: SimResult) -> None:
        """Fold this stage's statistics into *result* (and mirror any
        per-component stats into the registry)."""


class MetricBlock:
    """Cached registry handles for a stage's hot-path counters.

    A telemetry session may span several runs; start values are
    captured at construction so one engine's run reports per-run
    deltas even against a shared, accumulating registry.
    """

    def __init__(self, registry: TelemetryRegistry,
                 scopes: Dict[str, str]) -> None:
        self._scopes = scopes
        for attr, scope in scopes.items():
            setattr(self, attr, registry.counter(scope))
        self._starts = {attr: getattr(self, attr).value
                        for attr in scopes}

    def __getattr__(self, attr: str) -> Any:
        # Only reached for attrs not set in __init__; keeps mypy happy
        # about dynamic counter handles.
        raise AttributeError(attr)

    def delta(self, attr: str) -> int:
        """This run's contribution to one counter."""
        value: int = getattr(self, attr).value
        return value - self._starts[attr]


__all__ = ["FetchEntry", "FetchGroup", "InstrSlot", "MachineState",
           "PipelineStage", "MetricBlock"]
