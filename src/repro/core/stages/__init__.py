"""Composable pipeline stages (see ``docs/architecture.md``).

The engine's stage list, in order::

    FetchStage -> RenameStage -> IssueStage -> ExecuteStage
        -> RetireStage -> FillStage

Each stage implements the :class:`PipelineStage` contract and
communicates only through the :class:`MachineState` handoff object.
"""

from repro.core.stages.base import (
    FetchEntry,
    FetchGroup,
    InstrSlot,
    MachineState,
    MetricBlock,
    PipelineStage,
)
from repro.core.stages.execute import ExecuteStage
from repro.core.stages.fetch import FetchStage
from repro.core.stages.fill import FillStage
from repro.core.stages.issue import IssueStage
from repro.core.stages.rename import RenameStage
from repro.core.stages.retire import RetireStage

__all__ = [
    "FetchEntry",
    "FetchGroup",
    "InstrSlot",
    "MachineState",
    "MetricBlock",
    "PipelineStage",
    "FetchStage",
    "RenameStage",
    "IssueStage",
    "ExecuteStage",
    "RetireStage",
    "FillStage",
]
