"""Fetch stage: trace-cache-first group assembly.

Probes the trace cache (path-associative, predictor-arbitrated) and
falls back to block-granular fetch from the supporting instruction
cache. Owns the front-end sequencing: the requested fetch cycle, the
I-cache miss delay, and — in :meth:`FetchStage.end_group` — the next
group's earliest fetch cycle after this group's mispredict redirects
and serialization drains.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.config import SimConfig
from repro.core.results import SimResult
from repro.core.stages.base import (
    FetchEntry,
    FetchGroup,
    InstrSlot,
    MachineState,
    MetricBlock,
    PipelineStage,
)
from repro.telemetry.events import FETCH_MISFETCH
from repro.telemetry.registry import TelemetryRegistry

#: registry scope behind each hot-path counter this stage maintains.
_SCOPES = {
    "tc_instrs": "fetch.tc.instrs",
    "ic_instrs": "fetch.ic.instrs",
    "cov_moves": "fetch.tc.opt.moves",
    "cov_reassoc": "fetch.tc.opt.reassoc",
    "cov_scaled": "fetch.tc.opt.scaled",
    "cov_any": "fetch.tc.opt.any",
}


class FetchStage(PipelineStage):
    """Assembles fetch groups; owns predictor fetch-time training."""

    name = "fetch"

    def __init__(self, config: SimConfig, hierarchy: Any,
                 predictor: Any, trace_cache: Optional[Any],
                 fill_unit: Optional[Any],
                 registry: TelemetryRegistry, events: Any) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.trace_cache = trace_cache
        self.fill_unit = fill_unit
        self.events = events
        self._ic_line_mask = ~(config.hierarchy.l1i_line - 1)
        self._m = MetricBlock(registry, _SCOPES)
        self._group_size = registry.histogram("fetch.group.size")
        self._registry = registry

    # ==================================================================
    # Group assembly
    # ==================================================================

    def begin_group(self, state: MachineState) -> None:
        requested = state.fetch_ready
        entries, fetch_cycle, segment = self._fetch_group(
            state.records, state.index, state.fetch_ready)
        group = FetchGroup(entries=entries, fetch_cycle=fetch_cycle,
                           segment=segment)
        state.group = group
        if not entries:     # defensive; cannot happen on real traces
            return
        group.fetch_extra = fetch_cycle - requested
        group.recovery = state.pending_recovery
        group.serialize = state.pending_serialize
        group.next_fetch = fetch_cycle + 1
        group.consumed = sum(1 for e in entries if not e.phantom)
        self._group_size.observe(len(entries))

    def process(self, state: MachineState, slot: InstrSlot) -> None:
        """Per-instruction fetch-source accounting (coverage)."""
        entry = slot.entry
        if entry.phantom:
            return
        m = self._m
        if entry.from_tc:
            m.tc_instrs.add()
            instr = entry.instr
            if instr.move_flag:
                m.cov_moves.add()
            if instr.reassociated:
                m.cov_reassoc.add()
            if instr.scale is not None:
                m.cov_scaled.add()
            if (instr.move_flag or instr.reassociated
                    or instr.scale is not None):
                m.cov_any.add()
        else:
            m.ic_instrs.add()

    def end_group(self, state: MachineState) -> None:
        """Sequence the next group: serialization drains and the
        redirect pushback accumulated by the retire stage."""
        group = state.group
        assert group is not None
        serialize_bump = 0
        if group.serialize_after is not None \
                and group.serialize_after + 1 > group.next_fetch:
            serialize_bump = group.serialize_after + 1 - group.next_fetch
            group.next_fetch = group.serialize_after + 1
        state.pending_recovery = group.recovery_bump
        state.pending_serialize = serialize_bump
        state.fetch_ready = group.next_fetch

    # ------------------------------------------------------------------

    def _fetch_group(self, records: List[Any], start: int, cycle: int
                     ) -> Tuple[List[FetchEntry], int, Optional[Any]]:
        """Assemble one fetch group starting at stream index *start*.

        Returns ``(entries, fetch_cycle, segment)``; ``len(entries)``
        stream records were consumed, and *segment* is the trace-cache
        segment the group came from (None on the I-cache path).
        """
        pc = records[start].pc
        if self.trace_cache is not None:
            segment = self.trace_cache.lookup(pc, cycle,
                                              self._path_chooser)
            if segment is not None:
                # The supporting I-cache is probed in parallel with the
                # trace cache (figure 1's datapath); keep its line
                # resident so the rare TC misses do not pay a full
                # memory round trip for code that streams through the
                # TC every cycle.
                self.hierarchy.l1i.fill(pc)
                entries, fetch_cycle = self._fetch_from_segment(
                    segment, records, start, cycle)
                return entries, fetch_cycle, segment
            assert self.fill_unit is not None
            self.fill_unit.note_fetch_miss(pc)
            self.events.emit(FETCH_MISFETCH, cycle, pc=pc)
        entries, fetch_cycle = self._fetch_from_icache(records, start,
                                                       cycle)
        return entries, fetch_cycle, None

    def _path_chooser(self, segment: Any) -> int:
        """Way-selection score for path-associative lookup.

        0: the predictor disagrees with the segment's path; 1: agrees
        (promoted branches agree by construction); 2: agrees AND the
        segment is predicated — a predicated segment matches the actual
        path on *either* outcome of its converted branch, so it is
        strictly more useful than a single-path twin.
        """
        agree = 1
        for info in segment.branches:
            if not info.promoted:
                agree = int(self.predictor.predict_cond(info.pc, 0)
                            == info.direction)
                break
        if agree and any(instr.guard is not None
                         for instr in segment.instrs):
            return 2
        return agree

    def _fetch_from_segment(self, segment: Any, records: List[Any],
                            start: int, cycle: int
                            ) -> Tuple[List[FetchEntry], int]:
        """Consume the leading portion of *segment* that matches the
        actual path; all of it issues this cycle (inactive issue)."""
        entries: List[FetchEntry] = []
        branch_at = {b.index: b for b in segment.branches}
        position = 0        # unpromoted-branch predictor slot
        consumed = 0
        n = len(records)
        for logical, instr in enumerate(segment.instrs):
            stream_idx = start + consumed
            if stream_idx >= n:
                break
            record = records[stream_idx]
            if instr.pc != record.pc:
                if instr.guard is not None:
                    # Predicated instruction skipped on the actual path:
                    # it still issues (guard false, old value kept) but
                    # consumes no committed record.
                    entries.append(FetchEntry(
                        None, instr, segment.slots[logical],
                        from_tc=True, phantom=True))
                    continue
                break       # segment path diverges from the actual path
            entry = FetchEntry(record, instr, segment.slots[logical],
                               from_tc=True)
            entries.append(entry)
            consumed += 1
            if instr.is_cond_branch():
                info = branch_at.get(logical)
                if info is not None and info.promoted:
                    entry.promoted = True
                    predicted = info.direction
                else:
                    predicted = self.predictor.predict_cond(record.pc,
                                                            position)
                    self.predictor.update_cond(record.pc, position,
                                               record.taken)
                    position += 1
                entry.mispredicted = predicted != record.taken
            else:
                self._handle_unconditional(entry)
        return entries, cycle

    def _fetch_from_icache(self, records: List[Any], start: int,
                           cycle: int) -> Tuple[List[FetchEntry], int]:
        """Block-granular fetch from the supporting instruction cache."""
        pc = records[start].pc
        extra = self.hierarchy.fetch_instr(pc)
        fetch_cycle = cycle + extra
        entries: List[FetchEntry] = []
        line = pc & self._ic_line_mask
        cond_count = 0
        n = len(records)
        while (len(entries) < self.config.ic_fetch_width
               and start + len(entries) < n):
            record = records[start + len(entries)]
            instr = record.instr
            if entries:
                prev = entries[-1].record
                if record.pc != prev.pc + 4:
                    break   # previous instruction transferred control
                if record.pc & self._ic_line_mask != line:
                    break   # crossed the cache line
            if instr.is_cond_branch() and cond_count >= \
                    self.predictor.max_dynamic_branches:
                break
            entry = FetchEntry(record, instr, len(entries), from_tc=False)
            entries.append(entry)
            if instr.is_cond_branch():
                predicted = self.predictor.predict_cond(record.pc,
                                                        cond_count)
                self.predictor.update_cond(record.pc, cond_count,
                                           record.taken)
                cond_count += 1
                entry.mispredicted = predicted != record.taken
                if entry.mispredicted:
                    break
                if record.taken:
                    break   # fetch ends at a taken branch
            else:
                self._handle_unconditional(entry)
                if record.next_pc != record.pc + 4:
                    break   # taken jump/call/return ends the group
            if instr.is_serializing():
                break
        return entries, fetch_cycle

    def _handle_unconditional(self, entry: FetchEntry) -> None:
        """RAS/BTB maintenance and indirect-target checking."""
        instr = entry.instr
        record = entry.record
        if instr.is_call():
            self.predictor.note_call(record.pc + 4)
        if instr.is_indirect() or instr.is_return():
            predicted = self.predictor.predict_indirect(
                record.pc, instr.is_return())
            if predicted != record.next_pc:
                entry.mispredicted = True
            self.predictor.train_indirect(record.pc, record.next_pc)

    # ==================================================================
    # Statistics
    # ==================================================================

    def finish_run(self, state: Optional[MachineState],
                   result: SimResult) -> None:
        m = self._m
        registry = self._registry
        result.tc_fetched_instrs = m.delta("tc_instrs")
        result.ic_fetched_instrs = m.delta("ic_instrs")
        cov = result.coverage
        cov.moves = m.delta("cov_moves")
        cov.reassoc = m.delta("cov_reassoc")
        cov.scaled = m.delta("cov_scaled")
        cov.any_opt = m.delta("cov_any")

        # Per-component statistics (fresh per engine) mirrored into the
        # registry so one snapshot holds the whole machine.
        if self.trace_cache is not None:
            tc = self.trace_cache.stats
            result.tc_lookups = tc.lookups
            result.tc_hits = tc.hits
            registry.counter("fetch.tc.lookups").add(tc.lookups)
            registry.counter("fetch.tc.hits").add(tc.hits)
            registry.counter("fetch.tc.misses").add(tc.lookups - tc.hits)
            registry.counter("fetch.tc.fills").add(tc.fills)
            registry.counter("fetch.tc.refreshes").add(tc.refreshes)
            registry.counter("fetch.tc.multipath_hits").add(
                tc.multipath_hits)
            registry.counter("fetch.tc.evictions").add(tc.evictions)
            registry.counter("fetch.tc.dead_evictions").add(
                tc.dead_evictions)
            registry.gauge("fetch.tc.resident_segments").set(
                self.trace_cache.resident_segments())
        result.icache_misses = self.hierarchy.l1i.stats.misses
        registry.counter("mem.l1i.misses").add(result.icache_misses)

        pred = self.predictor.stats
        registry.counter("branch.pht.predictions").add(
            pred.cond_predictions)
        registry.counter("branch.pht.mispredicts").add(
            pred.cond_mispredicts)
        registry.counter("branch.indirect.predictions").add(
            pred.indirect_predictions)


__all__ = ["FetchStage"]
