"""Issue stage: dataflow wakeup and clustered dispatch.

Computes when each source operand is visible to the consuming cluster
(charging the cross-cluster bypass penalty), applies the reservation
station capacity bound, and claims the functional-unit issue cycle.
Issue slot *k* of a fetch group feeds functional unit *k* — the
slot-wired datapath the placement optimization exploits.

NOPs (including instructions squashed by dead-code elimination) occupy
their trace cache slot but are never dispatched to a functional unit;
they complete here at their rename cycle.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.config import SimConfig
from repro.core.results import SimResult
from repro.core.stages.base import (
    InstrSlot,
    MachineState,
    MetricBlock,
    PipelineStage,
)
from repro.isa.opcodes import OpClass
from repro.telemetry.registry import TelemetryRegistry

_SCOPES = {
    "bypass_delayed": "backend.bypass.cross_cluster",
    "exec_with_sources": "backend.exec.with_sources",
}


class IssueStage(PipelineStage):
    """Source wakeup, RS admission and FU reservation."""

    name = "issue"

    def __init__(self, config: SimConfig, fus: Any, rs: Any,
                 bypass: Any, registry: TelemetryRegistry) -> None:
        self.fus = fus
        self.rs = rs
        self.bypass = bypass
        self.cluster_size = config.cluster_size
        self._m = MetricBlock(registry, _SCOPES)
        self._registry = registry

    def process(self, state: MachineState, slot: InstrSlot) -> None:
        if slot.executed:
            return              # completed in rename (marked move)
        instr = slot.entry.instr
        if instr.opclass is OpClass.NOP:
            slot.complete = slot.renamed
            slot.penalized = False
            slot.executed = True
            return
        fu = slot.entry.slot
        cluster = fu // self.cluster_size
        slot.cluster = cluster
        bypass = self.bypass

        is_store = instr.is_store()
        roles: List[Tuple[int, str]]
        if instr.is_mem():
            addr_regs, value_reg = instr.mem_split()
            roles = [(reg, "addr") for reg in addr_regs]
            if value_reg is not None:
                roles.append((value_reg, "data"))
        else:
            roles = [(reg, "addr") for reg in instr.sources()]

        dispatch_ready = 0      # all operands (last-arriving source)
        agen_ready = 0          # address operands only (store AGEN)
        data_ready = 0          # store-data path, joins in store queue
        last_penalized = False
        saw_source = False
        reg_ready = state.reg_ready
        for reg, role in roles:
            if reg == 0:
                continue
            ready, producer_cluster = reg_ready[reg]
            effective = bypass.effective_ready(ready, producer_cluster,
                                               cluster)
            penalized = effective != ready
            saw_source = True
            if role == "data":
                if effective > data_ready:
                    data_ready = effective
            elif effective > agen_ready:
                agen_ready = effective
            if effective > dispatch_ready:
                dispatch_ready = effective
                last_penalized = penalized
            elif effective == dispatch_ready and penalized:
                last_penalized = True
        if saw_source:
            self._m.exec_with_sources.add()
            if last_penalized:
                self._m.bypass_delayed.add()

        rs_free = self.rs.admit(fu, slot.renamed)
        earliest = max(slot.renamed + 1,
                       agen_ready if is_store else dispatch_ready,
                       rs_free)
        exec_start = self.fus.reserve(fu, earliest)
        self.rs.occupy(fu, exec_start)
        slot.exec_start = exec_start
        slot.data_ready = data_ready
        slot.penalized = last_penalized

    def finish_run(self, state: Optional[MachineState],
                   result: SimResult) -> None:
        result.bypass_delayed = self._m.delta("bypass_delayed")
        result.executed_with_sources = self._m.delta("exec_with_sources")
        self._registry.counter("backend.bypass.crossings").add(
            self.bypass.crossings)


__all__ = ["IssueStage"]
