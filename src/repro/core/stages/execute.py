"""Execute stage: completion timing and dataflow writeback.

ALU operations complete at their issue cycle plus latency; loads and
stores route through the memory scheduler (no load hoists past a store
with an unknown address; store-to-load forwarding within a bounded
window). The destination's availability — cycle and producing cluster
— is published to the dataflow scoreboard here.

Phantoms (predicated instructions whose guard failed on the actual
path) execute like any instruction, architecturally writing back their
old destination value, but are counted here and consume no committed
record downstream.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.results import SimResult
from repro.core.stages.base import (
    InstrSlot,
    MachineState,
    MetricBlock,
    PipelineStage,
)
from repro.isa.opcodes import OpClass
from repro.telemetry.registry import TelemetryRegistry

_SCOPES = {
    "phantoms": "predication.phantoms",
}


class ExecuteStage(PipelineStage):
    """Completion timing against the FUs and the memory scheduler."""

    name = "execute"

    def __init__(self, memsched: Any,
                 registry: TelemetryRegistry) -> None:
        self.memsched = memsched
        self._m = MetricBlock(registry, _SCOPES)
        self._registry = registry

    def process(self, state: MachineState, slot: InstrSlot) -> None:
        entry = slot.entry
        if not slot.executed:
            instr = entry.instr
            opclass = instr.opclass
            if opclass is OpClass.LOAD:
                agen_done = slot.exec_start + 1
                complete = self.memsched.load_timing(
                    entry.record.mem_addr, agen_done)
            elif opclass is OpClass.STORE:
                agen_done = slot.exec_start + 1
                complete = self.memsched.store_timing(
                    entry.record.mem_addr, agen_done, slot.data_ready)
            else:
                complete = slot.exec_start + instr.info.latency
            dest = instr.dest()
            if dest is not None:
                state.reg_ready[dest] = (complete, slot.cluster)
            slot.complete = complete
            slot.executed = True
        if entry.phantom:
            self._m.phantoms.add()

    def finish_run(self, state: Optional[MachineState],
                   result: SimResult) -> None:
        result.predication_phantoms = self._m.delta("phantoms")
        hierarchy = self.memsched.hierarchy
        result.dcache_hits = hierarchy.l1d.stats.hits
        result.dcache_misses = hierarchy.l1d.stats.misses
        result.forwarded_loads = self.memsched.forwarded_loads
        registry = self._registry
        registry.counter("mem.l1d.hits").add(result.dcache_hits)
        registry.counter("mem.l1d.misses").add(result.dcache_misses)
        registry.counter("mem.forwarded_loads").add(
            result.forwarded_loads)


__all__ = ["ExecuteStage"]
