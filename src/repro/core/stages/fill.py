"""Fill stage: feeds the fill unit behind retirement.

Every retiring committed instruction streams into the fill unit's
collector; the fill unit segments the stream, runs the configured
optimization passes, and installs finalized segments into the trace
cache after the fill pipeline latency. Phantoms never reach it — they
correspond to no committed record.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.results import SimResult
from repro.core.stages.base import (
    InstrSlot,
    MachineState,
    PipelineStage,
)
from repro.telemetry.registry import TelemetryRegistry


class FillStage(PipelineStage):
    """Streams retired instructions into the fill unit."""

    name = "fill"

    def __init__(self, fill_unit: Optional[Any],
                 registry: TelemetryRegistry) -> None:
        self.fill_unit = fill_unit
        self._registry = registry

    def process(self, state: MachineState, slot: InstrSlot) -> None:
        if slot.entry.phantom:
            return
        if self.fill_unit is not None:
            self.fill_unit.retire(slot.entry.record, slot.retire_cycle)

    def finish_run(self, state: Optional[MachineState],
                   result: SimResult) -> None:
        if self.fill_unit is None:
            return
        result.segments_built = self.fill_unit.stats.segments_built
        result.segments_deduped = self.fill_unit.stats.segments_deduped
        result.pass_totals = self.fill_unit.pass_totals
        self._registry.counter("fillunit.instructions_collected").add(
            self.fill_unit.stats.instructions_collected)


__all__ = ["FillStage"]
