"""Rename-stage bookkeeping.

In-order rename with three structural limits: issue width (16/cycle),
checkpoints (3 conditional-branch-delimited blocks/cycle, checkpoint
repair), and the in-flight window (rename of instruction *k* waits
until instruction *k - window* has retired).

Marked register moves rename like any instruction (they consume decode
and rename bandwidth) but complete *inside* this stage: the destination
mapping is copied from the source mapping, so no reservation station or
functional unit is involved — the paper's §4.2 mechanism.
"""

from __future__ import annotations

from typing import Tuple

#: digest token for "the next request will reset this unit anyway":
#: bandwidth state strictly behind the requesting group's fetch cycle
#: is unobservable, so all such states share one key form.
_IDLE: Tuple[str] = ("idle",)


class RenameUnit:
    """Assigns each instruction its rename cycle, in program order."""

    def __init__(self, issue_width: int, max_blocks_per_cycle: int,
                 window_size: int) -> None:
        self.issue_width = issue_width
        self.max_blocks = max_blocks_per_cycle
        self.window_size = window_size
        self._cycle = 0
        self._count = 0
        self._blocks = 0
        #: [replay: counter] the three stall taxonomies are
        #: delta-captured by the replay controller, not digested
        self.window_stalls = 0
        self.block_limit_stalls = 0  # [replay: counter]
        self.width_stalls = 0        # [replay: counter]

    def rename(self, fetch_cycle: int, is_block_end: bool,
               window_release: int, not_before: int = 0) -> int:
        """Rename cycle for the next instruction in program order.

        *window_release* is the retire cycle of the instruction that
        must leave the window first (0 when the window is not full);
        *not_before* adds an external structural constraint (e.g. a
        free checkpoint).
        """
        earliest = fetch_cycle + 1
        if window_release + 1 > earliest:
            earliest = window_release + 1
            self.window_stalls += 1
        if not_before > earliest:
            earliest = not_before
        if earliest > self._cycle:
            self._cycle = earliest
            self._count = 0
            self._blocks = 0
        while (self._count >= self.issue_width
               or (is_block_end and self._blocks >= self.max_blocks)):
            if is_block_end and self._blocks >= self.max_blocks:
                self.block_limit_stalls += 1
            else:
                self.width_stalls += 1
            self._cycle += 1
            self._count = 0
            self._blocks = 0
        self._count += 1
        if is_block_end:
            self._blocks += 1
        return self._cycle

    # -- replay context surface -----------------------------------------

    def context_digest(self, base: int) -> tuple:
        """Bandwidth state relative to *base* (a group's fetch cycle).

        A group fetched at *base* renames no earlier than ``base + 1``,
        so any ``_cycle <= base`` is reset on first use and digests to
        the shared idle token; later states carry exact normalized
        cycle plus the within-cycle counters."""
        if self._cycle <= base:
            return _IDLE
        return (self._cycle - base, self._count, self._blocks)

    @staticmethod
    def shift_digest(snap: tuple, delta: int) -> tuple:
        """Re-normalize a digest taken at some base to ``base + delta``
        (*delta* >= 0, no intervening mutation): bit-identical to
        calling :meth:`context_digest` at the later base."""
        if snap is _IDLE or snap == _IDLE or snap[0] <= delta:
            return _IDLE
        return (snap[0] - delta, snap[1], snap[2])

    def restore(self, base: int, snap: tuple) -> None:
        """Install a post-visit :meth:`context_digest` snapshot (always
        the exact form: a recorded group renamed at least once past
        *base*)."""
        self._cycle = snap[0] + base
        self._count = snap[1]
        self._blocks = snap[2]


class RetireUnit:
    """In-order retirement, bounded by retire width."""

    def __init__(self, retire_width: int) -> None:
        self.retire_width = retire_width
        self._cycle = 0
        self._count = 0

    def retire(self, complete_cycle: int) -> int:
        """Retire cycle for the next instruction in program order,
        given it completed execution at *complete_cycle*."""
        earliest = complete_cycle + 1
        if earliest > self._cycle:
            self._cycle = earliest
            self._count = 0
        elif self._count >= self.retire_width:
            self._cycle += 1
            self._count = 0
        self._count += 1
        return self._cycle

    # -- replay context surface -----------------------------------------

    def context_digest(self, base: int) -> tuple:
        """Bandwidth state relative to *base*: a group fetched at
        *base* completes no instruction before ``base + 1``, so retire
        requests arrive at ``base + 2`` or later and any
        ``_cycle <= base + 1`` resets on first use (idle token)."""
        if self._cycle <= base + 1:
            return _IDLE
        return (self._cycle - base, self._count)

    @staticmethod
    def shift_digest(snap: tuple, delta: int) -> tuple:
        """Re-normalize a digest to a base *delta* cycles later (no
        intervening mutation); see :meth:`RenameUnit.shift_digest`."""
        if snap is _IDLE or snap == _IDLE or snap[0] <= delta + 1:
            return _IDLE
        return (snap[0] - delta, snap[1])

    def restore(self, base: int, snap: tuple) -> None:
        """Install a post-visit :meth:`context_digest` snapshot (exact
        form: a recorded group retired at least once past the cut)."""
        self._cycle = snap[0] + base
        self._count = snap[1]


__all__ = ["RenameUnit", "RetireUnit"]
