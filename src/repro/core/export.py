"""Result serialization: SimResult / AnalysisReport -> JSON and back.

Lets runs be archived and diffed across code versions
(``tools/compare_runs.py``), feeds external plotting, and carries the
static analyzer's reports into the CI baseline
(``tools/analysis_baseline.json``).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Optional

from repro.core.results import OptCoverage, SimResult

SCHEMA_VERSION = 1
ANALYSIS_SCHEMA_VERSION = 2
SELFAUDIT_SCHEMA_VERSION = 1


def result_to_dict(result: SimResult) -> dict:
    """A JSON-safe dict of one run's results (schema-versioned)."""
    payload = asdict(result)
    payload["schema"] = SCHEMA_VERSION
    payload["derived"] = {
        "ipc": result.ipc,
        "tc_hit_rate": result.tc_hit_rate,
        "tc_instr_fraction": result.tc_instr_fraction,
        "bypass_delayed_fraction": result.bypass_delayed_fraction,
        "mispredict_rate": result.mispredict_rate,
    }
    return payload


def result_from_dict(payload: dict) -> SimResult:
    """Rebuild a :class:`SimResult` from :func:`result_to_dict` output.

    Raises:
        ValueError: on an unknown schema version.
    """
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unknown result schema {payload.get('schema')!r}")
    data = {k: v for k, v in payload.items()
            if k not in ("schema", "derived")}
    data["coverage"] = OptCoverage(**data["coverage"])
    return SimResult(**data)


def dump_results(results: list, path: str) -> None:
    """Write a list of results to a JSON file."""
    with open(path, "w") as handle:
        json.dump([result_to_dict(r) for r in results], handle, indent=1)


def load_results(path: str) -> list:
    """Read results written by :func:`dump_results`."""
    with open(path) as handle:
        return [result_from_dict(p) for p in json.load(handle)]


def diff_results(old: SimResult, new: SimResult,
                 threshold_pct: float = 1.0) -> Optional[str]:
    """Human-readable IPC drift between two runs of the same experiment,
    or ``None`` when within *threshold_pct*.

    Raises:
        ValueError: when the runs are not the same experiment.
    """
    if (old.benchmark, old.config_label) != (new.benchmark,
                                             new.config_label):
        raise ValueError("results describe different experiments")
    if old.ipc == 0:
        return None
    drift = 100.0 * (new.ipc - old.ipc) / old.ipc
    if abs(drift) < threshold_pct:
        return None
    return (f"{old.benchmark}[{old.config_label}]: IPC "
            f"{old.ipc:.3f} -> {new.ipc:.3f} ({drift:+.1f}%)")


def analysis_to_dict(report) -> dict:
    """A JSON-safe dict of one :class:`~repro.analysis.static.report.
    AnalysisReport` (schema-versioned)."""
    payload = asdict(report)
    payload["schema"] = ANALYSIS_SCHEMA_VERSION
    payload["derived"] = {
        "static_bounds": report.static_bounds(),
        "lint_rule_counts": report.lint_rule_counts(),
        "lint_errors": len(report.lint_errors()),
        "lint_warnings": len(report.lint_warnings()),
    }
    if report.interproc is not None:
        payload["derived"]["interproc_bounds"] = \
            report.interproc.static_bounds()
        payload["derived"]["ineff_counts"] = \
            report.interproc.ineff_counts()
    return payload


def analysis_from_dict(payload: dict):
    """Rebuild an ``AnalysisReport`` from :func:`analysis_to_dict`.

    Raises:
        ValueError: on an unknown schema version.
    """
    from repro.analysis.static.lint import LintFinding
    from repro.analysis.static.report import AnalysisReport, InterprocReport
    if payload.get("schema") != ANALYSIS_SCHEMA_VERSION:
        raise ValueError(
            f"unknown analysis schema {payload.get('schema')!r}")
    data = {k: v for k, v in payload.items()
            if k not in ("schema", "derived")}
    data["lint"] = [LintFinding(**f) for f in data.get("lint", [])]
    if data.get("interproc") is not None:
        data["interproc"] = InterprocReport(**data["interproc"])
    return AnalysisReport(**data)


def selfaudit_to_dict(report) -> dict:
    """A JSON-safe dict of one :class:`~repro.analysis.selfcheck.
    report.SelfAuditReport` (schema-versioned)."""
    payload = asdict(report)
    payload["schema"] = SELFAUDIT_SCHEMA_VERSION
    payload["derived"] = {
        "rule_counts": {
            "error": report.rule_counts("error"),
            "warning": report.rule_counts("warning"),
        },
        "errors": len(report.errors()),
        "warnings": len(report.warnings()),
        "static_holes_caught": sum(
            1 for h in report.static_holes if h.caught),
        "static_holes_total": len(report.static_holes),
    }
    if report.fuzz is not None:
        payload["derived"]["fuzz_ok"] = report.fuzz.ok()
        payload["derived"]["fuzz_holes_caught"] = sum(
            1 for h in report.fuzz.holes if h.caught)
        payload["derived"]["fuzz_holes_total"] = \
            len(report.fuzz.holes)
    return payload


def selfaudit_from_dict(payload: dict):
    """Rebuild a ``SelfAuditReport`` from :func:`selfaudit_to_dict`.

    Raises:
        ValueError: on an unknown schema version.
    """
    from repro.analysis.selfcheck.findings import AuditFinding
    from repro.analysis.selfcheck.fuzz import (
        FieldResult,
        FuzzReport,
        HoleResult,
    )
    from repro.analysis.selfcheck.report import (
        ComponentSummary,
        SelfAuditReport,
        StaticHoleResult,
    )
    if payload.get("schema") != SELFAUDIT_SCHEMA_VERSION:
        raise ValueError(
            f"unknown self-audit schema {payload.get('schema')!r}")
    data = {k: v for k, v in payload.items()
            if k not in ("schema", "derived")}
    data["components"] = [ComponentSummary(**c)
                          for c in data.get("components", [])]
    data["findings"] = [AuditFinding(**f)
                        for f in data.get("findings", [])]
    data["static_holes"] = [StaticHoleResult(**h)
                            for h in data.get("static_holes", [])]
    if data.get("fuzz") is not None:
        fuzz = dict(data["fuzz"])
        fuzz["results"] = [FieldResult(**r)
                           for r in fuzz.get("results", [])]
        fuzz["holes"] = [HoleResult(**h)
                         for h in fuzz.get("holes", [])]
        data["fuzz"] = FuzzReport(**fuzz)
    return SelfAuditReport(**data)


__all__ = ["result_to_dict", "result_from_dict", "dump_results",
           "load_results", "diff_results", "SCHEMA_VERSION",
           "analysis_to_dict", "analysis_from_dict",
           "ANALYSIS_SCHEMA_VERSION",
           "selfaudit_to_dict", "selfaudit_from_dict",
           "SELFAUDIT_SCHEMA_VERSION"]
