"""Result serialization: SimResult / AnalysisReport -> JSON and back.

Lets runs be archived and diffed across code versions
(``tools/compare_runs.py``), feeds external plotting, and carries the
static analyzer's reports into the CI baseline
(``tools/analysis_baseline.json``).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Optional

from repro.core.results import OptCoverage, SimResult

SCHEMA_VERSION = 1
ANALYSIS_SCHEMA_VERSION = 2


def result_to_dict(result: SimResult) -> dict:
    """A JSON-safe dict of one run's results (schema-versioned)."""
    payload = asdict(result)
    payload["schema"] = SCHEMA_VERSION
    payload["derived"] = {
        "ipc": result.ipc,
        "tc_hit_rate": result.tc_hit_rate,
        "tc_instr_fraction": result.tc_instr_fraction,
        "bypass_delayed_fraction": result.bypass_delayed_fraction,
        "mispredict_rate": result.mispredict_rate,
    }
    return payload


def result_from_dict(payload: dict) -> SimResult:
    """Rebuild a :class:`SimResult` from :func:`result_to_dict` output.

    Raises:
        ValueError: on an unknown schema version.
    """
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unknown result schema {payload.get('schema')!r}")
    data = {k: v for k, v in payload.items()
            if k not in ("schema", "derived")}
    data["coverage"] = OptCoverage(**data["coverage"])
    return SimResult(**data)


def dump_results(results: list, path: str) -> None:
    """Write a list of results to a JSON file."""
    with open(path, "w") as handle:
        json.dump([result_to_dict(r) for r in results], handle, indent=1)


def load_results(path: str) -> list:
    """Read results written by :func:`dump_results`."""
    with open(path) as handle:
        return [result_from_dict(p) for p in json.load(handle)]


def diff_results(old: SimResult, new: SimResult,
                 threshold_pct: float = 1.0) -> Optional[str]:
    """Human-readable IPC drift between two runs of the same experiment,
    or ``None`` when within *threshold_pct*.

    Raises:
        ValueError: when the runs are not the same experiment.
    """
    if (old.benchmark, old.config_label) != (new.benchmark,
                                             new.config_label):
        raise ValueError("results describe different experiments")
    if old.ipc == 0:
        return None
    drift = 100.0 * (new.ipc - old.ipc) / old.ipc
    if abs(drift) < threshold_pct:
        return None
    return (f"{old.benchmark}[{old.config_label}]: IPC "
            f"{old.ipc:.3f} -> {new.ipc:.3f} ({drift:+.1f}%)")


def analysis_to_dict(report) -> dict:
    """A JSON-safe dict of one :class:`~repro.analysis.static.report.
    AnalysisReport` (schema-versioned)."""
    payload = asdict(report)
    payload["schema"] = ANALYSIS_SCHEMA_VERSION
    payload["derived"] = {
        "static_bounds": report.static_bounds(),
        "lint_rule_counts": report.lint_rule_counts(),
        "lint_errors": len(report.lint_errors()),
        "lint_warnings": len(report.lint_warnings()),
    }
    if report.interproc is not None:
        payload["derived"]["interproc_bounds"] = \
            report.interproc.static_bounds()
        payload["derived"]["ineff_counts"] = \
            report.interproc.ineff_counts()
    return payload


def analysis_from_dict(payload: dict):
    """Rebuild an ``AnalysisReport`` from :func:`analysis_to_dict`.

    Raises:
        ValueError: on an unknown schema version.
    """
    from repro.analysis.static.lint import LintFinding
    from repro.analysis.static.report import AnalysisReport, InterprocReport
    if payload.get("schema") != ANALYSIS_SCHEMA_VERSION:
        raise ValueError(
            f"unknown analysis schema {payload.get('schema')!r}")
    data = {k: v for k, v in payload.items()
            if k not in ("schema", "derived")}
    data["lint"] = [LintFinding(**f) for f in data.get("lint", [])]
    if data.get("interproc") is not None:
        data["interproc"] = InterprocReport(**data["interproc"])
    return AnalysisReport(**data)


__all__ = ["result_to_dict", "result_from_dict", "dump_results",
           "load_results", "diff_results", "SCHEMA_VERSION",
           "analysis_to_dict", "analysis_from_dict",
           "ANALYSIS_SCHEMA_VERSION"]
