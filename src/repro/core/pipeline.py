"""The pipeline timing model.

A committed-stream replay of the paper's machine: a 16-wide fetch
engine (trace cache + supporting instruction cache + multiple-branch
predictor), in-order rename with checkpoint limits, dataflow scheduling
onto four clusters of four pipelined functional units with a +1-cycle
cross-cluster bypass, a memory scheduler that refuses to hoist loads
past unknown store addresses, in-order retirement, and a fill unit
feeding the trace cache behind retirement.

Methodology (DESIGN.md §3): instructions are processed in committed
order; each acquires fetch, rename, execute and retire cycles subject
to structural and dataflow constraints. Mispredicted branches stall
subsequent fetch until resolution — *except* the instructions already
inside the same trace segment along the correct path, which is exactly
the inactive-issue benefit of the baseline machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.predictor import MultiBranchPredictor
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.clusters import (
    BypassNetwork,
    FunctionalUnits,
    ReservationStations,
)
from repro.core.config import SimConfig
from repro.core.memsched import MemoryScheduler
from repro.core.rename import RenameUnit, RetireUnit
from repro.core.results import SimResult
from repro.fillunit.unit import FillUnit, FillUnitConfig
from repro.isa.opcodes import OpClass
from repro.tracecache.cache import TraceCache


@dataclass
class _FetchEntry:
    """One instruction of a fetch group, ready for rename."""

    record: object          # CommittedInstr (None for phantoms)
    instr: object           # possibly the TC's transformed copy
    slot: int               # issue slot -> functional unit
    from_tc: bool
    mispredicted: bool = False
    promoted: bool = False
    #: a predicated instruction whose guard failed on the actual path:
    #: it issues and executes (writing back its old value) but matches
    #: no committed record.
    phantom: bool = False


class PipelineModel:
    """One configured machine instance; replays committed traces."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.hierarchy = MemoryHierarchy(config.hierarchy)
        self.predictor = MultiBranchPredictor(config.predictor)
        self.trace_cache = (TraceCache(config.trace_cache)
                            if config.trace_cache_enabled else None)
        self.fill_unit = None
        if self.trace_cache is not None:
            fill_config = FillUnitConfig(
                max_instrs=config.trace_cache.max_instrs,
                max_cond_branches=config.trace_cache.max_cond_branches,
                trace_packing=config.trace_packing,
                latency=config.fill_latency,
                num_clusters=config.num_clusters,
                cluster_size=config.cluster_size,
                optimizations=config.optimizations,
            )
            self.fill_unit = FillUnit(fill_config, self.trace_cache,
                                      self.predictor.bias)
        self.fus = FunctionalUnits(config.num_fus)
        self.rs = ReservationStations(config.num_fus, config.rs_per_fu)
        self.bypass = BypassNetwork(config.cluster_size,
                                    config.cross_cluster_penalty)
        self.rename_unit = RenameUnit(config.issue_width,
                                      config.max_blocks_per_cycle,
                                      config.window_size)
        from repro.core.clusters import CheckpointStore
        self.checkpoints = CheckpointStore(config.max_checkpoints)
        self.retire_unit = RetireUnit(config.retire_width)
        self.memsched = MemoryScheduler(self.hierarchy,
                                        config.store_forward_window)
        self._ic_line_mask = ~(config.hierarchy.l1i_line - 1)
        #: optional per-instruction timing callback; see
        #: :class:`repro.core.debug.TimingTrace`.
        self.timing_hook = None

    # ==================================================================
    # Fetch
    # ==================================================================

    def _fetch_group(self, records: list, start: int, cycle: int):
        """Assemble one fetch group starting at stream index *start*.

        Returns ``(entries, fetch_cycle)``; ``len(entries)`` stream
        records were consumed.
        """
        pc = records[start].pc
        if self.trace_cache is not None:
            segment = self.trace_cache.lookup(pc, cycle,
                                              self._path_chooser)
            if segment is not None:
                # The supporting I-cache is probed in parallel with the
                # trace cache (figure 1's datapath); keep its line
                # resident so the rare TC misses do not pay a full
                # memory round trip for code that streams through the
                # TC every cycle.
                self.hierarchy.l1i.fill(pc)
                return self._fetch_from_segment(segment, records, start,
                                                cycle)
            self.fill_unit.note_fetch_miss(pc)
        return self._fetch_from_icache(records, start, cycle)

    def _path_chooser(self, segment) -> int:
        """Way-selection score for path-associative lookup.

        0: the predictor disagrees with the segment's path; 1: agrees
        (promoted branches agree by construction); 2: agrees AND the
        segment is predicated — a predicated segment matches the actual
        path on *either* outcome of its converted branch, so it is
        strictly more useful than a single-path twin.
        """
        agree = 1
        for info in segment.branches:
            if not info.promoted:
                agree = int(self.predictor.predict_cond(info.pc, 0)
                            == info.direction)
                break
        if agree and any(instr.guard is not None
                         for instr in segment.instrs):
            return 2
        return agree

    def _fetch_from_segment(self, segment, records: list, start: int,
                            cycle: int):
        """Consume the leading portion of *segment* that matches the
        actual path; all of it issues this cycle (inactive issue)."""
        entries = []
        branch_at = {b.index: b for b in segment.branches}
        position = 0        # unpromoted-branch predictor slot
        consumed = 0
        n = len(records)
        for logical, instr in enumerate(segment.instrs):
            stream_idx = start + consumed
            if stream_idx >= n:
                break
            record = records[stream_idx]
            if instr.pc != record.pc:
                if instr.guard is not None:
                    # Predicated instruction skipped on the actual path:
                    # it still issues (guard false, old value kept) but
                    # consumes no committed record.
                    entries.append(_FetchEntry(
                        None, instr, segment.slots[logical],
                        from_tc=True, phantom=True))
                    continue
                break       # segment path diverges from the actual path
            entry = _FetchEntry(record, instr, segment.slots[logical],
                                from_tc=True)
            entries.append(entry)
            consumed += 1
            if instr.is_cond_branch():
                info = branch_at.get(logical)
                if info is not None and info.promoted:
                    entry.promoted = True
                    predicted = info.direction
                else:
                    predicted = self.predictor.predict_cond(record.pc,
                                                            position)
                    self.predictor.update_cond(record.pc, position,
                                               record.taken)
                    position += 1
                entry.mispredicted = predicted != record.taken
            else:
                self._handle_unconditional(entry)
        return entries, cycle

    def _fetch_from_icache(self, records: list, start: int, cycle: int):
        """Block-granular fetch from the supporting instruction cache."""
        pc = records[start].pc
        extra = self.hierarchy.fetch_instr(pc)
        fetch_cycle = cycle + extra
        entries = []
        line = pc & self._ic_line_mask
        cond_count = 0
        n = len(records)
        while (len(entries) < self.config.ic_fetch_width
               and start + len(entries) < n):
            record = records[start + len(entries)]
            instr = record.instr
            if entries:
                prev = entries[-1].record
                if record.pc != prev.pc + 4:
                    break   # previous instruction transferred control
                if record.pc & self._ic_line_mask != line:
                    break   # crossed the cache line
            if instr.is_cond_branch() and cond_count >= \
                    self.predictor.max_dynamic_branches:
                break
            entry = _FetchEntry(record, instr, len(entries), from_tc=False)
            entries.append(entry)
            if instr.is_cond_branch():
                predicted = self.predictor.predict_cond(record.pc,
                                                        cond_count)
                self.predictor.update_cond(record.pc, cond_count,
                                           record.taken)
                cond_count += 1
                entry.mispredicted = predicted != record.taken
                if entry.mispredicted:
                    break
                if record.taken:
                    break   # fetch ends at a taken branch
            else:
                self._handle_unconditional(entry)
                if record.next_pc != record.pc + 4:
                    break   # taken jump/call/return ends the group
            if instr.is_serializing():
                break
        return entries, fetch_cycle

    def _handle_unconditional(self, entry: _FetchEntry) -> None:
        """RAS/BTB maintenance and indirect-target checking."""
        instr = entry.instr
        record = entry.record
        if instr.is_call():
            self.predictor.note_call(record.pc + 4)
        if instr.is_indirect() or instr.is_return():
            predicted = self.predictor.predict_indirect(
                record.pc, instr.is_return())
            if predicted != record.next_pc:
                entry.mispredicted = True
            self.predictor.train_indirect(record.pc, record.next_pc)

    # ==================================================================
    # The replay loop
    # ==================================================================

    def run(self, trace, benchmark: str = "bench",
            label: str = "run", program=None) -> SimResult:
        """Replay *trace* (a :class:`CommittedTrace`) and return the
        per-run statistics.

        *program* (the static image) is only needed when
        ``config.model_wrong_path`` is set — wrong-path instructions
        are decoded from it.

        Raises:
            ConfigError: when wrong-path modeling is requested without
                a program image.
        """
        config = self.config
        wrong_path = None
        if config.model_wrong_path:
            if program is None:
                from repro.errors import ConfigError
                raise ConfigError(
                    "model_wrong_path requires the program image")
            from repro.core.wrongpath import WrongPathFetcher
            wrong_path = WrongPathFetcher(program, self.hierarchy,
                                          config.ic_fetch_width)
        records = trace.records
        n = len(records)
        result = SimResult(benchmark=benchmark, config_label=label,
                           instructions=n, cycles=0)
        if n == 0:
            return result

        reg_ready = [(0, None)] * 32
        retire_cycles: list = []
        window = config.window_size
        cluster_size = config.cluster_size
        redirect = config.mispredict_redirect
        coverage = result.coverage

        fetch_ready = 0
        index = 0
        while index < n:
            entries, fetch_cycle = self._fetch_group(records, index,
                                                     fetch_ready)
            if not entries:     # defensive; cannot happen on real traces
                index += 1
                continue
            group_next = fetch_cycle + 1
            serialize_after = None

            consumed_in_group = 0
            for entry in entries:
                record = entry.record
                instr = entry.instr
                seq = len(retire_cycles)
                window_release = (retire_cycles[seq - window]
                                  if seq >= window else 0)
                is_branch = instr.is_cond_branch()
                checkpoint_free = (self.checkpoints.acquire(fetch_cycle + 1)
                                   if is_branch else 0)
                renamed = self.rename_unit.rename(
                    fetch_cycle, is_branch, window_release,
                    not_before=checkpoint_free)

                if entry.phantom:
                    # Issues and executes; architecturally writes back
                    # its old destination value. No committed record.
                    self._execute(entry, renamed, reg_ready, result,
                                  cluster_size)
                    result.predication_phantoms += 1
                    continue
                consumed_in_group += 1

                if entry.from_tc:
                    result.tc_fetched_instrs += 1
                    if instr.move_flag:
                        coverage.moves += 1
                    if instr.reassociated:
                        coverage.reassoc += 1
                    if instr.scale is not None:
                        coverage.scaled += 1
                    if (instr.move_flag or instr.reassociated
                            or instr.scale is not None):
                        coverage.any_opt += 1
                else:
                    result.ic_fetched_instrs += 1

                if instr.move_flag:
                    complete = self._execute_move(instr, renamed, reg_ready)
                    result.moves_eliminated += 1
                else:
                    complete = self._execute(entry, renamed, reg_ready,
                                             result, cluster_size)

                retire_cycle = self.retire_unit.retire(complete)
                retire_cycles.append(retire_cycle)
                if self.timing_hook is not None:
                    self.timing_hook(
                        seq=seq, pc=record.pc, op=instr.op.value,
                        fetch=fetch_cycle, rename=renamed,
                        complete=complete, retire=retire_cycle,
                        slot=entry.slot, from_tc=entry.from_tc,
                        mispredicted=entry.mispredicted)

                arch_instr = record.instr
                if arch_instr.is_cond_branch():
                    result.cond_branches += 1
                    # The bias table keeps learning from the architected
                    # branch even when the segment carries it predicated
                    # away (as a NOP).
                    self.predictor.record_outcome(record.pc, record.taken)
                    if instr.guard is None and not instr.is_cond_branch():
                        result.predicated_branches += 1
                    if entry.promoted:
                        result.promoted_fetches += 1
                        if entry.mispredicted:
                            result.promoted_mispredicts += 1
                    if entry.mispredicted:
                        result.mispredicts += 1
                elif entry.mispredicted:
                    result.indirect_mispredicts += 1

                if is_branch:
                    self.checkpoints.commit(complete)
                if entry.mispredicted:
                    resume = complete + redirect
                    if resume > group_next:
                        group_next = resume
                    if wrong_path is not None \
                            and arch_instr.is_cond_branch():
                        wrong_path.pollute(
                            wrong_path.wrong_target(record),
                            max(0, complete - fetch_cycle))
                if instr.is_serializing():
                    serialize_after = retire_cycle

                if self.fill_unit is not None:
                    self.fill_unit.retire(record, retire_cycle)

            if serialize_after is not None:
                group_next = max(group_next, serialize_after + 1)
            fetch_ready = group_next
            index += consumed_in_group

        result.cycles = retire_cycles[-1]
        if wrong_path is not None:
            result.wrong_path_fetches = wrong_path.instructions
        self._finish_stats(result)
        return result

    # ==================================================================
    # Execution timing
    # ==================================================================

    def _execute_move(self, instr, renamed: int, reg_ready: list) -> int:
        """A marked register move: completed by the rename logic.

        The destination inherits the source's tag — same availability
        time, same producing cluster — and no functional unit or
        reservation station is consumed.
        """
        sources = instr.sources()
        if sources and sources[0] != 0:
            ready = reg_ready[sources[0]]
        else:
            ready = (0, None)
        dest = instr.dest()
        if dest is not None:
            reg_ready[dest] = ready
        return max(renamed, ready[0])

    def _execute(self, entry: _FetchEntry, renamed: int, reg_ready: list,
                 result: SimResult, cluster_size: int) -> int:
        """Schedule one instruction onto its functional unit; returns
        its completion cycle and updates dataflow state."""
        instr = entry.instr
        record = entry.record
        if instr.opclass is OpClass.NOP:
            # NOPs (including instructions squashed by dead-code
            # elimination) occupy their trace cache slot but are never
            # dispatched to a functional unit.
            return renamed
        fu = entry.slot
        cluster = fu // cluster_size
        bypass = self.bypass

        is_store = instr.is_store()
        if instr.is_mem():
            addr_regs, value_reg = instr.mem_split()
            roles = [(reg, "addr") for reg in addr_regs]
            if value_reg is not None:
                roles.append((value_reg, "data"))
        else:
            roles = [(reg, "addr") for reg in instr.sources()]

        dispatch_ready = 0      # all operands (last-arriving source)
        agen_ready = 0          # address operands only (store AGEN)
        data_ready = 0          # store-data path, joins in store queue
        last_penalized = False
        saw_source = False
        for reg, role in roles:
            if reg == 0:
                continue
            ready, producer_cluster = reg_ready[reg]
            effective = bypass.effective_ready(ready, producer_cluster,
                                               cluster)
            penalized = effective != ready
            saw_source = True
            if role == "data":
                if effective > data_ready:
                    data_ready = effective
            elif effective > agen_ready:
                agen_ready = effective
            if effective > dispatch_ready:
                dispatch_ready = effective
                last_penalized = penalized
            elif effective == dispatch_ready and penalized:
                last_penalized = True
        if saw_source:
            result.executed_with_sources += 1
            if last_penalized:
                result.bypass_delayed += 1

        rs_free = self.rs.admit(fu, renamed)
        earliest = max(renamed + 1,
                       agen_ready if is_store else dispatch_ready,
                       rs_free)
        exec_start = self.fus.reserve(fu, earliest)
        self.rs.occupy(fu, exec_start)

        opclass = instr.opclass
        if opclass is OpClass.LOAD:
            agen_done = exec_start + 1
            complete = self.memsched.load_timing(record.mem_addr, agen_done)
        elif opclass is OpClass.STORE:
            agen_done = exec_start + 1
            complete = self.memsched.store_timing(record.mem_addr,
                                                  agen_done, data_ready)
        else:
            complete = exec_start + instr.info.latency

        dest = instr.dest()
        if dest is not None:
            reg_ready[dest] = (complete, cluster)
        return complete

    # ==================================================================

    def _finish_stats(self, result: SimResult) -> None:
        if self.trace_cache is not None:
            result.tc_lookups = self.trace_cache.stats.lookups
            result.tc_hits = self.trace_cache.stats.hits
        if self.fill_unit is not None:
            result.segments_built = self.fill_unit.stats.segments_built
            result.segments_deduped = self.fill_unit.stats.segments_deduped
            result.pass_totals = self.fill_unit.pass_totals
        result.dcache_hits = self.hierarchy.l1d.stats.hits
        result.dcache_misses = self.hierarchy.l1d.stats.misses
        result.icache_misses = self.hierarchy.l1i.stats.misses
        result.forwarded_loads = self.memsched.forwarded_loads


__all__ = ["PipelineModel"]
