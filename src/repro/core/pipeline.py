"""The pipeline timing model.

A committed-stream replay of the paper's machine: a 16-wide fetch
engine (trace cache + supporting instruction cache + multiple-branch
predictor), in-order rename with checkpoint limits, dataflow scheduling
onto four clusters of four pipelined functional units with a +1-cycle
cross-cluster bypass, a memory scheduler that refuses to hoist loads
past unknown store addresses, in-order retirement, and a fill unit
feeding the trace cache behind retirement.

Methodology (DESIGN.md §3): instructions are processed in committed
order; each acquires fetch, rename, execute and retire cycles subject
to structural and dataflow constraints. Mispredicted branches stall
subsequent fetch until resolution — *except* the instructions already
inside the same trace segment along the correct path, which is exactly
the inactive-issue benefit of the baseline machine.

Observability: every run counts against a hierarchical telemetry
registry (the model's own, or the one of an attached
:class:`~repro.telemetry.Telemetry` session), which is the single
source of truth behind :class:`~repro.core.results.SimResult`'s
counters. With a session attached the model additionally emits
structured events (mispredicts, trace cache misfetches, checkpoint
repairs, fill-unit activity) and feeds the top-down cycle-accounting
pass; without one, those paths collapse to null-object no-ops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.predictor import MultiBranchPredictor
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.clusters import (
    BypassNetwork,
    FunctionalUnits,
    ReservationStations,
)
from repro.core.config import SimConfig
from repro.core.memsched import MemoryScheduler
from repro.core.rename import RenameUnit, RetireUnit
from repro.core.results import SimResult
from repro.fillunit.unit import FillUnit, FillUnitConfig
from repro.isa.opcodes import OpClass
from repro.telemetry.attribution import CycleAccountant
from repro.telemetry.events import (
    BRANCH_MISPREDICT,
    CHECKPOINT_REPAIR,
    FETCH_MISFETCH,
    INSTR_RETIRED,
    NULL_EVENT_STREAM,
    RUN_FINISHED,
    RUN_STARTED,
)
from repro.telemetry.registry import TelemetryRegistry
from repro.tracecache.cache import TraceCache


@dataclass
class _FetchEntry:
    """One instruction of a fetch group, ready for rename."""

    record: object          # CommittedInstr (None for phantoms)
    instr: object           # possibly the TC's transformed copy
    slot: int               # issue slot -> functional unit
    from_tc: bool
    mispredicted: bool = False
    promoted: bool = False
    #: a predicated instruction whose guard failed on the actual path:
    #: it issues and executes (writing back its old value) but matches
    #: no committed record.
    phantom: bool = False


#: registry scope behind each hot-path counter the model maintains.
_METRIC_SCOPES = {
    "tc_instrs": "fetch.tc.instrs",
    "ic_instrs": "fetch.ic.instrs",
    "cov_moves": "fetch.tc.opt.moves",
    "cov_reassoc": "fetch.tc.opt.reassoc",
    "cov_scaled": "fetch.tc.opt.scaled",
    "cov_any": "fetch.tc.opt.any",
    "cond_branches": "branch.cond.seen",
    "mispredicts": "branch.cond.mispredicts",
    "promoted_fetches": "branch.promoted.fetches",
    "promoted_mispredicts": "branch.promoted.mispredicts",
    "indirect_mispredicts": "branch.indirect.mispredicts",
    "predicated_branches": "predication.branches",
    "phantoms": "predication.phantoms",
    "moves_eliminated": "rename.moves.eliminated",
    "bypass_delayed": "backend.bypass.cross_cluster",
    "exec_with_sources": "backend.exec.with_sources",
    "checkpoint_stalls": "rename.checkpoint.stalls",
}


class _Metrics:
    """Cached registry handles for the replay loop's hot counters.

    A telemetry session may span several runs; start values are
    captured here so one model's run reports per-run deltas even
    against a shared, accumulating registry.
    """

    def __init__(self, registry: TelemetryRegistry) -> None:
        for attr, scope in _METRIC_SCOPES.items():
            setattr(self, attr, registry.counter(scope))
        self.group_size = registry.histogram("fetch.group.size")
        self._starts = {attr: getattr(self, attr).value
                        for attr in _METRIC_SCOPES}

    def delta(self, attr: str) -> int:
        return getattr(self, attr).value - self._starts[attr]


class PipelineModel:
    """One configured machine instance; replays committed traces."""

    def __init__(self, config: SimConfig, telemetry=None) -> None:
        self.config = config
        self.telemetry = telemetry
        if telemetry is not None and telemetry.enabled:
            self.registry = telemetry.registry
            self.events = telemetry.events
        else:
            # The registry stays live even without a session: it is the
            # source of truth the SimResult counters derive from.
            self.registry = TelemetryRegistry()
            self.events = NULL_EVENT_STREAM
        registry_arg = self.registry
        events_arg = self.events if self.events.enabled else None
        self.hierarchy = MemoryHierarchy(config.hierarchy)
        self.predictor = MultiBranchPredictor(config.predictor)
        self.trace_cache = (TraceCache(config.trace_cache)
                            if config.trace_cache_enabled else None)
        self.fill_unit = None
        if self.trace_cache is not None:
            self.trace_cache.events = events_arg
            fill_config = FillUnitConfig(
                max_instrs=config.trace_cache.max_instrs,
                max_cond_branches=config.trace_cache.max_cond_branches,
                trace_packing=config.trace_packing,
                latency=config.fill_latency,
                num_clusters=config.num_clusters,
                cluster_size=config.cluster_size,
                optimizations=config.optimizations,
                verify=config.verify_fill,
                verify_each=config.verify_each_pass,
            )
            self.fill_unit = FillUnit(fill_config, self.trace_cache,
                                      self.predictor.bias,
                                      registry=registry_arg,
                                      events=events_arg)
        self.fus = FunctionalUnits(config.num_fus)
        self.rs = ReservationStations(config.num_fus, config.rs_per_fu)
        self.bypass = BypassNetwork(config.cluster_size,
                                    config.cross_cluster_penalty)
        self.rename_unit = RenameUnit(config.issue_width,
                                      config.max_blocks_per_cycle,
                                      config.window_size)
        from repro.core.clusters import CheckpointStore
        self.checkpoints = CheckpointStore(config.max_checkpoints)
        self.retire_unit = RetireUnit(config.retire_width)
        self.memsched = MemoryScheduler(self.hierarchy,
                                        config.store_forward_window)
        self._ic_line_mask = ~(config.hierarchy.l1i_line - 1)
        self._m = _Metrics(self.registry)
        #: optional per-instruction timing callback; see
        #: :class:`repro.core.debug.TimingTrace`.
        self.timing_hook = None

    # ==================================================================
    # Fetch
    # ==================================================================

    def _fetch_group(self, records: list, start: int, cycle: int):
        """Assemble one fetch group starting at stream index *start*.

        Returns ``(entries, fetch_cycle)``; ``len(entries)`` stream
        records were consumed.
        """
        pc = records[start].pc
        if self.trace_cache is not None:
            segment = self.trace_cache.lookup(pc, cycle,
                                              self._path_chooser)
            if segment is not None:
                # The supporting I-cache is probed in parallel with the
                # trace cache (figure 1's datapath); keep its line
                # resident so the rare TC misses do not pay a full
                # memory round trip for code that streams through the
                # TC every cycle.
                self.hierarchy.l1i.fill(pc)
                return self._fetch_from_segment(segment, records, start,
                                                cycle)
            self.fill_unit.note_fetch_miss(pc)
            self.events.emit(FETCH_MISFETCH, cycle, pc=pc)
        return self._fetch_from_icache(records, start, cycle)

    def _path_chooser(self, segment) -> int:
        """Way-selection score for path-associative lookup.

        0: the predictor disagrees with the segment's path; 1: agrees
        (promoted branches agree by construction); 2: agrees AND the
        segment is predicated — a predicated segment matches the actual
        path on *either* outcome of its converted branch, so it is
        strictly more useful than a single-path twin.
        """
        agree = 1
        for info in segment.branches:
            if not info.promoted:
                agree = int(self.predictor.predict_cond(info.pc, 0)
                            == info.direction)
                break
        if agree and any(instr.guard is not None
                         for instr in segment.instrs):
            return 2
        return agree

    def _fetch_from_segment(self, segment, records: list, start: int,
                            cycle: int):
        """Consume the leading portion of *segment* that matches the
        actual path; all of it issues this cycle (inactive issue)."""
        entries = []
        branch_at = {b.index: b for b in segment.branches}
        position = 0        # unpromoted-branch predictor slot
        consumed = 0
        n = len(records)
        for logical, instr in enumerate(segment.instrs):
            stream_idx = start + consumed
            if stream_idx >= n:
                break
            record = records[stream_idx]
            if instr.pc != record.pc:
                if instr.guard is not None:
                    # Predicated instruction skipped on the actual path:
                    # it still issues (guard false, old value kept) but
                    # consumes no committed record.
                    entries.append(_FetchEntry(
                        None, instr, segment.slots[logical],
                        from_tc=True, phantom=True))
                    continue
                break       # segment path diverges from the actual path
            entry = _FetchEntry(record, instr, segment.slots[logical],
                                from_tc=True)
            entries.append(entry)
            consumed += 1
            if instr.is_cond_branch():
                info = branch_at.get(logical)
                if info is not None and info.promoted:
                    entry.promoted = True
                    predicted = info.direction
                else:
                    predicted = self.predictor.predict_cond(record.pc,
                                                            position)
                    self.predictor.update_cond(record.pc, position,
                                               record.taken)
                    position += 1
                entry.mispredicted = predicted != record.taken
            else:
                self._handle_unconditional(entry)
        return entries, cycle

    def _fetch_from_icache(self, records: list, start: int, cycle: int):
        """Block-granular fetch from the supporting instruction cache."""
        pc = records[start].pc
        extra = self.hierarchy.fetch_instr(pc)
        fetch_cycle = cycle + extra
        entries = []
        line = pc & self._ic_line_mask
        cond_count = 0
        n = len(records)
        while (len(entries) < self.config.ic_fetch_width
               and start + len(entries) < n):
            record = records[start + len(entries)]
            instr = record.instr
            if entries:
                prev = entries[-1].record
                if record.pc != prev.pc + 4:
                    break   # previous instruction transferred control
                if record.pc & self._ic_line_mask != line:
                    break   # crossed the cache line
            if instr.is_cond_branch() and cond_count >= \
                    self.predictor.max_dynamic_branches:
                break
            entry = _FetchEntry(record, instr, len(entries), from_tc=False)
            entries.append(entry)
            if instr.is_cond_branch():
                predicted = self.predictor.predict_cond(record.pc,
                                                        cond_count)
                self.predictor.update_cond(record.pc, cond_count,
                                           record.taken)
                cond_count += 1
                entry.mispredicted = predicted != record.taken
                if entry.mispredicted:
                    break
                if record.taken:
                    break   # fetch ends at a taken branch
            else:
                self._handle_unconditional(entry)
                if record.next_pc != record.pc + 4:
                    break   # taken jump/call/return ends the group
            if instr.is_serializing():
                break
        return entries, fetch_cycle

    def _handle_unconditional(self, entry: _FetchEntry) -> None:
        """RAS/BTB maintenance and indirect-target checking."""
        instr = entry.instr
        record = entry.record
        if instr.is_call():
            self.predictor.note_call(record.pc + 4)
        if instr.is_indirect() or instr.is_return():
            predicted = self.predictor.predict_indirect(
                record.pc, instr.is_return())
            if predicted != record.next_pc:
                entry.mispredicted = True
            self.predictor.train_indirect(record.pc, record.next_pc)

    # ==================================================================
    # The replay loop
    # ==================================================================

    def run(self, trace, benchmark: str = "bench",
            label: str = "run", program=None) -> SimResult:
        """Replay *trace* (a :class:`CommittedTrace`) and return the
        per-run statistics.

        *program* (the static image) is only needed when
        ``config.model_wrong_path`` is set — wrong-path instructions
        are decoded from it.

        Raises:
            ConfigError: when wrong-path modeling is requested without
                a program image.
        """
        config = self.config
        wrong_path = None
        if config.model_wrong_path:
            if program is None:
                from repro.errors import ConfigError
                raise ConfigError(
                    "model_wrong_path requires the program image")
            from repro.core.wrongpath import WrongPathFetcher
            wrong_path = WrongPathFetcher(program, self.hierarchy,
                                          config.ic_fetch_width)
        records = trace.records
        n = len(records)
        result = SimResult(benchmark=benchmark, config_label=label,
                           instructions=n, cycles=0)
        events = self.events
        events.emit(RUN_STARTED, 0, benchmark=benchmark, label=label,
                    instructions=n)
        if n == 0:
            self._finish_stats(result)
            events.emit(RUN_FINISHED, 0, benchmark=benchmark,
                        label=label, instructions=0, cycles=0, ipc=0.0)
            return result

        m = self._m
        accountant = None
        if self.telemetry is not None and self.telemetry.attribution:
            accountant = CycleAccountant(config.cross_cluster_penalty)
        hook = self.timing_hook
        want_payload = (hook is not None) or events.wants_instr_timing
        emit_retired = events.wants_instr_timing

        reg_ready = [(0, None)] * 32
        retire_cycles: list = []
        window = config.window_size
        cluster_size = config.cluster_size
        redirect = config.mispredict_redirect

        fetch_ready = 0
        index = 0
        # Front-end delay decomposition of the *next* group's fetch
        # cycle, for the cycle-accounting pass: how much of it is
        # mispredict redirect vs serialization drain.
        pending_recovery = 0
        pending_serialize = 0
        while index < n:
            requested = fetch_ready
            entries, fetch_cycle = self._fetch_group(records, index,
                                                     fetch_ready)
            if not entries:     # defensive; cannot happen on real traces
                index += 1
                continue
            fetch_extra = fetch_cycle - requested
            group_recovery = pending_recovery
            group_serialize = pending_serialize
            m.group_size.observe(len(entries))
            group_next = fetch_cycle + 1
            recovery_bump = 0
            serialize_after = None

            consumed_in_group = 0
            for entry in entries:
                record = entry.record
                instr = entry.instr
                seq = len(retire_cycles)
                window_release = (retire_cycles[seq - window]
                                  if seq >= window else 0)
                is_branch = instr.is_cond_branch()
                checkpoint_free = (self.checkpoints.acquire(fetch_cycle + 1)
                                   if is_branch else 0)
                if checkpoint_free > fetch_cycle + 1:
                    m.checkpoint_stalls.add()
                    events.emit(CHECKPOINT_REPAIR, fetch_cycle,
                                pc=record.pc if record else 0,
                                resume=checkpoint_free)
                renamed = self.rename_unit.rename(
                    fetch_cycle, is_branch, window_release,
                    not_before=checkpoint_free)

                if entry.phantom:
                    # Issues and executes; architecturally writes back
                    # its old destination value. No committed record.
                    self._execute(entry, renamed, reg_ready, cluster_size)
                    m.phantoms.add()
                    continue
                consumed_in_group += 1

                if entry.from_tc:
                    m.tc_instrs.add()
                    if instr.move_flag:
                        m.cov_moves.add()
                    if instr.reassociated:
                        m.cov_reassoc.add()
                    if instr.scale is not None:
                        m.cov_scaled.add()
                    if (instr.move_flag or instr.reassociated
                            or instr.scale is not None):
                        m.cov_any.add()
                else:
                    m.ic_instrs.add()

                if instr.move_flag:
                    complete = self._execute_move(instr, renamed, reg_ready)
                    penalized = False
                    m.moves_eliminated.add()
                else:
                    complete, penalized = self._execute(
                        entry, renamed, reg_ready, cluster_size)

                retire_cycle = self.retire_unit.retire(complete)
                retire_cycles.append(retire_cycle)
                if accountant is not None:
                    # Group-level delays are debited once, on the
                    # group's first retiring instruction.
                    accountant.on_retire(
                        fetch_cycle, complete, retire_cycle,
                        recovery=group_recovery,
                        fetch_extra=fetch_extra,
                        extra_is_tc_miss=self.trace_cache is not None,
                        serialize=group_serialize,
                        bypass_penalized=penalized)
                    group_recovery = 0
                    group_serialize = 0
                    fetch_extra = 0
                if want_payload:
                    payload = dict(
                        seq=seq, pc=record.pc, op=instr.op.value,
                        fetch=fetch_cycle, rename=renamed,
                        complete=complete, retire=retire_cycle,
                        slot=entry.slot, from_tc=entry.from_tc,
                        mispredicted=entry.mispredicted)
                    if hook is not None:
                        hook(**payload)
                    if emit_retired:
                        events.emit(INSTR_RETIRED, retire_cycle,
                                    **payload)

                arch_instr = record.instr
                if arch_instr.is_cond_branch():
                    m.cond_branches.add()
                    # The bias table keeps learning from the architected
                    # branch even when the segment carries it predicated
                    # away (as a NOP).
                    self.predictor.record_outcome(record.pc, record.taken)
                    if instr.guard is None and not instr.is_cond_branch():
                        m.predicated_branches.add()
                    if entry.promoted:
                        m.promoted_fetches.add()
                        if entry.mispredicted:
                            m.promoted_mispredicts.add()
                    if entry.mispredicted:
                        m.mispredicts.add()
                        events.emit(BRANCH_MISPREDICT, complete,
                                    pc=record.pc, taken=record.taken,
                                    promoted=entry.promoted,
                                    indirect=False)
                elif entry.mispredicted:
                    m.indirect_mispredicts.add()
                    events.emit(BRANCH_MISPREDICT, complete,
                                pc=record.pc, taken=True,
                                promoted=False, indirect=True)

                if is_branch:
                    self.checkpoints.commit(complete)
                if entry.mispredicted:
                    resume = complete + redirect
                    if resume > group_next:
                        recovery_bump += resume - group_next
                        group_next = resume
                    if wrong_path is not None \
                            and arch_instr.is_cond_branch():
                        wrong_path.pollute(
                            wrong_path.wrong_target(record),
                            max(0, complete - fetch_cycle))
                if instr.is_serializing():
                    serialize_after = retire_cycle

                if self.fill_unit is not None:
                    self.fill_unit.retire(record, retire_cycle)

            serialize_bump = 0
            if serialize_after is not None \
                    and serialize_after + 1 > group_next:
                serialize_bump = serialize_after + 1 - group_next
                group_next = serialize_after + 1
            pending_recovery = recovery_bump
            pending_serialize = serialize_bump
            fetch_ready = group_next
            index += consumed_in_group

        result.cycles = retire_cycles[-1]
        if wrong_path is not None:
            result.wrong_path_fetches = wrong_path.instructions
        self._finish_stats(result)
        if accountant is not None:
            result.attribution = accountant.finish(result.cycles)
        events.emit(RUN_FINISHED, result.cycles, benchmark=benchmark,
                    label=label, instructions=n, cycles=result.cycles,
                    ipc=result.ipc,
                    mispredict_rate=result.mispredict_rate,
                    tc_instr_fraction=result.tc_instr_fraction,
                    attribution=result.attribution)
        return result

    # ==================================================================
    # Execution timing
    # ==================================================================

    def _execute_move(self, instr, renamed: int, reg_ready: list) -> int:
        """A marked register move: completed by the rename logic.

        The destination inherits the source's tag — same availability
        time, same producing cluster — and no functional unit or
        reservation station is consumed.
        """
        sources = instr.sources()
        if sources and sources[0] != 0:
            ready = reg_ready[sources[0]]
        else:
            ready = (0, None)
        dest = instr.dest()
        if dest is not None:
            reg_ready[dest] = ready
        return max(renamed, ready[0])

    def _execute(self, entry: _FetchEntry, renamed: int, reg_ready: list,
                 cluster_size: int):
        """Schedule one instruction onto its functional unit; returns
        ``(completion cycle, last-source-bypass-penalized)`` and
        updates dataflow state."""
        instr = entry.instr
        record = entry.record
        if instr.opclass is OpClass.NOP:
            # NOPs (including instructions squashed by dead-code
            # elimination) occupy their trace cache slot but are never
            # dispatched to a functional unit.
            return renamed, False
        fu = entry.slot
        cluster = fu // cluster_size
        bypass = self.bypass

        is_store = instr.is_store()
        if instr.is_mem():
            addr_regs, value_reg = instr.mem_split()
            roles = [(reg, "addr") for reg in addr_regs]
            if value_reg is not None:
                roles.append((value_reg, "data"))
        else:
            roles = [(reg, "addr") for reg in instr.sources()]

        dispatch_ready = 0      # all operands (last-arriving source)
        agen_ready = 0          # address operands only (store AGEN)
        data_ready = 0          # store-data path, joins in store queue
        last_penalized = False
        saw_source = False
        for reg, role in roles:
            if reg == 0:
                continue
            ready, producer_cluster = reg_ready[reg]
            effective = bypass.effective_ready(ready, producer_cluster,
                                               cluster)
            penalized = effective != ready
            saw_source = True
            if role == "data":
                if effective > data_ready:
                    data_ready = effective
            elif effective > agen_ready:
                agen_ready = effective
            if effective > dispatch_ready:
                dispatch_ready = effective
                last_penalized = penalized
            elif effective == dispatch_ready and penalized:
                last_penalized = True
        if saw_source:
            self._m.exec_with_sources.add()
            if last_penalized:
                self._m.bypass_delayed.add()

        rs_free = self.rs.admit(fu, renamed)
        earliest = max(renamed + 1,
                       agen_ready if is_store else dispatch_ready,
                       rs_free)
        exec_start = self.fus.reserve(fu, earliest)
        self.rs.occupy(fu, exec_start)

        opclass = instr.opclass
        if opclass is OpClass.LOAD:
            agen_done = exec_start + 1
            complete = self.memsched.load_timing(record.mem_addr, agen_done)
        elif opclass is OpClass.STORE:
            agen_done = exec_start + 1
            complete = self.memsched.store_timing(record.mem_addr,
                                                  agen_done, data_ready)
        else:
            complete = exec_start + instr.info.latency

        dest = instr.dest()
        if dest is not None:
            reg_ready[dest] = (complete, cluster)
        return complete, last_penalized

    # ==================================================================

    def _finish_stats(self, result: SimResult) -> None:
        """Derive the result's counters from the telemetry registry and
        mirror the per-component statistics into it."""
        m = self._m
        registry = self.registry
        result.tc_fetched_instrs = m.delta("tc_instrs")
        result.ic_fetched_instrs = m.delta("ic_instrs")
        result.cond_branches = m.delta("cond_branches")
        result.mispredicts = m.delta("mispredicts")
        result.promoted_fetches = m.delta("promoted_fetches")
        result.promoted_mispredicts = m.delta("promoted_mispredicts")
        result.indirect_mispredicts = m.delta("indirect_mispredicts")
        result.predicated_branches = m.delta("predicated_branches")
        result.predication_phantoms = m.delta("phantoms")
        result.moves_eliminated = m.delta("moves_eliminated")
        result.bypass_delayed = m.delta("bypass_delayed")
        result.executed_with_sources = m.delta("exec_with_sources")
        cov = result.coverage
        cov.moves = m.delta("cov_moves")
        cov.reassoc = m.delta("cov_reassoc")
        cov.scaled = m.delta("cov_scaled")
        cov.any_opt = m.delta("cov_any")

        # Per-component statistics (fresh per model) mirrored into the
        # registry so one snapshot holds the whole machine.
        if self.trace_cache is not None:
            tc = self.trace_cache.stats
            result.tc_lookups = tc.lookups
            result.tc_hits = tc.hits
            registry.counter("fetch.tc.lookups").add(tc.lookups)
            registry.counter("fetch.tc.hits").add(tc.hits)
            registry.counter("fetch.tc.misses").add(tc.lookups - tc.hits)
            registry.counter("fetch.tc.fills").add(tc.fills)
            registry.counter("fetch.tc.refreshes").add(tc.refreshes)
            registry.counter("fetch.tc.multipath_hits").add(
                tc.multipath_hits)
            registry.gauge("fetch.tc.resident_segments").set(
                self.trace_cache.resident_segments())
        if self.fill_unit is not None:
            result.segments_built = self.fill_unit.stats.segments_built
            result.segments_deduped = self.fill_unit.stats.segments_deduped
            result.pass_totals = self.fill_unit.pass_totals
            registry.counter("fillunit.instructions_collected").add(
                self.fill_unit.stats.instructions_collected)
        result.dcache_hits = self.hierarchy.l1d.stats.hits
        result.dcache_misses = self.hierarchy.l1d.stats.misses
        result.icache_misses = self.hierarchy.l1i.stats.misses
        result.forwarded_loads = self.memsched.forwarded_loads
        registry.counter("mem.l1d.hits").add(result.dcache_hits)
        registry.counter("mem.l1d.misses").add(result.dcache_misses)
        registry.counter("mem.l1i.misses").add(result.icache_misses)
        registry.counter("mem.forwarded_loads").add(result.forwarded_loads)

        pred = self.predictor.stats
        registry.counter("branch.pht.predictions").add(
            pred.cond_predictions)
        registry.counter("branch.pht.mispredicts").add(
            pred.cond_mispredicts)
        registry.counter("branch.indirect.predictions").add(
            pred.indirect_predictions)
        registry.counter("rename.window_stalls").add(
            self.rename_unit.window_stalls)
        registry.counter("rename.width_stalls").add(
            self.rename_unit.width_stalls)
        registry.counter("rename.block_limit_stalls").add(
            self.rename_unit.block_limit_stalls)
        registry.counter("backend.bypass.crossings").add(
            self.bypass.crossings)

        result.telemetry = registry.flat()


__all__ = ["PipelineModel"]
