"""Back-compatible entry point for the pipeline timing model.

The monolithic ``PipelineModel`` was decomposed into composable stage
objects driven by :class:`repro.core.engine.Engine` (see
``docs/architecture.md``): fetch, rename, issue, execute, retire and
fill stages behind the :class:`repro.core.stages.base.PipelineStage`
contract, with an explicit :class:`repro.core.stages.base.MachineState`
handoff.

``PipelineModel`` remains the stable name existing callers and tests
construct — it *is* the engine, with the machine's components
(``predictor``, ``trace_cache``, ``fill_unit``, ``checkpoints``, …)
and the ``timing_hook`` attachment point exposed exactly as before,
and is bit-for-bit equivalent to the pre-refactor model.
"""

from __future__ import annotations

from repro.core.engine import Engine
from repro.core.stages.base import FetchEntry

#: historical private name, kept for any external pickles/tooling.
_FetchEntry = FetchEntry


class PipelineModel(Engine):
    """One configured machine instance; replays committed traces.

    A thin alias of :class:`~repro.core.engine.Engine` — construction
    signature, ``run()`` and all component attributes are identical.
    """


__all__ = ["PipelineModel"]
