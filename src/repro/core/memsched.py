"""Memory scheduler.

The paper's rule: "The memory scheduler waits for addresses to be
generated before scheduling memory operations. No memory operation can
bypass a store with an unknown address." The replay model tracks the
running maximum of store address-generation completion times; a load
may not access the cache before every earlier store's address is known.

Store-to-load forwarding is modelled at word granularity within a
bounded window: a load hitting a recently completed store receives the
value from the store queue at the store's data-ready time instead of
paying the cache path.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.cache.hierarchy import MemoryHierarchy

#: forwarding-window entries older than this can never fire again for
#: a group fetched at ``base`` (loads start at ``base + 3`` at the
#: earliest), so the replay digest folds them into one "stale" token.
_OLD = "old"


class MemoryScheduler:
    """Load/store timing against the data-cache hierarchy."""

    def __init__(self, hierarchy: MemoryHierarchy,
                 forward_window: int = 128) -> None:
        self.hierarchy = hierarchy
        self.forward_window = forward_window
        self._all_store_addrs_known = 0
        self._forward: Dict[int, int] = {}  # word addr -> data-ready
        #: [replay: counter] traffic counters, delta-captured by
        #: the replay controller's attribute cells
        self.loads = 0
        self.stores = 0              # [replay: counter]
        self.forwarded_loads = 0     # [replay: counter]
        #: [replay: counter] delayed by an unknown store address
        self.blocked_loads = 0

    # ------------------------------------------------------------------

    def load_timing(self, addr: int, agen_done: int) -> int:
        """Cycle the loaded value becomes available."""
        self.loads += 1
        start = agen_done
        if start < self._all_store_addrs_known:
            start = self._all_store_addrs_known
            self.blocked_loads += 1
        word = addr & ~3
        forwarded = self._forward.get(word)
        if forwarded is not None and \
                forwarded + self.forward_window >= start:
            self.forwarded_loads += 1
            # The line is referenced either way (the access is issued
            # before the forward is recognized in this simple model).
            self.hierarchy.load(addr)
            return max(start + 1, forwarded)
        extra = self.hierarchy.load(addr)
        return start + 1 + extra

    def store_timing(self, addr: int, agen_done: int,
                     data_ready: int) -> int:
        """Cycle the store is retirement-complete (address and data
        both known). Updates the scheduler's address-known horizon and
        the forwarding window."""
        self.stores += 1
        if agen_done > self._all_store_addrs_known:
            self._all_store_addrs_known = agen_done
        done = max(agen_done, data_ready)
        word = addr & ~3
        self._forward[word] = done
        if len(self._forward) > 4096:
            self._prune(done)
        self.hierarchy.store(addr)
        return done

    def _prune(self, now: int) -> None:
        horizon = now - self.forward_window
        self._forward = {w: t for w, t in self._forward.items()
                         if t >= horizon}

    # -- replay context surface -----------------------------------------

    def forward_entries(self) -> int:
        """Current size of the forwarding window (replay controller's
        bypass guard: near the size-triggered :meth:`_prune` threshold
        the controller falls back to the slow path, because that prune
        keys off absolute cycle numbers)."""
        return len(self._forward)

    def context_digest(self, base: int,
                       load_words: Iterable[int]) -> tuple:
        """Scheduler state relative to *base* (a group's fetch cycle),
        restricted to what the group can observe.

        The address-known horizon is clamped to zero at *base*: every
        load in the group starts at ``base + 3`` or later (agen needs
        at least fetch + rename + one execute cycle), so a horizon at
        or below *base* never blocks it. A forwarding entry for one of
        the group's *load_words* digests to its exact normalized
        data-ready cycle unless it can no longer fire for any load
        starting at ``base + 3`` or later (``t + window < base + 3``),
        in which case it merges with "absent" into the shared stale
        token — both behave identically (cache path taken).
        Words the group never loads from are omitted entirely.
        """
        horizon = max(self._all_store_addrs_known - base, 0)
        stale_cut = base + 2 - self.forward_window
        words = []
        for word in load_words:
            ready = self._forward.get(word)
            if ready is None or ready <= stale_cut:
                words.append(_OLD)
            else:
                words.append(ready - base)
        return (horizon, tuple(words))

    def capture_delta(self, base: int,
                      store_words: Iterable[int]) -> tuple:
        """Post-visit effects relative to *base*: the new horizon (or
        ``None`` when the visit left it at or below *base*, i.e.
        unchanged as far as any future group can tell) and the exact
        data-ready cycle of every word the visit stored to (store
        completion is always past *base*, so these are exact)."""
        horizon = self._all_store_addrs_known
        return (horizon - base if horizon > base else None,
                tuple((w, self._forward[w] - base) for w in store_words))

    def apply_delta(self, base: int, delta: tuple) -> None:
        """Apply a :meth:`capture_delta` record at a new *base*."""
        horizon, words = delta
        if horizon is not None:
            self._all_store_addrs_known = horizon + base
        for word, ready in words:
            self._forward[word] = ready + base

    def prune_stale(self, before: int) -> None:
        """Drop forwarding entries that cannot fire for any group
        fetched at *before* or later (see :meth:`context_digest`'s
        stale cut). Called once per fetch group by the replay
        controller when the window grows large; keeps digests small
        and pre-empts the size-triggered :meth:`_prune` (whose floor
        depends on absolute cycle numbers)."""
        if len(self._forward) <= 2048:
            return
        cut = before + 2 - self.forward_window
        self._forward = {w: t for w, t in self._forward.items()
                         if t > cut}


__all__ = ["MemoryScheduler"]
