"""Memory scheduler.

The paper's rule: "The memory scheduler waits for addresses to be
generated before scheduling memory operations. No memory operation can
bypass a store with an unknown address." The replay model tracks the
running maximum of store address-generation completion times; a load
may not access the cache before every earlier store's address is known.

Store-to-load forwarding is modelled at word granularity within a
bounded window: a load hitting a recently completed store receives the
value from the store queue at the store's data-ready time instead of
paying the cache path.
"""

from __future__ import annotations

from repro.cache.hierarchy import MemoryHierarchy


class MemoryScheduler:
    """Load/store timing against the data-cache hierarchy."""

    def __init__(self, hierarchy: MemoryHierarchy,
                 forward_window: int = 128) -> None:
        self.hierarchy = hierarchy
        self.forward_window = forward_window
        self._all_store_addrs_known = 0
        self._forward: dict = {}    # word address -> data-ready cycle
        self.loads = 0
        self.stores = 0
        self.forwarded_loads = 0
        self.blocked_loads = 0      # delayed by an unknown store address

    # ------------------------------------------------------------------

    def load_timing(self, addr: int, agen_done: int) -> int:
        """Cycle the loaded value becomes available."""
        self.loads += 1
        start = agen_done
        if start < self._all_store_addrs_known:
            start = self._all_store_addrs_known
            self.blocked_loads += 1
        word = addr & ~3
        forwarded = self._forward.get(word)
        if forwarded is not None and \
                forwarded + self.forward_window >= start:
            self.forwarded_loads += 1
            # The line is referenced either way (the access is issued
            # before the forward is recognized in this simple model).
            self.hierarchy.load(addr)
            return max(start + 1, forwarded)
        extra = self.hierarchy.load(addr)
        return start + 1 + extra

    def store_timing(self, addr: int, agen_done: int,
                     data_ready: int) -> int:
        """Cycle the store is retirement-complete (address and data
        both known). Updates the scheduler's address-known horizon and
        the forwarding window."""
        self.stores += 1
        if agen_done > self._all_store_addrs_known:
            self._all_store_addrs_known = agen_done
        done = max(agen_done, data_ready)
        word = addr & ~3
        self._forward[word] = done
        if len(self._forward) > 4096:
            self._prune(done)
        self.hierarchy.store(addr)
        return done

    def _prune(self, now: int) -> None:
        horizon = now - self.forward_window
        self._forward = {w: t for w, t in self._forward.items()
                         if t >= horizon}


__all__ = ["MemoryScheduler"]
