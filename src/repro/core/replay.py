"""Segment-level timing replay: the memoized macro-simulation layer.

A trace-cache hit re-executes the same finalized segment over and over
(the paper's premise: hot loops dominate reuse), and on most of those
visits the *entire timing context* — every machine resource the visit
can observe — is identical to an earlier visit. The replay controller
detects that with a hashable context key, and replays the earlier
visit's recorded timing delta instead of driving the six pipeline
stages instruction by instruction. Any context mismatch falls back to
the slow path, which re-records; results are bit-for-bit identical
with the memo on or off.

Soundness rests on three pillars (docs/architecture.md, "Segment-level
timing replay", carries the full argument):

1. **Normalization.** Every cycle number in keys and deltas is stored
   relative to the group's fetch cycle *B*. A group fetched at *B*
   claims no resource before ``B + 1`` (rename) / ``B + 2``
   (issue/retire/checkpoints) / ``B + 3`` (memory), so state strictly
   below those horizons is *unobservable* and is excluded from the
   digests (the ``_DIGEST_SLACK`` cut in :mod:`repro.core.clusters`,
   the idle tokens in :mod:`repro.core.rename`, the stale merges in
   :mod:`repro.core.memsched`). Two states with equal digests are
   indistinguishable to the visit.
2. **Completeness.** The key covers everything the memoized region
   reads: the segment identity (``memo_token`` — rebuilt segments get
   fresh tokens, so stale entries can never alias), the per-entry
   outcome codes (mispredict/promotion/phantom pattern and memory
   addresses, which the live fetch stage just recomputed), the
   dataflow scoreboard, the retire-window history slice, rename/
   retire/checkpoint/FU/RS occupancy, the memory scheduler, and the
   exact L1D/L2 sets the visit's accesses map to. Whatever the region
   *writes* is captured in the delta: appended retire cycles, register
   scoreboard updates, component post-states, cache set contents,
   plain attribute counters and telemetry counters.
3. **Live splits.** Work whose effects outlive any single visit in a
   context-dependent way stays on the slow path even during a replay:
   the fetch stage's group assembly (trace-cache LRU, predictor
   training, I-cache fill), the bias table's ``record_outcome`` (fed
   the *current* branch outcomes — direction is not pinned by the key,
   only the mispredict bit is), and the fill unit (segment collection
   consumes the current record stream). Their telemetry
   (``fillunit.*``) is excluded from the recorded counter deltas so
   replay never double-counts.

The shadow checker (``SimConfig.replay_shadow_every``) re-simulates
every Nth would-be replay through the slow path and asserts the fresh
capture equals the memoized record bit-for-bit — the replay layer's
analogue of the PR-2 segment verifier, wired into the harness
cross-checks.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.clusters import (
    CheckpointStore,
    FunctionalUnits,
    ReservationStations,
)
from repro.core.rename import RenameUnit, RetireUnit
from repro.core.stages.base import FetchGroup, MachineState, MetricBlock
from repro.errors import ReplayMismatchError
from repro.isa.opcodes import OpClass

if TYPE_CHECKING:
    from repro.core.engine import Engine

_SCOPES = {
    "hit": "engine.replay.hit",
    "miss": "engine.replay.miss",
    "invalidate": "engine.replay.invalidate",
    "bypass": "engine.replay.bypass",
    "shadow_checked": "engine.replay.shadow.checked",
    "shadow_mismatch": "engine.replay.shadow.mismatch",
}

#: above this many live store-forwarding entries the controller stops
#: memoizing: the scheduler's size-triggered prune (absolute-cycle
#: floor) could otherwise fire inside a captured or replayed visit.
_FORWARD_GUARD = 4000

#: groups between timing-state prunes (see ``on_group``). Digest
#: content is prune-invariant, so the cadence only has to keep the
#: components' size-triggered compactions (which *would* perturb
#: digests) unreachable: a group adds at most issue-width FU
#: reservations and a handful of forwarding entries, so 16 groups of
#: growth stay orders of magnitude below the 4096/2048 triggers.
_PRUNE_EVERY = 16

#: telemetry scopes whose counters move on the live split during a
#: replayed visit; recording their deltas too would double-count.
_LIVE_SCOPE_PREFIXES = ("fillunit.", "engine.replay.")

#: segment hit-rate distributions are bimodal (compress: hash-table
#: probe segments at ~0% beside loop segments at 80%+), so replay-cold
#: detection is two-tier: a segment that has *never* replayed freezes
#: after ``_COLD_MISSES_FAST`` misses, while one with any hits only
#: freezes on the slow lifetime test (``_COLD_MISSES`` misses at a hit
#: rate at or below ``1 / _COLD_RATIO``). Cold segments are not keyed,
#: so their slow path runs with near-zero replay overhead. The
#: hit/miss tallies halve whenever they total ``_DECAY_AT`` so the
#: lifetime test follows phase changes eventually. A cold segment is
#: still keyed periodically as a *probe pair* — two consecutive keyed
#: visits, because a hit needs a matching *recent* capture and
#: bypassed visits capture nothing: the pair's first visit re-seeds
#: the memo, the second can hit against it. A probe hit resets the
#: segment to warm, so warm-up misses never freeze a segment out for
#: good. Each fully-missed pair doubles the probe interval from
#: ``_PROBE_MIN`` up to ``_PROBE_MAX``, so persistently cold segments
#: converge to paying two key builds per ``_PROBE_MAX`` visits.
_COLD_MISSES_FAST = 8
_COLD_MISSES = 24
_COLD_RATIO = 8
_DECAY_AT = 48
_PROBE_MIN = 4
_PROBE_MAX = 16

#: a replay transaction (key build + record apply) costs roughly a
#: constant plus a small per-entry term, while the stage loop it skips
#: costs per-entry — so below a few consumed entries a *hit* is break-
#: even at best, and the misses keying those visits costs are pure
#: loss. Visits consuming fewer entries than this are never keyed
#: (counted as bypasses). compress's hot hash-table loop retires
#: 4-entry groups and sat at ~1.0x with them keyed; its profitable
#: replays are the 16-entry segment bodies.
_MIN_REPLAY_CONSUMED = 6


def _is_cold(stats: List[int]) -> bool:
    hits, misses = stats[0], stats[1]
    if hits == 0:
        return misses >= _COLD_MISSES_FAST
    return misses >= _COLD_MISSES and hits * _COLD_RATIO <= misses


class CaptureBackoff:
    """Run-level memo profitability guard.

    Keying and capturing visits that never replay is pure overhead:
    compress's BENCH_8 profile ran *below* break-even (0.9465x at a
    9.8% hit rate) because almost every eligible group paid the key
    build and capture without ever hitting. The controller reports
    every eligible-visit outcome here; when a full assessment window
    closes with a hit rate under the configured break-even threshold,
    capture switches off for the remainder of the run. Timing is
    untouched either way — replay never changes cycles — so backing
    off only sheds bookkeeping cost.
    """

    __slots__ = ("threshold", "window", "hits", "visits", "off")

    def __init__(self, threshold: float, window: int) -> None:
        self.threshold = threshold
        self.window = window
        self.hits = 0
        self.visits = 0
        self.off = False

    def reset(self) -> None:
        """New run: re-open the capture window."""
        self.hits = 0
        self.visits = 0
        self.off = False

    def note(self, hit: bool) -> None:
        """Record one eligible-visit outcome (hit / miss / bypass)."""
        if self.off or not self.window:
            return
        self.visits += 1
        if hit:
            self.hits += 1
        if self.visits >= self.window:
            if self.hits < self.threshold * self.visits:
                self.off = True
            self.hits = 0
            self.visits = 0


@dataclass
class VisitRecord:
    """Everything one slow-path segment visit did to timing state,
    normalized to the visit's fetch cycle.

    Component references (telemetry counters, cache objects) are the
    engine's own live objects; dataclass equality — which the shadow
    checker relies on — therefore compares them by identity, which is
    exactly right: a record is only ever replayed on the engine that
    captured it.
    """

    #: appended retire cycles, in order, relative to the fetch cycle
    retire: Tuple[int, ...]
    #: scoreboard updates: ``(reg, encoded-entry)`` per changed register
    regs: Tuple[Tuple[int, Tuple[Any, ...]], ...]
    rename_post: Tuple[Any, ...]
    retire_post: Tuple[Any, ...]
    checkpoints_post: Tuple[Tuple[int, ...], int]
    fus_post: Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...]]
    rs_post: Tuple[Tuple[int, ...], ...]
    memsched_delta: Tuple[Any, ...]
    #: per touched cache set: post-visit ``set_digest`` snapshot
    #: (recency-ordered resident tags + replacement-policy metadata)
    cache_posts: Tuple[Tuple[Any, int, Tuple[Tuple[int, ...],
                                             tuple]], ...]
    #: ``(cell index, delta)`` into the controller's attribute cells
    attr_deltas: Tuple[Tuple[int, int], ...]
    #: ``(live Counter handle, delta)`` per moved telemetry counter
    counter_deltas: Tuple[Tuple[Any, int], ...]
    #: ``(fetch_ready - base, pending_recovery, pending_serialize)``
    fetch_post: Tuple[int, int, int]


class TimingMemo:
    """FIFO-bounded store of context key -> :class:`VisitRecord`."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Dict[Tuple[Any, ...], VisitRecord] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple[Any, ...]) -> Optional[VisitRecord]:
        return self._entries.get(key)

    def store(self, key: Tuple[Any, ...], record: VisitRecord) -> int:
        """Insert, evicting the oldest entry at capacity; returns the
        number of evictions (0 or 1)."""
        evicted = 0
        if key not in self._entries and \
                len(self._entries) >= self.capacity:
            del self._entries[next(iter(self._entries))]
            evicted = 1
        self._entries[key] = record
        return evicted

    def invalidate(self, key: Tuple[Any, ...]) -> None:
        self._entries.pop(key, None)

    def approx_bytes(self) -> int:
        """Rough memory footprint of keys plus records (container and
        value sizes; foreign object references count pointer-size).
        Estimated from an evenly spaced sample of at most 16 entries —
        sizing every record recursively costs more than the replay
        saves on large memos."""
        n = len(self._entries)
        if n == 0:
            return 0
        step = max(n // 16, 1)
        sampled = 0
        total = 0
        for i, (key, record) in enumerate(self._entries.items()):
            if i % step:
                continue
            sampled += 1
            total += _approx_size(key) + 64
            for name in VisitRecord.__dataclass_fields__:
                total += _approx_size(getattr(record, name))
        return (total // sampled) * n


def _approx_size(obj: Any) -> int:
    if isinstance(obj, tuple):
        return sys.getsizeof(obj) + sum(_approx_size(o) for o in obj)
    if isinstance(obj, (int, str)):
        return sys.getsizeof(obj)
    return 8


def _segment_static(entries: Sequence[Any]
                    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """The visit-invariant part of a key: every register the entries'
    instructions read or write (r0 excluded, sorted) and a per-position
    memory-op kind (0 none, 1 load, 2 store)."""
    regs = set()
    kinds: List[int] = []
    for entry in entries:
        instr = entry.instr
        regs.update(instr.sources())
        dest = instr.dest()
        if dest is not None:
            regs.add(dest)
        opclass = instr.opclass
        if opclass is OpClass.LOAD or opclass is OpClass.STORE:
            addr_regs, value_reg = instr.mem_split()
            regs.update(addr_regs)
            if value_reg is not None:
                regs.add(value_reg)
            kinds.append(1 if opclass is OpClass.LOAD else 2)
        else:
            kinds.append(0)
    regs.discard(0)
    return tuple(sorted(regs)), tuple(kinds)


class _Pending:
    """A slow-path visit armed for capture (memo miss or shadow)."""

    __slots__ = ("key", "base", "start_seq", "start_pc", "regs_used",
                 "reg_pre", "counters", "counter_pre", "attr_pre",
                 "cache_sets", "store_words", "expect")

    def __init__(self, key: Tuple[Any, ...], base: int, start_seq: int,
                 start_pc: int, regs_used: Tuple[int, ...],
                 reg_pre: List[Tuple[int, Optional[int]]],
                 counters: List[Any], counter_pre: List[int],
                 attr_pre: Tuple[int, ...],
                 cache_sets: List[Tuple[str, Any, int]],
                 store_words: Tuple[int, ...],
                 expect: Optional[VisitRecord]) -> None:
        self.key = key
        self.base = base
        self.start_seq = start_seq
        self.start_pc = start_pc
        self.regs_used = regs_used
        self.reg_pre = reg_pre
        self.counters = counters
        self.counter_pre = counter_pre
        self.attr_pre = attr_pre
        self.cache_sets = cache_sets
        self.store_words = store_words
        self.expect = expect


class ReplayController:
    """Decides, per fetch group, between replaying a memoized timing
    delta and running (and possibly recording) the slow path."""

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine
        config = engine.config
        self._memo = TimingMemo(config.memo_capacity)
        self._shadow_every = config.replay_shadow_every
        self._shadow_tick = 0
        self._window = config.window_size
        self._penalty = config.cross_cluster_penalty
        self._pending: Optional[_Pending] = None
        self._prune_tick = 0
        #: per-(memo_token, entry count) register set and memory-op
        #: kinds — pure functions of the segment's instruction prefix,
        #: which entry positions map onto 1:1 (phantoms included), so
        #: one derivation serves every visit. Bounded by a wholesale
        #: clear; tokens are never reused, so staleness is impossible.
        self._static: Dict[Tuple[int, int],
                           Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        #: ``(base, rename, retire, checkpoints, fus, rs)`` — the five
        #: component digests as of the end of the previous group.
        #: Nothing touches these components between one group's close
        #: and the next group's key build (the live fetch stage only
        #: drives the trace cache, predictor and I-cache), so the next
        #: key re-normalizes these via ``shift_digest`` instead of
        #: re-walking component state. Cleared whenever a group runs
        #: without leaving a captured or replayed post-state.
        self._ctx_cache: Optional[Tuple[Any, ...]] = None
        #: per-segment replay confidence: ``memo_token -> [hits,
        #: misses]``; see :data:`_COLD_MISSES`.
        self._tok_stats: Dict[int, List[int]] = {}
        #: run-level break-even guard over all eligible visits.
        self._backoff = CaptureBackoff(config.memo_breakeven,
                                       config.memo_breakeven_window)
        self._m = MetricBlock(engine.registry, _SCOPES)
        self._g_entries = engine.registry.gauge(
            "engine.replay.memo.entries")
        self._g_bytes = engine.registry.gauge(
            "engine.replay.memo.approx_bytes")
        #: plain (non-registry) attribute counters the memoized region
        #: mutates; deltas are recorded by cell index.
        ms = engine.memsched
        ru = engine.rename_unit
        hier = engine.hierarchy
        self._attr_cells: Tuple[Tuple[Any, str], ...] = (
            (ms, "loads"), (ms, "stores"),
            (ms, "forwarded_loads"), (ms, "blocked_loads"),
            (engine.bypass, "crossings"),
            (ru, "window_stalls"), (ru, "block_limit_stalls"),
            (ru, "width_stalls"),
            (engine.checkpoints, "stalls"),
            (hier.l1d.stats, "accesses"), (hier.l1d.stats, "hits"),
            (hier.l1d.stats, "evictions"),
            (hier.l2.stats, "accesses"), (hier.l2.stats, "hits"),
            (hier.l2.stats, "evictions"),
        )

    @property
    def memo(self) -> TimingMemo:
        return self._memo

    # ==================================================================
    # Eligibility
    # ==================================================================

    def run_eligible(self, state: MachineState) -> bool:
        """Whether this run may use the memo at all: every opt-in
        observer that sees the memoized region instruction by
        instruction (events, spans, cycle attribution, timing hooks,
        wrong-path modeling, appended observer stages) forces the slow
        path for the whole run."""
        engine = self._engine
        # A new run restarts the cycle clock; digests carried over from
        # a previous run on this engine would be stale.
        self._ctx_cache = None
        self._backoff.reset()
        if engine.spans is not None or engine.events.enabled:
            return False
        if state.accountant is not None or state.timing_hook is not None:
            return False
        if state.want_payload or state.wrong_path is not None:
            return False
        # Observer stages appended to engine.stages see per-instruction
        # state and must keep seeing it; host-profiler proxies wrap the
        # canonical stages (in ``_stage``) without observing timing, so
        # unwrap before comparing.
        live = [getattr(stage, "_stage", stage)
                for stage in engine.stages]
        return live == list(engine._core_stages)

    # ==================================================================
    # Per-group driver
    # ==================================================================

    def on_group(self, state: MachineState) -> bool:
        """Called after the (live) fetch stage assembled the group.
        Returns True when the group was replayed from the memo — the
        engine then skips the per-instruction stage loop entirely."""
        engine = self._engine
        group = state.group
        assert group is not None
        base = group.fetch_cycle
        # Maintenance: drop timing state no future group can observe.
        # Sound on every path (see prune_below/prune_stale docs), and
        # digests are prune-invariant (both cut below base + slack), so
        # this amortizes over _PRUNE_EVERY groups — often enough that
        # the components' own absolute-cycle size triggers (4096-entry
        # FU compaction, 2048-entry forwarding prune) stay permanently
        # out of reach.
        self._prune_tick += 1
        if self._prune_tick >= _PRUNE_EVERY:
            self._prune_tick = 0
            engine.fus.prune_below(base + 2)
            engine.memsched.prune_stale(base)
        if self._backoff.off:
            # The run replayed below break-even for a full window:
            # skip keying and capture entirely from here on.
            self._m.bypass.add()
            self._ctx_cache = None
            return False
        if group.segment is None or \
                group.consumed < _MIN_REPLAY_CONSUMED or \
                engine.memsched.forward_entries() > _FORWARD_GUARD:
            self._m.bypass.add()
            self._backoff.note(False)
            self._ctx_cache = None
            return False
        stats = self._tok_stats.get(group.segment.memo_token)
        if stats is None:
            # [hits, misses, cold visits since last probe, probe gap]
            stats = [0, 0, 0, _PROBE_MIN]
            self._tok_stats[group.segment.memo_token] = stats
        cold = _is_cold(stats)
        if cold:
            stats[2] += 1
            if stats[2] < stats[3]:
                self._m.bypass.add()
                self._backoff.note(False)
                self._ctx_cache = None
                return False
            if stats[2] > stats[3]:
                stats[2] = 0    # second keyed visit of the probe pair
        key, regs_used, cache_sets, store_words = \
            self._build_key(state, group)
        record = self._memo.get(key)
        if record is not None:
            self._m.hit.add()
            self._backoff.note(True)
            if cold:
                stats[:] = [1, 0, 0, _PROBE_MIN]    # probe hit: rewarm
            else:
                stats[0] += 1
                if stats[0] + stats[1] >= _DECAY_AT:
                    stats[0] -= stats[0] // 2
                    stats[1] //= 2
            if self._shadow_due():
                self._m.shadow_checked.add()
                self._arm(state, group, key, regs_used, cache_sets,
                          store_words, expect=record)
                return False
            self._apply(state, group, record)
            return True
        self._m.miss.add()
        self._backoff.note(False)
        stats[1] += 1
        if cold:
            if stats[2] == 0:   # pair completed without a hit
                stats[3] = min(stats[3] * 2, _PROBE_MAX)
        elif stats[0] + stats[1] >= _DECAY_AT:
            stats[0] -= stats[0] // 2
            stats[1] //= 2
        self._arm(state, group, key, regs_used, cache_sets,
                  store_words, expect=None)
        return False

    def after_group(self, state: MachineState) -> None:
        """Called after a slow-path group completed (post end_group):
        capture the visit into the memo, or shadow-compare it."""
        pending = self._pending
        if pending is None:
            return
        self._pending = None
        record = self._capture(state, pending)
        if record is None:
            # Uncapturable scoreboard delta; do not memoize. The
            # component post-state is unknown to the digest cache too.
            self._ctx_cache = None
            return
        self._ctx_cache = (pending.base, record.rename_post,
                           record.retire_post, record.checkpoints_post,
                           record.fus_post, record.rs_post)
        if pending.expect is not None:
            if record != pending.expect:
                self._memo.invalidate(pending.key)
                self._m.shadow_mismatch.add()
                raise ReplayMismatchError(
                    f"shadow re-simulation of segment "
                    f"{pending.start_pc:#x} at cycle {pending.base} "
                    f"diverged from its memoized timing delta")
            return
        self._m.invalidate.add(self._memo.store(pending.key, record))

    def finish_run(self) -> None:
        """Publish the memo footprint gauges."""
        self._g_entries.set(len(self._memo))
        self._g_bytes.set(self._memo.approx_bytes())

    def _shadow_due(self) -> bool:
        if not self._shadow_every:
            return False
        self._shadow_tick += 1
        if self._shadow_tick >= self._shadow_every:
            self._shadow_tick = 0
            return True
        return False

    # ==================================================================
    # Context key
    # ==================================================================

    def _build_key(self, state: MachineState, group: FetchGroup
                   ) -> Tuple[Tuple[Any, ...], Tuple[int, ...],
                              List[Tuple[str, Any, int]],
                              Tuple[int, ...]]:
        """The full timing context of this visit, normalized to the
        fetch cycle. Returns ``(key, registers used, touched cache
        sets, store words)`` — the extras are reused by capture."""
        engine = self._engine
        base = group.fetch_cycle
        segment = group.segment
        assert segment is not None
        entries = group.entries
        token = segment.memo_token
        static = self._static.get((token, len(entries)))
        if static is None:
            static = _segment_static(entries)
            if len(self._static) >= 32768:
                self._static.clear()
            self._static[(token, len(entries))] = static
        regs_used, mem_kinds = static
        codes: List[Any] = []
        load_words = set()
        store_words = set()
        mem_addrs: List[int] = []
        for i, entry in enumerate(entries):
            if entry.phantom:
                codes.append("p")
                continue
            code = ((2 if entry.promoted else 0)
                    | (1 if entry.mispredicted else 0))
            kind = mem_kinds[i]
            if kind:
                addr = entry.record.mem_addr
                codes.append((code, addr))
                mem_addrs.append(addr)
                if kind == 1:
                    load_words.add(addr & ~3)
                else:
                    store_words.add(addr & ~3)
            else:
                codes.append(code)
        cache_sets = self._touched_sets(mem_addrs)
        ctx = self._ctx_cache
        if ctx is not None and ctx[0] <= base:
            delta = base - ctx[0]
            if delta == 0:
                rename_d, retire_d, ckpt_d, fus_d, rs_d = ctx[1:]
            else:
                rename_d = RenameUnit.shift_digest(ctx[1], delta)
                retire_d = RetireUnit.shift_digest(ctx[2], delta)
                ckpt_d = CheckpointStore.shift_digest(ctx[3], delta)
                fus_d = FunctionalUnits.shift_digest(ctx[4], delta)
                rs_d = ReservationStations.shift_digest(ctx[5], delta)
        else:
            rename_d = engine.rename_unit.context_digest(base)
            retire_d = engine.retire_unit.context_digest(base)
            ckpt_d = engine.checkpoints.context_digest(base)
            fus_d = engine.fus.context_digest(base)
            rs_d = engine.rs.context_digest(base)
        key = (
            segment.memo_token, len(entries), group.consumed,
            tuple(codes),
            self._reg_digest(state.reg_ready, base, regs_used),
            self._window_digest(state, base, group.consumed),
            rename_d, retire_d, ckpt_d, fus_d, rs_d,
            engine.memsched.context_digest(base, sorted(load_words)),
            tuple((label, idx, cache.set_digest(idx))
                  for label, cache, idx in cache_sets),
        )
        return key, regs_used, cache_sets, tuple(sorted(store_words))

    def _touched_sets(self, mem_addrs: Sequence[int]
                      ) -> List[Tuple[str, Any, int]]:
        """The distinct L1D and L2 sets this visit's memory accesses
        map to (loads and stores both probe L1D and, on a miss, L2)."""
        hier = self._engine.hierarchy
        out: List[Tuple[str, Any, int]] = []
        seen = set()
        for addr in mem_addrs:
            for label, cache in (("d", hier.l1d), ("2", hier.l2)):
                idx = cache.set_index(addr)
                if (label, idx) not in seen:
                    seen.add((label, idx))
                    out.append((label, cache, idx))
        out.sort(key=lambda item: (item[0], item[2]))
        return out

    def _reg_digest(self, reg_ready: List[Tuple[int, Optional[int]]],
                    base: int, regs_used: Tuple[int, ...]
                    ) -> Tuple[Any, ...]:
        """The dataflow scoreboard relative to *base*, restricted to
        the registers this visit reads or writes — no other register
        can influence its timing, and the written-but-unchanged case
        needs the pre-visit value of written registers pinned too.

        Live registers (``ready > base``) carry exact normalized cycle
        and producing cluster. Never-written registers are one shared
        token. Stale registers (written, but ready at or before
        *base*) can only influence timing through operand-wakeup
        comparisons: among themselves the comparison structure is
        shift-invariant, so they are encoded relative to the newest
        stale value; against live operands (whose effective readiness
        is at least ``base + 1``) a stale operand competes only when
        its bypass-adjusted readiness reaches that boundary, which the
        final clamped ``newest-stale - base`` component pins exactly
        in the reachable band and collapses below it."""
        stale_max: Optional[int] = None
        for reg in regs_used:
            ready, cluster = reg_ready[reg]
            if ready <= base and not (ready == 0 and cluster is None):
                if stale_max is None or ready > stale_max:
                    stale_max = ready
        out: List[Any] = []
        for reg in regs_used:
            ready, cluster = reg_ready[reg]
            if ready > base:
                out.append((ready - base, cluster))
            elif ready == 0 and cluster is None:
                out.append(0)
            else:
                assert stale_max is not None
                out.append((ready - stale_max, cluster))
        near = (None if stale_max is None
                else max(stale_max - base, -self._penalty))
        return (tuple(out), near)

    def _window_digest(self, state: MachineState, base: int,
                       consumed: int) -> Tuple[int, Tuple[int, ...]]:
        """The retire-history slice the in-flight window constraint
        reads: ``retire_cycles[seq - window]`` for this group's
        sequence numbers. Values at or before *base* cannot constrain
        a rename at ``base + 1`` and clamp to one token; the anchor
        distinguishes runs young enough that some sequence numbers
        have no window predecessor at all."""
        cycles = state.retire_cycles
        s0 = len(cycles)
        lo = s0 - self._window
        vals = tuple(max(cycles[j] - base, 0)
                     for j in range(max(lo, 0),
                                    min(lo + consumed + 1, s0)))
        return (s0 if s0 < self._window else -1, vals)

    # ==================================================================
    # Capture (slow path, armed)
    # ==================================================================

    def _arm(self, state: MachineState, group: FetchGroup,
             key: Tuple[Any, ...], regs_used: Tuple[int, ...],
             cache_sets: List[Tuple[str, Any, int]],
             store_words: Tuple[int, ...],
             expect: Optional[VisitRecord]) -> None:
        counters = self._engine.registry.counters()
        segment = group.segment
        assert segment is not None
        self._pending = _Pending(
            key=key, base=group.fetch_cycle,
            start_seq=len(state.retire_cycles),
            start_pc=segment.start_pc,
            regs_used=regs_used,
            reg_pre=list(state.reg_ready),
            counters=counters,
            counter_pre=[c.value for c in counters],
            attr_pre=tuple(getattr(obj, name)
                           for obj, name in self._attr_cells),
            cache_sets=cache_sets,
            store_words=store_words,
            expect=expect)

    def _capture(self, state: MachineState,
                 pending: _Pending) -> Optional[VisitRecord]:
        engine = self._engine
        base = pending.base
        regs = self._capture_regs(state, pending)
        if regs is None:
            return None
        registry_counters = engine.registry.counters()
        counter_deltas = []
        for i, counter in enumerate(registry_counters):
            pre = (pending.counter_pre[i]
                   if i < len(pending.counter_pre) else 0)
            delta = counter.value - pre
            if delta and not counter.scope.startswith(
                    _LIVE_SCOPE_PREFIXES):
                counter_deltas.append((counter, delta))
        attr_deltas = []
        for i, (obj, name) in enumerate(self._attr_cells):
            delta = getattr(obj, name) - pending.attr_pre[i]
            if delta:
                attr_deltas.append((i, delta))
        return VisitRecord(
            retire=tuple(c - base for c in
                         state.retire_cycles[pending.start_seq:]),
            regs=regs,
            rename_post=engine.rename_unit.context_digest(base),
            retire_post=engine.retire_unit.context_digest(base),
            checkpoints_post=engine.checkpoints.context_digest(base),
            fus_post=engine.fus.context_digest(base),
            rs_post=engine.rs.context_digest(base),
            memsched_delta=engine.memsched.capture_delta(
                base, pending.store_words),
            cache_posts=tuple((cache, idx, cache.set_digest(idx))
                              for _label, cache, idx
                              in pending.cache_sets),
            attr_deltas=tuple(attr_deltas),
            counter_deltas=tuple(counter_deltas),
            fetch_post=(state.fetch_ready - base,
                        state.pending_recovery,
                        state.pending_serialize))

    def _capture_regs(self, state: MachineState, pending: _Pending
                      ) -> Optional[Tuple[Tuple[int, Tuple[Any, ...]],
                                          ...]]:
        """Encode every scoreboard change: live values relative to the
        base, never-written resets absolutely, and stale values as a
        reference to the pre-visit register holding the same pair.
        Stale pairs only ever arise from rename-time move copies, so
        the chain always bottoms out at a pre-visit register the visit
        read — which is in the key's register set, the only registers
        whose pre-visit pairwise equalities the key pins (if no source
        there matches, the visit is simply not memoized)."""
        base = pending.base
        pre = pending.reg_pre
        out: List[Tuple[int, Tuple[Any, ...]]] = []
        for reg in range(1, 32):
            pair = state.reg_ready[reg]
            if pair == pre[reg]:
                continue
            ready, cluster = pair
            if ready > base:
                out.append((reg, ("a", ready - base, cluster)))
            elif ready == 0 and cluster is None:
                out.append((reg, ("z",)))
            else:
                for src in pending.regs_used:
                    if pre[src] == pair:
                        out.append((reg, ("c", src)))
                        break
                else:
                    return None
        return tuple(out)

    # ==================================================================
    # Replay (memo hit)
    # ==================================================================

    def _apply(self, state: MachineState, group: FetchGroup,
               record: VisitRecord) -> None:
        """Install a recorded visit at this group's fetch cycle, then
        run the live split (bias training, fill unit) over the current
        records. The engine skips the stage loop and ``end_group``;
        ``fetch_post`` carries their sequencing effects."""
        engine = self._engine
        base = group.fetch_cycle
        retire_cycles = state.retire_cycles
        for cycle in record.retire:
            retire_cycles.append(cycle + base)
        pre = list(state.reg_ready)
        for reg, encoded in record.regs:
            tag = encoded[0]
            if tag == "a":
                state.reg_ready[reg] = (encoded[1] + base, encoded[2])
            elif tag == "z":
                state.reg_ready[reg] = (0, None)
            else:
                state.reg_ready[reg] = pre[encoded[1]]
        engine.rename_unit.restore(base, record.rename_post)
        engine.retire_unit.restore(base, record.retire_post)
        engine.checkpoints.restore(base, record.checkpoints_post)
        engine.fus.restore(base, record.fus_post)
        engine.rs.restore(base, record.rs_post)
        engine.memsched.apply_delta(base, record.memsched_delta)
        for cache, idx, digest in record.cache_posts:
            cache.restore_set(idx, digest)
        for i, delta in record.attr_deltas:
            obj, name = self._attr_cells[i]
            setattr(obj, name, getattr(obj, name) + delta)
        for counter, delta in record.counter_deltas:
            counter.value += delta
        # Live split: the bias table learns from the *current* branch
        # outcomes (the key pins only the mispredict pattern, not the
        # directions), and the fill unit consumes the current records
        # at the recorded retire cycles — exactly what the slow path's
        # retire and fill stages would have fed them, in order.
        predictor = engine.predictor
        fill_unit = engine.fill_unit
        k = 0
        for entry in group.entries:
            if entry.phantom:
                continue
            rec = entry.record
            if rec.instr.is_cond_branch():
                predictor.record_outcome(rec.pc, rec.taken)
            if fill_unit is not None:
                fill_unit.retire(rec, record.retire[k] + base)
            k += 1
        ready, recovery, serialize = record.fetch_post
        state.fetch_ready = ready + base
        state.pending_recovery = recovery
        state.pending_serialize = serialize
        self._ctx_cache = (base, record.rename_post, record.retire_post,
                           record.checkpoints_post, record.fus_post,
                           record.rs_post)


__all__ = ["ReplayController", "TimingMemo", "VisitRecord",
           "ReplayMismatchError"]
