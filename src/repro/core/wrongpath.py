"""Wrong-path fetch modeling (opt-in).

The committed-stream replay does not execute wrong paths (DESIGN.md
§3). This module recovers the *fetch-side* part of that fidelity: when
a branch mispredicts, the real machine spends the cycles until
resolution fetching down the wrong path, polluting the instruction
cache. The wrong path's instructions are statically known — they are
in the program image — so the walker decodes from the wrong target,
follows direct jumps and calls, falls through conditional branches, and
stops at indirect control flow (whose wrong-path targets depend on
wrong-path register values, which genuinely are unknowable here) or at
the edge of the text segment.

Enabled with ``SimConfig.model_wrong_path``; the pipeline then charges
one instruction-cache line access per wrong-path fetch cycle. Execution
resources consumed by wrong-path instructions remain unmodelled (they
would be squashed at resolution; their effect on FU availability is
second-order next to the cache pollution).
"""

from __future__ import annotations

from repro.cache.hierarchy import MemoryHierarchy
from repro.program.image import Program


class WrongPathFetcher:
    """Replays wrong-path fetch streams against the I-cache."""

    def __init__(self, program: Program, hierarchy: MemoryHierarchy,
                 ic_fetch_width: int = 8, max_cycles: int = 64) -> None:
        self.program = program
        self.hierarchy = hierarchy
        self.ic_fetch_width = ic_fetch_width
        self.max_cycles = max_cycles
        self.fetch_cycles = 0        # wrong-path fetch cycles simulated
        self.instructions = 0        # wrong-path instructions fetched
        self.line_accesses = 0

    def wrong_target(self, record) -> int:
        """The wrong-path start PC for a mispredicted direct
        conditional branch: the path the (wrong) prediction chose."""
        instr = record.instr
        if record.taken:
            return record.pc + 4              # predicted not-taken
        return record.pc + (instr.imm or 0)   # predicted taken


    def pollute(self, start_pc: int, cycles: int) -> None:
        """Fetch down the wrong path for *cycles* fetch cycles,
        touching the I-cache like real wrong-path fetch would."""
        pc = start_pc
        budget = min(cycles, self.max_cycles)
        for _ in range(budget):
            if not self.program.contains_pc(pc):
                return
            self.fetch_cycles += 1
            self.line_accesses += 1
            self.hierarchy.l1i.access(pc)
            pc = self._advance_one_group(pc)
            if pc is None:
                return

    def _advance_one_group(self, pc: int):
        """Consume one fetch group's worth of wrong-path instructions
        starting at *pc*; returns the next group's PC or ``None`` when
        the walk must stop (indirect control, serialization, text end).
        """
        for _ in range(self.ic_fetch_width):
            if not self.program.contains_pc(pc):
                return None
            instr = self.program.instr_at(pc)
            self.instructions += 1
            if instr.is_indirect() or instr.is_return() \
                    or instr.is_serializing():
                return None
            if instr.op.value in ("j", "jal"):
                return instr.imm   # follow direct transfers
            # conditional branches fall through on the wrong path (a
            # not-taken static guess; their predictor state is already
            # polluted by the training we do not model).
            pc += 4
        return pc


__all__ = ["WrongPathFetcher"]
