"""Workload fingerprint validation.

Each synthetic benchmark is built to a target optimization-opportunity
profile (the paper's Table 2). This module measures a benchmark's
*achieved* dynamic fingerprint — both statically (idiom counts over the
committed stream) and dynamically (transformed-instruction coverage
under the combined optimizations) — and scores it against the target.

Used by the test suite to pin the generators against drift, by
``tools/calibrate.py`` during tuning, and available to users adding
their own workloads::

    from repro.workloads.validate import validate_benchmark
    report = validate_benchmark("m88ksim", scale=0.5)
    print(report.render())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimConfig
from repro.core.pipeline import PipelineModel
from repro.fillunit.opts.base import OptimizationConfig
from repro.isa.instruction import move_source
from repro.isa.opcodes import Op
from repro.machine.executor import Executor
from repro import workloads


@dataclass
class StaticFingerprint:
    """Idiom densities over the committed stream (fractions)."""

    instructions: int
    moves: float              # detectable register-move idioms
    short_shifts: float       # sll by 1-3 (scaled-add feeders)
    chainable_addi: float     # addi with rd != rs (reassociation grist)
    loads: float
    stores: float
    cond_branches: float
    calls: float
    indirect: float


@dataclass
class ValidationReport:
    """Measured vs target profile for one benchmark."""

    benchmark: str
    static: StaticFingerprint
    coverage: dict            # measured Table-2 percentages
    target: dict              # the paper's Table-2 percentages
    improvement: float        # combined-optimization IPC gain, percent

    @property
    def coverage_ratios(self) -> dict:
        """measured / target per category (1.0 = on target)."""
        out = {}
        for key in ("moves", "reassoc", "scaled", "total"):
            target = self.target[key]
            out[key] = (self.coverage[key] / target) if target else None
        return out

    def within(self, factor: float = 3.0,
               floor_pct: float = 1.0) -> bool:
        """True when every nonzero-target category is within *factor*
        of the paper's value (categories under *floor_pct* in the paper
        are noise-level and exempt)."""
        for key in ("moves", "reassoc", "scaled", "total"):
            target = self.target[key]
            if target < floor_pct:
                continue
            measured = self.coverage[key]
            if measured == 0 or not (target / factor
                                     <= measured
                                     <= target * factor):
                return False
        return True

    def render(self) -> str:
        lines = [f"{self.benchmark}: {self.static.instructions} committed "
                 f"instructions, combined gain {self.improvement:+.1f}%"]
        for key in ("moves", "reassoc", "scaled", "total"):
            ratio = self.coverage_ratios[key]
            ratio_text = f"x{ratio:.2f}" if ratio is not None else "  - "
            lines.append(f"  {key:8s} measured {self.coverage[key]:5.1f}%"
                         f"  target {self.target[key]:5.1f}%  {ratio_text}")
        lines.append(f"  static: moves {100 * self.static.moves:.1f}% "
                     f"shifts {100 * self.static.short_shifts:.1f}% "
                     f"addi {100 * self.static.chainable_addi:.1f}% "
                     f"loads {100 * self.static.loads:.1f}% "
                     f"branches {100 * self.static.cond_branches:.1f}%")
        return "\n".join(lines)


def static_fingerprint(trace) -> StaticFingerprint:
    """Measure the idiom densities of a committed trace."""
    total = len(trace)
    counts = dict(moves=0, shifts=0, addi=0, loads=0, stores=0,
                  branches=0, calls=0, indirect=0)
    for record in trace:
        instr = record.instr
        if move_source(instr) is not None:
            counts["moves"] += 1
        if instr.op is Op.SLL and 1 <= (instr.imm or 0) <= 3:
            counts["shifts"] += 1
        if instr.op is Op.ADDI and instr.rd not in (0, instr.rs):
            counts["addi"] += 1
        if instr.is_load():
            counts["loads"] += 1
        elif instr.is_store():
            counts["stores"] += 1
        if instr.is_cond_branch():
            counts["branches"] += 1
        if instr.is_call():
            counts["calls"] += 1
        if instr.is_indirect() and not instr.is_return():
            counts["indirect"] += 1
    return StaticFingerprint(
        instructions=total,
        moves=counts["moves"] / total,
        short_shifts=counts["shifts"] / total,
        chainable_addi=counts["addi"] / total,
        loads=counts["loads"] / total,
        stores=counts["stores"] / total,
        cond_branches=counts["branches"] / total,
        calls=counts["calls"] / total,
        indirect=counts["indirect"] / total,
    )


def validate_benchmark(name: str, scale: float = 0.3,
                       trace=None) -> ValidationReport:
    """Measure *name* and score it against its Table-2 target.

    Raises:
        KeyError: for unknown benchmark names.
    """
    spec = workloads.spec(name)
    if trace is None:
        trace = Executor(workloads.build(name, scale)).run()
    baseline = PipelineModel(SimConfig.paper()).run(trace, name, "base")
    optimized = PipelineModel(
        SimConfig.paper(OptimizationConfig.all())).run(trace, name, "all")
    target_row = spec.paper_table2
    return ValidationReport(
        benchmark=name,
        static=static_fingerprint(trace),
        coverage=optimized.coverage.as_percentages(optimized.instructions),
        target={"moves": target_row.moves, "reassoc": target_row.reassoc,
                "scaled": target_row.scaled, "total": target_row.total},
        improvement=optimized.improvement_over(baseline),
    )


__all__ = ["StaticFingerprint", "ValidationReport",
           "static_fingerprint", "validate_benchmark"]
