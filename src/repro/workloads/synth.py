"""Reusable assembly fragments for the synthetic benchmarks.

Each ``emit_*`` function appends one assembly *function* to an
:class:`~repro.workloads.builder.AsmBuilder`. Calling conventions
follow the MIPS ABI subset the loader establishes: arguments in
``$a0-$a3``, result in ``$v0``, ``$t*``/``$a*``/``$v*`` caller-saved,
``$s*`` preserved (the fragments below never touch them), ``$sp`` /
``$ra`` as usual.

The fragments are the idiom palette from which the fifteen benchmark
stand-ins are composed — each one concentrates a particular
optimization opportunity the paper's Table 2 attributes to the real
benchmarks:

=====================  ==============================================
fragment               dominant idiom
=====================  ==============================================
array_sum_scaled       shift+add array indexing (scaled adds)
multichain_sum         independent dependence chains (placement)
hash_loop              long-shift mixing + table update (compress)
list_walk              pointer chasing with register moves (li)
struct_chain           cross-block ADDI field offsets (m88ksim)
dispatch_loop          indirect-jump interpreter (perl/python/li)
recursive_walk         call-heavy recursion with moves (go/chess)
matrix_kernel          2-D indexing + parallel accumulators (ijpeg)
bitmix                 long serial ALU chains, few memory ops (pgp)
poly_eval              multiply-accumulate with moves (gnuplot)
=====================  ==============================================
"""

from __future__ import annotations

from repro.workloads.builder import AsmBuilder


def emit_array_sum_scaled(b: AsmBuilder, fname: str, arr_label: str,
                          count: int) -> None:
    """``v0 = sum(arr[0:count])`` with classic sll/lwx indexing.

    Every element access is a shift-by-2 feeding an indexed load: the
    scaled-add pass collapses each pair, shortening the address chain.
    """
    loop = b.label(f"{fname}_loop")
    b.func(fname)
    b.emit(
        f"    la   $t9, {arr_label}",
        "    move $t0, $zero",
        "    move $v0, $zero",
        f"{loop}:",
        "    sll  $t1, $t0, 2",
        "    lwx  $t2, $t1, $t9",
        "    add  $v0, $v0, $t2",
        "    addi $t0, $t0, 1",
        f"    blt  $t0, $a0, {loop}",
        "    ret",
    )


def emit_multichain_sum(b: AsmBuilder, fname: str, arr_label: str) -> None:
    """Four independent accumulate chains over one array.

    The chains are interleaved in program order, so the baseline's
    sequential slot assignment scatters each chain across clusters;
    the placement pass re-gathers them (Figure 6's effect).
    ``a0`` = element count (multiple of 4).
    """
    loop = b.label(f"{fname}_loop")
    b.func(fname)
    b.emit(
        f"    la   $t9, {arr_label}",
        "    move $t0, $zero",
        "    move $t4, $zero",
        "    move $t5, $zero",
        "    move $t6, $zero",
        "    move $t7, $zero",
        f"{loop}:",
        "    sll  $t1, $t0, 2",
        "    lwx  $t2, $t1, $t9",
        "    add  $t4, $t4, $t2",
        "    xor  $t4, $t4, $t2",
        "    add  $t5, $t5, $t1",
        "    xor  $t5, $t5, $t1",
        "    add  $t6, $t6, $t0",
        "    xor  $t6, $t6, $t0",
        "    add  $t7, $t7, $t2",
        "    sub  $t7, $t7, $t0",
        "    addi $t0, $t0, 1",
        f"    blt  $t0, $a0, {loop}",
        "    add  $v0, $t4, $t5",
        "    add  $v0, $v0, $t6",
        "    add  $v0, $v0, $t7",
        "    ret",
    )


def emit_hash_loop(b: AsmBuilder, fname: str, table_label: str,
                   mask: int, feedback: bool = False) -> None:
    """compress-style hashing: mix a key with long shifts (too long to
    scale), probe and update a table, branch on a data-dependent bit.

    With ``feedback`` the probed value folds back into the key — LZW's
    dictionary-walk behaviour — which puts the scaled table probe on
    the loop-carried chain instead of off to the side.

    ``a0`` = iteration count, ``a1`` = seed.
    """
    loop = b.label(f"{fname}_loop")
    skip = b.label(f"{fname}_skip")
    b.func(fname)
    b.emit(
        f"    la   $t9, {table_label}",
        "    move $t0, $a1",
        "    move $t3, $zero",
        f"{loop}:",
        "    srl  $t1, $t0, 5",
        "    xor  $t0, $t0, $t1",
        "    sll  $t1, $t0, 7",
        "    xor  $t0, $t0, $t1",
        f"    andi $t2, $t0, {mask}",
        "    sll  $t6, $t2, 2",
        "    lwx  $t4, $t6, $t9",
        "    addi $t4, $t4, 1",
        "    swx  $t4, $t6, $t9",
    )
    if feedback:
        b.emit("    xor  $t0, $t0, $t4")   # dictionary-walk feedback
    b.emit(
        "    andi $t5, $t0, 1",
        f"    beq  $t5, $zero, {skip}",
        "    addi $t0, $t0, 17",
        f"{skip}:",
        "    addi $t3, $t3, 1",
        f"    blt  $t3, $a0, {loop}",
        "    move $v0, $t0",
        "    ret",
    )


def emit_list_walk(b: AsmBuilder, fname: str, head_label: str) -> None:
    """li-style pointer chase: ``node = [value, next]`` cells.

    The cursor advance is the register-move idiom *on the pointer-chase
    critical path* — eliminating it in rename (the paper's §4.2) cuts a
    cycle from every hop, which is why li is among the biggest
    register-move winners in Figure 3. ``v0`` = sum of values.
    """
    loop = b.label(f"{fname}_loop")
    b.func(fname)
    b.emit(
        f"    la   $t0, {head_label}",
        "    move $v0, $zero",
        f"{loop}:",
        "    lw   $t1, 0($t0)",
        "    add  $v0, $v0, $t1",
        "    lw   $t2, 4($t0)",
        "    xor  $t4, $t1, $t2",
        "    add  $v0, $v0, $t4",
        "    move $t0, $t2",         # advance cursor (critical move)
        f"    bne  $t0, $zero, {loop}",
        "    ret",
    )


def emit_struct_chain(b: AsmBuilder, fname: str) -> None:
    """m88ksim-style device-model access: a base pointer flows through
    chains of small constant offsets that *cross conditional branches*,
    which is exactly the cross-block reassociation opportunity the
    compiler cannot (and the fill unit can) exploit.

    ``a0`` = struct pointer (already offset by the caller: the
    caller-side ``addi`` makes the pair cross a procedure boundary too);
    ``v0`` = accumulated field sum.
    """
    alt = b.label(f"{fname}_alt")
    join = b.label(f"{fname}_join")
    tail = b.label(f"{fname}_tail")
    b.func(fname)
    b.emit(
        "    move $v0, $zero",
        "    addi $t0, $a0, 4",       # &s->f1
        "    lw   $t1, 0($t0)",
        f"    bltz $t1, {alt}",       # fields are non-negative: biased
        "    addi $t3, $t0, 4",       # &s->f2  (cross-block: a0+8)
        "    lw   $t4, 0($t3)",
        "    add  $v0, $v0, $t4",
        f"    j    {join}",
        f"{alt}:",
        "    addi $t3, $t0, 8",       # &s->f3  (cross-block: a0+12)
        "    lw   $t4, 0($t3)",
        "    sub  $v0, $v0, $t4",
        f"{join}:",
        "    addi $t5, $t3, 4",       # cross-block again
        "    lw   $t6, 0($t5)",
        "    add  $v0, $v0, $t6",
        f"    bltz $t6, {tail}",      # biased not-taken
        "    addi $t8, $t5, 4",       # and again
        "    lw   $t7, 0($t8)",
        "    add  $v0, $v0, $t7",
        f"{tail}:",
        "    add  $v0, $v0, $t1",
        "    ret",
    )


def emit_field_chain(b: AsmBuilder, fname: str, depth: int = 5) -> None:
    """A *deep* constant-offset pointer chain spanning one conditional
    branch per level — the concentrated form of m88ksim's register-file
    and device-state access pattern that reassociation collapses.

    Without the fill unit, level ``k``'s address waits for level
    ``k-1``'s ``ADDI``: a serial chain of height *depth*. After
    reassociation every level addresses straight off ``a0``, and the
    loads issue in parallel. The guard branches test loaded values that
    the workload data keeps non-negative, so they are strongly biased
    (promotable) — matching the well-predicted control the real
    m88ksim/dhrystone run exhibits.

    ``a0`` = struct pointer; ``v0`` = field checksum.
    """
    escape = b.label(f"{fname}_escape")
    done = b.label(f"{fname}_done")
    b.func(fname)
    b.emit(
        "    move $t5, $zero",
        "    move $t6, $zero",
        "    move $t7, $zero",
        "    move $t0, $a0",
    )
    # Field values accumulate into rotating registers so the ADDI
    # address chain — not the accumulation — is the call's critical
    # recurrence; that is the dependence height reassociation removes.
    accumulators = ("$t5", "$t6", "$t7")
    for level in range(depth):
        # Thread the pointer through alternating temporaries (a move
        # would let the move pass collapse the chain instead of the
        # reassociation pass; real compiled chains use fresh registers).
        src = "$t0" if level % 2 == 0 else "$t3"
        dst = "$t3" if level % 2 == 0 else "$t0"
        acc = accumulators[level % len(accumulators)]
        b.emit(
            f"    addi {dst}, {src}, 8",
            f"    lw   $t2, 0({dst})",
            f"    add  {acc}, {acc}, $t2",
            f"    bltz $t2, {escape}",    # biased not-taken
        )
    b.emit(
        f"{escape}:",
        "    add  $v0, $t5, $t6",
        "    add  $v0, $v0, $t7",
        f"    j    {done}",
        f"{done}:",
        "    ret",
    )


def emit_index_chase(b: AsmBuilder, fname: str, arr_label: str) -> None:
    """Index-chained array walk: ``i = A[i]`` — the address arithmetic
    *is* the loop-carried dependence, so the sll is on the critical
    recurrence and collapsing it into a scaled load (paper §4.4) saves
    a cycle per iteration. This is the tight form of go's board-chain
    scanning and TeX's node-list traversal.

    ``a0`` = iteration count, ``a1`` = start index; ``v0`` = final index.
    """
    loop = b.label(f"{fname}_loop")
    b.func(fname)
    b.emit(
        f"    la   $t9, {arr_label}",
        "    move $t0, $a1",
        "    move $t2, $zero",
        f"{loop}:",
        "    sll  $t1, $t0, 2",
        "    lwx  $t0, $t1, $t9",      # i = A[i]  (scaled-critical)
        "    addi $t2, $t2, 1",
        f"    blt  $t2, $a0, {loop}",
        "    move $v0, $t0",
        "    ret",
    )


def emit_dispatch_loop(b: AsmBuilder, fname: str, code_label: str,
                       handler_count: int = 4) -> None:
    """Interpreter inner loop: fetch a bytecode, jump through a handler
    table (``jr`` — an indirect jump that terminates trace segments),
    execute a short handler rich in stack-cell moves, repeat.

    ``a0`` = bytecode count. The handler table is emitted alongside.
    """
    table_label = b.label(f"{fname}_handlers")
    handlers = [b.label(f"{fname}_h{i}") for i in range(handler_count)]
    loop = b.label(f"{fname}_loop")
    next_l = b.label(f"{fname}_next")
    done = b.label(f"{fname}_done")
    b.data_words(table_label, [f"{h}" for h in handlers])
    b.func(fname)
    b.emit(
        f"    la   $t9, {code_label}",
        f"    la   $t8, {table_label}",
        "    move $t0, $zero",         # instruction counter
        "    move $v0, $zero",         # acc ~ interpreter TOS
        "    move $t6, $zero",         # second stack cell
        f"{loop}:",
        "    lw   $t2, 0($t9)",        # opcode via the ip pointer
        "    addi $t9, $t9, 4",
        "    sll  $t3, $t2, 2",
        "    lwx  $t4, $t3, $t8",      # handler address (scaled pair)
        "    jr   $t4",
    )
    # Handlers: realistic interpreter bodies shuffle the virtual stack
    # (moves), do a little arithmetic, then fall back to the dispatcher.
    bodies = [
        ["    move $t5, $v0",           # push TOS
         "    addi $v0, $t2, 3",
         "    xor  $v0, $v0, $t5",
         "    add  $v0, $v0, $t6",
         "    sub  $t6, $t5, $t2"],
        ["    add  $v0, $v0, $t6",
         "    sll  $t7, $v0, 4",
         "    xor  $v0, $v0, $t7",
         "    move $t6, $v0",           # dup
         "    addi $t6, $t6, 1"],
        ["    sll  $t5, $v0, 1",
         "    sub  $v0, $t5, $t6",
         "    and  $t6, $t5, $v0",
         "    xor  $t6, $t6, $t2",
         "    addi $v0, $v0, 5"],
        ["    xor  $v0, $v0, $t6",
         "    move $t5, $v0",           # swap halves
         "    srl  $v0, $t5, 9",
         "    xor  $v0, $v0, $t5",
         "    or   $t6, $t5, $t2"],
    ]
    for idx, handler in enumerate(handlers):
        b.emit(f"{handler}:")
        b.emit(*bodies[idx % len(bodies)])
        b.emit(f"    j    {next_l}")
    b.emit(
        f"{next_l}:",
        "    addi $t0, $t0, 1",
        f"    blt  $t0, $a0, {loop}",
        f"    j    {done}",
        f"{done}:",
        "    ret",
    )


def emit_recursive_walk(b: AsmBuilder, fname: str) -> None:
    """Game-tree recursion (go / chess): binary recursion to depth
    ``a0``, argument and result shuffling through register moves, a
    data-dependent pruning branch. ``a1`` = position value seed.
    """
    base = b.label(f"{fname}_base")
    prune = b.label(f"{fname}_prune")
    b.func(fname)
    b.emit(
        f"    blez $a0, {base}",
        "    addi $sp, $sp, -16",
        "    sw   $ra, 0($sp)",
        "    sw   $a0, 4($sp)",
        "    sw   $a1, 8($sp)",
        # left child
        "    addi $a0, $a0, -1",
        "    sll  $t0, $a1, 1",
        "    addi $a1, $t0, 1",
        f"    jal  {fname}",
        "    sw   $v0, 12($sp)",
        # prune right child when the left value is even (data dependent)
        "    andi $t1, $v0, 2",
        f"    beq  $t1, $zero, {prune}",
        "    lw   $a0, 4($sp)",
        "    lw   $a1, 8($sp)",
        "    addi $a0, $a0, -1",
        "    sll  $t0, $a1, 1",
        "    move $a1, $t0",
        f"    jal  {fname}",
        "    lw   $t2, 12($sp)",
        "    add  $v0, $v0, $t2",
        f"    j    {fname}_out",
        f"{prune}:",
        "    lw   $v0, 12($sp)",
        "    addi $v0, $v0, 1",
        f"{fname}_out:",
        "    lw   $ra, 0($sp)",
        "    addi $sp, $sp, 16",
        "    ret",
        f"{base}:",
        "    move $v0, $a1",
        "    ret",
    )


def emit_matrix_kernel(b: AsmBuilder, fname: str, img_label: str,
                       width: int) -> None:
    """ijpeg-style 2-D kernel: row*width+col addressing (scaled adds on
    the column index), four parallel pixel accumulators (placement),
    ``a0`` = rows, ``a1`` = cols (multiple of 2).
    """
    rloop = b.label(f"{fname}_row")
    closs = b.label(f"{fname}_col")
    b.func(fname)
    b.emit(
        f"    la   $t9, {img_label}",
        "    move $t0, $zero",          # row
        "    move $v0, $zero",
        "    move $t5, $zero",
        "    move $t6, $zero",
        "    move $t7, $zero",
        f"{rloop}:",
        f"    li   $t8, {width}",
        "    mult $t1, $t0, $t8",       # row base (multiply: long op)
        "    sll  $t1, $t1, 2",
        "    move $t2, $zero",          # col
        f"{closs}:",
        "    sll  $t3, $t2, 2",
        "    add  $t4, $t1, $t3",       # scaled add (col<<2 + rowbase)
        "    lwx  $t3, $t4, $t9",
        "    add  $v0, $v0, $t3",
        "    xor  $t5, $t5, $t3",
        "    add  $t6, $t6, $t4",
        "    sub  $t7, $t7, $t3",
        "    addi $t2, $t2, 1",
        f"    blt  $t2, $a1, {closs}",
        "    addi $t0, $t0, 1",
        f"    blt  $t0, $a0, {rloop}",
        "    add  $v0, $v0, $t5",
        "    add  $v0, $v0, $t6",
        "    add  $v0, $v0, $t7",
        "    ret",
    )


def emit_bitmix(b: AsmBuilder, fname: str) -> None:
    """pgp-style block cipher round: long serial ALU chains over
    registers, almost no memory traffic, moves between half-rounds.
    ``a0`` = rounds, ``a1`` = block. ``v0`` = mixed block.
    """
    loop = b.label(f"{fname}_loop")
    b.func(fname)
    b.emit(
        "    move $t0, $a1",
        "    move $t1, $zero",
        f"{loop}:",
        "    sll  $t2, $t0, 13",
        "    xor  $t0, $t0, $t2",
        "    srl  $t2, $t0, 17",
        "    xor  $t0, $t0, $t2",
        "    sll  $t2, $t0, 5",
        "    xor  $t0, $t0, $t2",
        "    move $t3, $t0",           # half-round boundary copy
        "    addi $t4, $t3, 9743",     # round constant (fits imm16)
        "    add  $t0, $t0, $t4",
        "    addi $t1, $t1, 1",
        f"    blt  $t1, $a0, {loop}",
        "    move $v0, $t0",
        "    ret",
    )


def emit_poly_eval(b: AsmBuilder, fname: str, coeff_label: str,
                   degree: int) -> None:
    """gnuplot-style curve evaluation: Horner's rule with a multiply
    per step and move-heavy register shuffling. ``a0`` = x value."""
    loop = b.label(f"{fname}_loop")
    b.func(fname)
    b.emit(
        f"    la   $t9, {coeff_label}",
        f"    li   $t0, {degree}",
        "    lw   $v0, 0($t9)",
        f"{loop}:",
        "    addi $t9, $t9, 4",
        "    lw   $t1, 0($t9)",
        "    mult $t2, $v0, $a0",
        "    move $v0, $t2",            # accumulate via move
        "    add  $v0, $v0, $t1",
        "    addi $t0, $t0, -1",
        f"    bgtz $t0, {loop}",
        "    ret",
    )


def emit_copy_loop(b: AsmBuilder, fname: str, src_label: str,
                   dst_label: str) -> None:
    """Word-granular memory copy with running checksum: pointer
    bump-and-load loops with *no* optimization opportunities — the
    diluting idiom every real program is full of. ``a0`` = word count."""
    loop = b.label(f"{fname}_loop")
    b.func(fname)
    b.emit(
        f"    la   $t0, {src_label}",
        f"    la   $t1, {dst_label}",
        "    move $t2, $zero",
        "    move $v0, $zero",
        f"{loop}:",
        "    lw   $t3, 0($t0)",
        "    sw   $t3, 0($t1)",
        "    add  $v0, $v0, $t3",
        "    addi $t0, $t0, 4",
        "    addi $t1, $t1, 4",
        "    addi $t2, $t2, 1",
        f"    blt  $t2, $a0, {loop}",
        "    ret",
    )


def emit_main_driver(b: AsmBuilder, phases: list, outer_iters: int) -> None:
    """The benchmark ``main``: repeats the phase list *outer_iters*
    times. Each phase is ``(callee, arg_lines, post_lines)`` —
    *arg_lines* set up ``$a0``/``$a1`` (often with the caller-side
    ``addi`` that gives cross-procedure reassociation), *post_lines*
    consume ``$v0`` (typically a move into a saved register — the
    common-subexpression / argument-passing move idiom).
    """
    outer = b.label("main_outer")
    b.func("main")
    b.emit(
        f"    li   $s0, {outer_iters}",
        "    move $s1, $zero",
        "    move $s2, $zero",
        f"{outer}:",
    )
    for callee, arg_lines, post_lines in phases:
        b.emit(*arg_lines)
        b.emit(f"    jal  {callee}")
        b.emit(*post_lines)
    b.emit(
        "    addi $s1, $s1, 1",
        f"    blt  $s1, $s0, {outer}",
        "    move $a0, $s2",
        "    li   $v0, 1",
        "    syscall",                  # report the checksum
        "    halt",
    )


def linked_list_words(node_count: int, base_label_addr_of,
                      value_seed: int = 7) -> list:
    """Initializer words for a singly linked list laid out contiguously
    as ``[value, next]`` cells. *base_label_addr_of* maps a cell index
    to its absolute address string (resolved by the assembler via
    ``label+offset`` expressions)."""
    words = []
    for idx in range(node_count):
        value = (value_seed * (idx + 1) * 2654435761) % 4096
        next_ref = base_label_addr_of(idx + 1) if idx + 1 < node_count \
            else "0"
        words.extend([value, next_ref])
    return words


__all__ = [
    "emit_array_sum_scaled",
    "emit_multichain_sum",
    "emit_hash_loop",
    "emit_list_walk",
    "emit_struct_chain",
    "emit_dispatch_loop",
    "emit_recursive_walk",
    "emit_matrix_kernel",
    "emit_bitmix",
    "emit_poly_eval",
    "emit_field_chain",
    "emit_index_chase",
    "emit_copy_loop",
    "emit_main_driver",
    "linked_list_words",
]
