"""Assembly-construction helper for the workload generators.

Workload modules build programs by emitting assembly text through an
:class:`AsmBuilder`: it manages unique labels, the data section, and
final assembly, keeping the generators readable and collision-free when
several library fragments are combined into one program.
"""

from __future__ import annotations

from repro.asm import assemble
from repro.program.image import Program


class AsmBuilder:
    """Accumulates text/data sections and assembles the result."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._text: list = []
        self._data: list = []
        self._counter = 0

    # ------------------------------------------------------------------

    def label(self, hint: str = "L") -> str:
        """A fresh unique label."""
        self._counter += 1
        return f"{hint}_{self._counter}"

    def emit(self, *lines: str) -> None:
        """Append instruction/label lines to the text section."""
        self._text.extend(lines)

    def comment(self, text: str) -> None:
        self._text.append(f"    # {text}")

    def func(self, name: str) -> None:
        """Begin a function: emits its entry label."""
        self._text.append(f"{name}:")

    # -- data ------------------------------------------------------------

    def data_words(self, label: str, values) -> str:
        """A labelled ``.word`` array; returns the label."""
        chunks = [f"{label}: .word {', '.join(str(v) for v in values[:16])}"]
        rest = list(values[16:])
        while rest:
            chunk, rest = rest[:16], rest[16:]
            chunks.append(f"    .word {', '.join(str(v) for v in chunk)}")
        self._data.extend(chunks)
        return label

    def data_space(self, label: str, size_bytes: int) -> str:
        """A labelled zero-filled region; returns the label."""
        self._data.append(f"{label}: .space {size_bytes}")
        return label

    # ------------------------------------------------------------------

    def source(self) -> str:
        parts = []
        if self._data:
            parts.append(".data")
            parts.append(".align 4")
            parts.extend(self._data)
        parts.append(".text")
        parts.extend(self._text)
        return "\n".join(parts) + "\n"

    def build(self) -> Program:
        """Assemble the accumulated program."""
        return assemble(self.source(), name=self.name)


def lcg_values(seed: int, count: int, modulus: int = 1 << 16) -> list:
    """Deterministic pseudo-random data for workload arrays (a small
    LCG, reproducible across runs and platforms)."""
    values = []
    state = seed & 0x7FFFFFFF
    for _ in range(count):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        values.append(state % modulus)
    return values


__all__ = ["AsmBuilder", "lcg_values"]
