"""Synthetic workloads standing in for SPECint95 + UNIX applications.

The paper evaluates on SPECint95 and seven common UNIX programs
(Table 1). Those binaries, their inputs and the gcc-2.6.3/SimpleScalar
toolchain are unavailable here, and cycle-level Python simulation of
10^8-instruction runs is infeasible — so each benchmark is replaced by
a synthetic kernel written in the reproduction's assembly language
whose *dataflow idiom mix* is tuned to that benchmark's optimization
opportunity profile from the paper's Table 2 (register-move fraction,
cross-block immediate chains, shift+add address arithmetic) and whose
control structure echoes the application (interpreter dispatch for li /
perl / python, game-tree recursion for go / chess, table hashing for
compress, device rasterization loops for ghostscript, ...).

See DESIGN.md §3 for why this substitution preserves the paper's
claims' *shape* and what it gives up.

Public API::

    from repro import workloads

    program = workloads.build("m88ksim", scale=1.0)
    for name in workloads.names():
        ...
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry
from repro.workloads.registry import BenchmarkSpec, PAPER_TABLE2

__all__ = ["build", "names", "spec", "BenchmarkSpec", "PAPER_TABLE2"]


def names() -> list:
    """The fifteen benchmark names, in the paper's Table 1 order."""
    return registry.names()


def spec(name: str) -> BenchmarkSpec:
    """The registry entry for *name* (builder + paper-reported traits).

    Raises:
        KeyError: for unknown benchmark names.
    """
    return registry.spec(name)


def build(name: str, scale: float = 1.0) -> Program:
    """Assemble the named benchmark.

    *scale* multiplies the dynamic-length knob (1.0 gives roughly
    30k-80k committed instructions per benchmark — large enough for
    promotion, trace-cache warmup and stable IPC, small enough for
    laptop-scale sweeps).
    """
    return registry.spec(name).build(scale)
