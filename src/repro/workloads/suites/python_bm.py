"""python stand-in.

The CPython interpreter: a wide bytecode dispatch loop (indirect jumps,
stack-cell moves), reference-count-style object touches, and dict
probing. Fingerprint target: 6.3% moves / 2.8% reassoc / 2.8% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("python")
    b.data_words("bytecode", lcg_values(220, 96, 8))
    b.data_space("dict", 128 * 4)
    nodes = synth.linked_list_words(28, lambda i: f"objchain+{8 * i}")
    b.data_words("objchain", nodes)
    b.data_words("frameobj", lcg_values(33, 96, 4096))

    synth.emit_dispatch_loop(b, "ceval", "bytecode", handler_count=8)
    synth.emit_hash_loop(b, "dict_lookup", "dict", 0x7F)
    synth.emit_list_walk(b, "decref_chain", "objchain")
    synth.emit_struct_chain(b, "frame_access")

    def frame_args(mask):
        return [
            "    la   $t0, frameobj",
            f"    andi $t1, $s1, {mask}",
            "    sll  $t1, $t1, 5",
            "    add  $t2, $t0, $t1",
            "    addi $a0, $t2, 4",
        ]

    phases = [
        ("ceval", ["    li   $a0, 40"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("dict_lookup",
         ["    li   $a0, 10", "    move $a1, $s2"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("frame_access", frame_args(7),
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("decref_chain", [],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(44 * scale)))
    return b.build()


registry.register("python", build,
                  "bytecode dispatch + dict probing interpreter")
