"""tex stand-in.

TeX's paragraph/box machinery scans glue and node arrays with scaled
indexing (the paper's #2 scaled-add benchmark at 5.2%) — including
node-list traversal through index links — and hashes control
sequences; it is notably move-poor (3.1%).
Fingerprint target: 3.1% moves / 0.6% reassoc / 5.2% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("tex")
    b.data_words("glue", lcg_values(164, 128, 1024))
    # node "link" fields: nodes[i] -> index of next node (mem-style heap)
    b.data_words("nodes", [(v * 61 + 7) % 128
                           for v in lcg_values(82, 128, 128)])
    b.data_space("eqtb", 128 * 4)
    b.data_space("hlist", 64 * 4)

    synth.emit_array_sum_scaled(b, "badness_scan", "glue", 128)
    synth.emit_index_chase(b, "node_link", "nodes")
    synth.emit_hash_loop(b, "cs_lookup", "eqtb", 0x7F)
    synth.emit_copy_loop(b, "hpack", "glue", "hlist")

    phases = [
        ("badness_scan", ["    li   $a0, 36"],
         ["    add  $s2, $s2, $v0"]),
        ("cs_lookup",
         ["    li   $a0, 12", "    move $a1, $s1"],
         ["    add  $s2, $s2, $v0"]),
        ("node_link",
         ["    li   $a0, 52", "    andi $a1, $s2, 63"],
         ["    add  $s2, $s2, $v0"]),
        ("hpack", ["    li   $a0, 20"],
         ["    add  $s2, $s2, $v0"]),
        ("badness_scan", ["    li   $a0, 28"],
         ["    add  $s2, $s2, $v0"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(52 * scale)))
    return b.build()


registry.register("tex", build,
                  "box/glue array scanning + control-sequence hashing")
