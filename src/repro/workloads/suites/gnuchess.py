"""gnuchess stand-in.

Chess evaluation reads board structures through constant-offset chains
spanning the evaluation function's branch tree (the paper's #2
reassociation benchmark at 10.4%, +23% IPC), scans attack tables with
scaled indexing, and searches recursively. Moves are rare (3.4%).
Fingerprint target: 3.4% moves / 10.4% reassoc / 5.7% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("gnuchess")
    b.data_words("board", lcg_values(64, 64, 13))
    # attack is an index-permutation array: attack[i] in [0, 127].
    b.data_words("attack", [(v * 73 + 11) % 128
                            for v in lcg_values(13, 128, 128)])
    b.data_words("pieces", lcg_values(7, 96, 4096))

    synth.emit_field_chain(b, "eval_pawns", depth=7)
    synth.emit_field_chain(b, "eval_king", depth=6)
    synth.emit_struct_chain(b, "eval_mobility")
    synth.emit_index_chase(b, "attack_scan", "attack")
    synth.emit_array_sum_scaled(b, "material_sum", "pieces", 96)
    synth.emit_recursive_walk(b, "alphabeta")

    def piece_args(mask, offset):
        return [
            "    la   $t0, pieces",
            f"    andi $t1, $s2, {mask}",
            "    sll  $t1, $t1, 4",
            "    add  $t2, $t0, $t1",
            f"    addi $a0, $t2, {offset}",
        ]

    phases = [
        ("eval_pawns", piece_args(7, 4),
         ["    add  $s2, $s2, $v0"]),
        ("attack_scan",
         ["    li   $a0, 18", "    andi $a1, $s2, 63"],
         ["    add  $s2, $s2, $v0"]),
        ("eval_king", piece_args(3, 8),
         ["    add  $s2, $s2, $v0"]),
        ("eval_pawns", piece_args(13, 8),
         ["    add  $s2, $s2, $v0"]),
        ("material_sum", ["    li   $a0, 20"],
         ["    add  $s2, $s2, $v0"]),
        ("eval_mobility", piece_args(15, 4),
         ["    add  $s2, $s2, $v0"]),
        ("eval_king", piece_args(9, 4),
         ["    add  $s2, $s2, $v0"]),
        ("eval_pawns", piece_args(31, 4),
         ["    add  $s2, $s2, $v0"]),
        ("eval_mobility", piece_args(5, 8),
         ["    add  $s2, $s2, $v0"]),
        ("eval_king", piece_args(21, 8),
         ["    add  $s2, $s2, $v0"]),
        ("alphabeta",
         ["    li   $a0, 1", "    move $a1, $s1"],
         ["    add  $s2, $s2, $v0"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(72 * scale)))
    return b.build()


registry.register("gnuchess", build,
                  "position evaluation: offset chains + attack-table scans")
