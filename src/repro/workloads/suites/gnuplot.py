"""gnuplot stand-in.

Plotting: curve evaluation (multiply-accumulate with constant register
shuffling — the paper's #1 move benchmark at 11.3%), coordinate
transform glue that copies values between register roles, and point
buffer emission. Fingerprint target: 11.3% moves / 1.4% reassoc /
2.3% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("gnuplot")
    b.data_words("coeffs", lcg_values(284, 24, 64))
    b.data_words("samples", lcg_values(3, 96, 1024))
    b.data_space("points", 96 * 4)

    synth.emit_poly_eval(b, "eval_curve", "coeffs", 16)
    synth.emit_list_walk(b, "axis_ticks", "ticklist")
    nodes = synth.linked_list_words(20, lambda i: f"ticklist+{8 * i}")
    b.data_words("ticklist", nodes)
    synth.emit_copy_loop(b, "emit_points", "samples", "points")
    synth.emit_array_sum_scaled(b, "autoscale", "samples", 96)

    phases = [
        ("eval_curve", ["    andi $a0, $s1, 63"],
         ["    move $a3, $v0", "    move $a2, $a3",
          "    add  $s2, $s2, $a2"]),
        ("axis_ticks", [],
         ["    move $a3, $v0", "    move $a2, $a3",
          "    add  $s2, $s2, $a2"]),
        ("eval_curve", ["    andi $a0, $s2, 31"],
         ["    move $a3, $v0", "    move $a2, $a3",
          "    add  $s2, $s2, $a2"]),
        ("autoscale", ["    li   $a0, 24"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("emit_points", ["    li   $a0, 48"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(52 * scale)))
    return b.build()


registry.register("gnuplot", build,
                  "curve evaluation with move-heavy transform glue")
