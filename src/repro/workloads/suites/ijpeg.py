"""ijpeg stand-in.

JPEG compression is 2-D pixel-block arithmetic: row*width+col address
computation (scaled adds) over blocks with several *independent*
accumulator chains per loop body — the structure that makes ijpeg the
paper's best instruction-placement benchmark (+11%, Figure 6).
Fingerprint target: 4.6% moves / 2.1% reassoc / 5.9% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("ijpeg")
    b.data_words("image", lcg_values(500, 256, 256))
    b.data_words("qtable", lcg_values(77, 64, 128))
    b.data_space("coeffs", 64 * 4)

    synth.emit_matrix_kernel(b, "dct_block", "image", 16)
    synth.emit_multichain_sum(b, "quantize", "qtable")
    synth.emit_copy_loop(b, "write_coeffs", "qtable", "coeffs")
    synth.emit_struct_chain(b, "huff_state")
    synth.emit_field_chain(b, "marker_state", depth=3)

    phases = [
        ("dct_block",
         ["    li   $a0, 5", "    li   $a1, 16"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("quantize", ["    li   $a0, 96"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("marker_state",
         ["    la   $t0, qtable",
          "    andi $t1, $s2, 3",
          "    sll  $t1, $t1, 4",
          "    add  $t2, $t0, $t1",
          "    addi $a0, $t2, 4"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("quantize", ["    li   $a0, 64"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("huff_state",
         ["    la   $t0, image",
          "    andi $t1, $s2, 7",
          "    sll  $t1, $t1, 5",
          "    add  $t2, $t0, $t1",
          "    addi $a0, $t2, 4"],
         ["    move $a3, $v0", "    add  $s2, $s2, $a3"]),
        ("write_coeffs", ["    li   $a0, 32"],
         ["    add  $s2, $s2, $v0"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(40 * scale)))
    return b.build()


registry.register("ijpeg", build,
                  "2-D block transforms with parallel accumulator chains")
