"""go stand-in.

The Go player is dominated by board-array scans — dense shift+add
index arithmetic over small integer arrays (the paper's strongest
scaled-add benchmark at 9.6% of the stream) — including chain-following
through index-linked group lists, where the shift sits on the loop
recurrence itself. Moves and reassociable chains are rare.
Fingerprint target: 2.5% moves / 0.7% reassoc / 9.6% scaled.
"""

from __future__ import annotations

from repro.program.image import Program
from repro.workloads import registry, synth
from repro.workloads.builder import AsmBuilder, lcg_values


def build(scale: float = 1.0) -> Program:
    b = AsmBuilder("go")
    b.data_words("board", lcg_values(2, 361, 4))
    # Group membership is an index-linked chain: groups[i] -> next stone.
    b.data_words("groups", [(v * 37 + 5) % 128
                            for v in lcg_values(9, 128, 128)])
    b.data_words("liberty", lcg_values(19, 96, 64))

    synth.emit_array_sum_scaled(b, "scan_board", "board", 361)
    synth.emit_index_chase(b, "follow_group", "groups")
    synth.emit_matrix_kernel(b, "influence", "board", 19)
    synth.emit_recursive_walk(b, "search")
    synth.emit_array_sum_scaled(b, "count_liberties", "liberty", 96)

    phases = [
        ("scan_board", ["    li   $a0, 28"],
         ["    add  $s2, $s2, $v0"]),
        ("follow_group",
         ["    li   $a0, 44", "    andi $a1, $s2, 63"],
         ["    add  $s2, $s2, $v0"]),
        ("influence",
         ["    li   $a0, 4", "    li   $a1, 16"],
         ["    add  $s2, $s2, $v0"]),
        ("count_liberties", ["    li   $a0, 32"],
         ["    add  $s2, $s2, $v0"]),
        ("follow_group",
         ["    li   $a0, 40", "    andi $a1, $s1, 63"],
         ["    add  $s2, $s2, $v0"]),
        ("search",
         ["    li   $a0, 1", "    move $a1, $s1"],
         ["    add  $s2, $s2, $v0"]),
    ]
    synth.emit_main_driver(b, phases, outer_iters=max(2, int(42 * scale)))
    return b.build()


registry.register("go", build,
                  "board-array scanning with index-linked group chains")
